//! Runtime values of the abstract machine.
//!
//! Values follow the paper's memory model (§3.2): atomic domain types have
//! value semantics; containers, bytes, structs and other heap objects have
//! reference semantics (copying a value copies the *reference*). Rust's
//! `Rc<RefCell<…>>` plays the role of the paper's reference counting — and
//! like the paper's implementation, cycles are not collected.
//!
//! Crossing a virtual-thread boundary requires value semantics; the
//! [`Portable`] form is a deep, `Send` snapshot used by channels and
//! `thread.schedule` (§3.2: "the runtime deep-copies all mutable data").

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use hilti_rt::addr::{Addr, Network, Port};
use hilti_rt::bytestring::{Bytes, BytesIter};
use hilti_rt::classifier::Classifier;
use hilti_rt::containers::{ExpiringMap, ExpiringSet};
use hilti_rt::error::{ExceptionKind, RtError, RtResult};
use hilti_rt::file::LogFile;
use hilti_rt::overlay::OverlayType;
use hilti_rt::regexp::{Matcher, Regex};
use hilti_rt::time::{Interval, Time};

/// A set value: expiring set of hashable keys.
pub type SetVal = ExpiringSet<Key>;
/// A map value: expiring map from hashable keys to values.
pub type MapVal = ExpiringMap<Key, Value>;

/// A struct instance.
#[derive(Debug, Clone)]
pub struct StructVal {
    pub type_name: Rc<str>,
    /// Field values, in declaration order. `Value::Null` encodes unset.
    pub fields: Vec<Value>,
}

/// A bound function value (closure), HILTI's `callable`.
#[derive(Debug, Clone)]
pub struct CallableVal {
    pub func: Rc<str>,
    pub bound: Vec<Value>,
}

/// A caught or thrown exception.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptionVal {
    pub kind: ExceptionKind,
    pub message: String,
}

/// An input source: yields (timestamp, packet bytes) until exhausted.
/// Host applications install the actual producer (e.g. a pcap reader).
pub struct IoSource {
    pub name: String,
    pub producer: Box<dyn FnMut() -> Option<(Time, Vec<u8>)>>,
}

impl fmt::Debug for IoSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IoSource({})", self.name)
    }
}

/// A pending timer entry: fires `action` (a callable) at its deadline.
#[derive(Debug, Clone)]
pub struct TimerEntry {
    pub seq: u64,
    pub action: CallableVal,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

/// A runtime value.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// Unset/none — also the value of uninitialized locals.
    #[default]
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    String(Rc<str>),
    Bytes(Bytes),
    BytesIter(BytesIter),
    Addr(Addr),
    Net(Network),
    Port(Port),
    Time(Time),
    Interval(Interval),
    /// (enum type name, label index).
    Enum(Rc<str>, i64),
    Tuple(Rc<Vec<Value>>),
    List(Rc<RefCell<VecDeque<Value>>>),
    Vector(Rc<RefCell<Vec<Value>>>),
    Set(Rc<RefCell<SetVal>>),
    Map(Rc<RefCell<MapVal>>),
    Struct(Rc<RefCell<StructVal>>),
    Regexp(Arc<Regex>),
    Matcher(Rc<RefCell<Matcher>>),
    Channel(hilti_rt::channel::Channel<Portable>),
    Classifier(Rc<RefCell<Classifier<Value>>>),
    Overlay(Rc<OverlayType>),
    TimerMgr(Rc<RefCell<hilti_rt::timer::TimerMgr<TimerEntry>>>),
    File(LogFile),
    IOSrc(Rc<RefCell<IoSource>>),
    Callable(Rc<CallableVal>),
    Exception(Rc<ExceptionVal>),
}

/// The hashable subset of values usable as set members / map keys.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Key {
    Bool(bool),
    Int(i64),
    String(String),
    Bytes(Vec<u8>),
    Addr(Addr),
    Net(Network),
    Port(Port),
    Time(Time),
    Interval(Interval),
    Enum(String, i64),
    Tuple(Vec<Key>),
}

impl Key {
    /// Reconstructs the value form of this key.
    pub fn to_value(&self) -> Value {
        match self {
            Key::Bool(b) => Value::Bool(*b),
            Key::Int(i) => Value::Int(*i),
            Key::String(s) => Value::String(Rc::from(s.as_str())),
            Key::Bytes(b) => Value::Bytes(Bytes::frozen_from_slice(b)),
            Key::Addr(a) => Value::Addr(*a),
            Key::Net(n) => Value::Net(*n),
            Key::Port(p) => Value::Port(*p),
            Key::Time(t) => Value::Time(*t),
            Key::Interval(i) => Value::Interval(*i),
            Key::Enum(n, v) => Value::Enum(Rc::from(n.as_str()), *v),
            Key::Tuple(ks) => Value::Tuple(Rc::new(ks.iter().map(Key::to_value).collect())),
        }
    }
}

/// Deep, `Send` snapshot of a value for crossing thread boundaries.
#[derive(Clone, Debug, PartialEq)]
pub enum Portable {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    String(String),
    Bytes(Vec<u8>, bool),
    Addr(Addr),
    Net(Network),
    Port(Port),
    Time(Time),
    Interval(Interval),
    Enum(String, i64),
    Tuple(Vec<Portable>),
    List(Vec<Portable>),
    Vector(Vec<Portable>),
    Set(Vec<Key>),
    Map(Vec<(Key, Portable)>),
    Struct(String, Vec<Portable>),
}

impl hilti_rt::channel::DeepCopy for Portable {
    fn deep_copy(&self) -> Self {
        self.clone()
    }
}

impl Value {
    pub fn str(s: &str) -> Value {
        Value::String(Rc::from(s))
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::String(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::BytesIter(_) => "iterator<bytes>",
            Value::Addr(_) => "addr",
            Value::Net(_) => "net",
            Value::Port(_) => "port",
            Value::Time(_) => "time",
            Value::Interval(_) => "interval",
            Value::Enum(_, _) => "enum",
            Value::Tuple(_) => "tuple",
            Value::List(_) => "list",
            Value::Vector(_) => "vector",
            Value::Set(_) => "set",
            Value::Map(_) => "map",
            Value::Struct(_) => "struct",
            Value::Regexp(_) => "regexp",
            Value::Matcher(_) => "matcher",
            Value::Channel(_) => "channel",
            Value::Classifier(_) => "classifier",
            Value::Overlay(_) => "overlay",
            Value::TimerMgr(_) => "timer_mgr",
            Value::File(_) => "file",
            Value::IOSrc(_) => "iosrc",
            Value::Callable(_) => "callable",
            Value::Exception(_) => "exception",
        }
    }

    fn type_err(&self, wanted: &str) -> RtError {
        RtError::type_error(format!("expected {wanted}, got {}", self.type_name()))
    }

    pub fn as_bool(&self) -> RtResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(other.type_err("bool")),
        }
    }

    pub fn as_int(&self) -> RtResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(other.type_err("int")),
        }
    }

    pub fn as_double(&self) -> RtResult<f64> {
        match self {
            Value::Double(d) => Ok(*d),
            Value::Int(i) => Ok(*i as f64),
            other => Err(other.type_err("double")),
        }
    }

    pub fn as_str(&self) -> RtResult<&str> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(other.type_err("string")),
        }
    }

    pub fn as_bytes(&self) -> RtResult<&Bytes> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(other.type_err("bytes")),
        }
    }

    pub fn as_bytes_iter(&self) -> RtResult<&BytesIter> {
        match self {
            Value::BytesIter(i) => Ok(i),
            other => Err(other.type_err("iterator<bytes>")),
        }
    }

    pub fn as_addr(&self) -> RtResult<Addr> {
        match self {
            Value::Addr(a) => Ok(*a),
            other => Err(other.type_err("addr")),
        }
    }

    pub fn as_net(&self) -> RtResult<Network> {
        match self {
            Value::Net(n) => Ok(*n),
            Value::Addr(a) => Ok(Network::host(*a)),
            other => Err(other.type_err("net")),
        }
    }

    pub fn as_port(&self) -> RtResult<Port> {
        match self {
            Value::Port(p) => Ok(*p),
            other => Err(other.type_err("port")),
        }
    }

    pub fn as_time(&self) -> RtResult<Time> {
        match self {
            Value::Time(t) => Ok(*t),
            other => Err(other.type_err("time")),
        }
    }

    pub fn as_interval(&self) -> RtResult<Interval> {
        match self {
            Value::Interval(i) => Ok(*i),
            other => Err(other.type_err("interval")),
        }
    }

    pub fn as_tuple(&self) -> RtResult<&Rc<Vec<Value>>> {
        match self {
            Value::Tuple(t) => Ok(t),
            other => Err(other.type_err("tuple")),
        }
    }

    /// Converts to a hashable key; heap types that cannot serve as keys
    /// produce a type error.
    pub fn to_key(&self) -> RtResult<Key> {
        Ok(match self {
            Value::Bool(b) => Key::Bool(*b),
            Value::Int(i) => Key::Int(*i),
            Value::String(s) => Key::String(s.to_string()),
            Value::Bytes(b) => Key::Bytes(b.to_vec()),
            Value::Addr(a) => Key::Addr(*a),
            Value::Net(n) => Key::Net(*n),
            Value::Port(p) => Key::Port(*p),
            Value::Time(t) => Key::Time(*t),
            Value::Interval(i) => Key::Interval(*i),
            Value::Enum(n, v) => Key::Enum(n.to_string(), *v),
            Value::Tuple(vs) => Key::Tuple(
                vs.iter()
                    .map(Value::to_key)
                    .collect::<RtResult<Vec<Key>>>()?,
            ),
            other => return Err(other.type_err("hashable value")),
        })
    }

    /// Structural equality with HILTI's `equal` semantics: value types by
    /// value, bytes by content, containers element-wise.
    pub fn equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a == b,
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                *a as f64 == *b
            }
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::String(a), Value::Bytes(b)) | (Value::Bytes(b), Value::String(a)) => {
                a.as_bytes() == b.to_vec().as_slice()
            }
            (Value::Addr(a), Value::Addr(b)) => a == b,
            (Value::Net(a), Value::Net(b)) => a == b,
            // addr vs net: membership, matching the BPF example's
            // `equal 10.0.5.0/24 a1` (Figure 4).
            (Value::Addr(a), Value::Net(n)) | (Value::Net(n), Value::Addr(a)) => n.contains(a),
            (Value::Port(a), Value::Port(b)) => a == b,
            (Value::Time(a), Value::Time(b)) => a == b,
            (Value::Interval(a), Value::Interval(b)) => a == b,
            (Value::Enum(n1, v1), Value::Enum(n2, v2)) => n1 == n2 && v1 == v2,
            (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equals(y))
            }
            (Value::List(a), Value::List(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equals(y))
            }
            (Value::Vector(a), Value::Vector(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equals(y))
            }
            (Value::Struct(a), Value::Struct(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.type_name == b.type_name
                    && a.fields.len() == b.fields.len()
                    && a.fields
                        .iter()
                        .zip(b.fields.iter())
                        .all(|(x, y)| x.equals(y))
            }
            _ => false,
        }
    }

    /// Deep, `Send` snapshot for thread crossings; types that cannot cross
    /// (files, channels, matchers, ...) produce a type error.
    pub fn to_portable(&self) -> RtResult<Portable> {
        Ok(match self {
            Value::Null => Portable::Null,
            Value::Bool(b) => Portable::Bool(*b),
            Value::Int(i) => Portable::Int(*i),
            Value::Double(d) => Portable::Double(*d),
            Value::String(s) => Portable::String(s.to_string()),
            Value::Bytes(b) => Portable::Bytes(b.to_vec(), b.is_frozen()),
            Value::Addr(a) => Portable::Addr(*a),
            Value::Net(n) => Portable::Net(*n),
            Value::Port(p) => Portable::Port(*p),
            Value::Time(t) => Portable::Time(*t),
            Value::Interval(i) => Portable::Interval(*i),
            Value::Enum(n, v) => Portable::Enum(n.to_string(), *v),
            Value::Tuple(vs) => Portable::Tuple(
                vs.iter()
                    .map(Value::to_portable)
                    .collect::<RtResult<Vec<_>>>()?,
            ),
            Value::List(l) => Portable::List(
                l.borrow()
                    .iter()
                    .map(Value::to_portable)
                    .collect::<RtResult<Vec<_>>>()?,
            ),
            Value::Vector(v) => Portable::Vector(
                v.borrow()
                    .iter()
                    .map(Value::to_portable)
                    .collect::<RtResult<Vec<_>>>()?,
            ),
            Value::Set(s) => Portable::Set(s.borrow().iter().cloned().collect()),
            Value::Map(m) => Portable::Map(
                m.borrow()
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), v.to_portable()?)))
                    .collect::<RtResult<Vec<_>>>()?,
            ),
            Value::Struct(s) => {
                let s = s.borrow();
                Portable::Struct(
                    s.type_name.to_string(),
                    s.fields
                        .iter()
                        .map(Value::to_portable)
                        .collect::<RtResult<Vec<_>>>()?,
                )
            }
            other => {
                return Err(RtError::type_error(format!(
                    "{} cannot cross a thread boundary",
                    other.type_name()
                )))
            }
        })
    }

    /// Reconstructs a value from its portable snapshot (fresh heap objects).
    pub fn from_portable(p: &Portable) -> Value {
        match p {
            Portable::Null => Value::Null,
            Portable::Bool(b) => Value::Bool(*b),
            Portable::Int(i) => Value::Int(*i),
            Portable::Double(d) => Value::Double(*d),
            Portable::String(s) => Value::str(s),
            Portable::Bytes(b, frozen) => {
                let bytes = Bytes::from_slice(b);
                if *frozen {
                    bytes.freeze();
                }
                Value::Bytes(bytes)
            }
            Portable::Addr(a) => Value::Addr(*a),
            Portable::Net(n) => Value::Net(*n),
            Portable::Port(p) => Value::Port(*p),
            Portable::Time(t) => Value::Time(*t),
            Portable::Interval(i) => Value::Interval(*i),
            Portable::Enum(n, v) => Value::Enum(Rc::from(n.as_str()), *v),
            Portable::Tuple(ps) => {
                Value::Tuple(Rc::new(ps.iter().map(Value::from_portable).collect()))
            }
            Portable::List(ps) => Value::List(Rc::new(RefCell::new(
                ps.iter().map(Value::from_portable).collect(),
            ))),
            Portable::Vector(ps) => Value::Vector(Rc::new(RefCell::new(
                ps.iter().map(Value::from_portable).collect(),
            ))),
            Portable::Set(keys) => {
                let mut s = SetVal::new();
                for k in keys {
                    s.insert(k.clone(), Time::ZERO);
                }
                Value::Set(Rc::new(RefCell::new(s)))
            }
            Portable::Map(entries) => {
                let mut m = MapVal::new();
                for (k, v) in entries {
                    m.insert(k.clone(), Value::from_portable(v), Time::ZERO);
                }
                Value::Map(Rc::new(RefCell::new(m)))
            }
            Portable::Struct(name, fields) => Value::Struct(Rc::new(RefCell::new(StructVal {
                type_name: Rc::from(name.as_str()),
                fields: fields.iter().map(Value::from_portable).collect(),
            }))),
        }
    }

    /// Renders the value the way `Hilti::print` does.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "(null)".into(),
            Value::Bool(b) => if *b { "True" } else { "False" }.into(),
            Value::Int(i) => i.to_string(),
            Value::Double(d) => format!("{d}"),
            Value::String(s) => s.to_string(),
            Value::Bytes(b) => String::from_utf8_lossy(&b.to_vec()).into_owned(),
            Value::BytesIter(i) => format!("<bytes iterator @{}>", i.offset()),
            Value::Addr(a) => a.to_string(),
            Value::Net(n) => n.to_string(),
            Value::Port(p) => p.to_string(),
            Value::Time(t) => t.to_string(),
            Value::Interval(i) => i.to_string(),
            Value::Enum(n, v) => format!("{n}({v})"),
            Value::Tuple(vs) => {
                let inner: Vec<String> = vs.iter().map(Value::render).collect();
                format!("({})", inner.join(", "))
            }
            Value::List(l) => {
                let inner: Vec<String> = l.borrow().iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Vector(v) => {
                let inner: Vec<String> = v.borrow().iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Set(s) => {
                let mut inner: Vec<String> =
                    s.borrow().iter().map(|k| k.to_value().render()).collect();
                inner.sort();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Map(m) => {
                let mut inner: Vec<String> = m
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("{}: {}", k.to_value().render(), v.render()))
                    .collect();
                inner.sort();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Struct(s) => {
                let s = s.borrow();
                let inner: Vec<String> = s.fields.iter().map(Value::render).collect();
                format!("{}({})", s.type_name, inner.join(", "))
            }
            Value::Regexp(r) => format!("/{}/", r.sources().join("|")),
            Value::Matcher(_) => "<matcher>".into(),
            Value::Channel(c) => format!("<channel:{}>", c.len()),
            Value::Classifier(c) => format!("<classifier:{} rules>", c.borrow().len()),
            Value::Overlay(o) => format!("<overlay {}>", o.name),
            Value::TimerMgr(t) => format!("<timer_mgr@{}>", t.borrow().now()),
            Value::File(f) => format!("<file {}>", f.name()),
            Value::IOSrc(s) => format!("<iosrc {}>", s.borrow().name),
            Value::Callable(c) => format!("<callable {}>", c.func),
            Value::Exception(e) => format!("{}: {}", e.kind, e.message),
        }
    }

    /// True if the value is "truthy" in conditional position; only booleans
    /// are accepted (the machine has no implicit coercions).
    pub fn truthy(&self) -> RtResult<bool> {
        self.as_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let vals = [
            Value::Bool(true),
            Value::Int(-7),
            Value::str("hello"),
            Value::Addr("10.0.0.1".parse().unwrap()),
            Value::Port(Port::tcp(80)),
            Value::Tuple(Rc::new(vec![Value::Int(1), Value::str("x")])),
        ];
        for v in &vals {
            let k = v.to_key().unwrap();
            assert!(k.to_value().equals(v), "roundtrip of {v:?}");
        }
    }

    #[test]
    fn unhashable_values_rejected_as_keys() {
        let l = Value::List(Rc::new(RefCell::new(VecDeque::new())));
        assert!(l.to_key().is_err());
        assert!(Value::Double(1.5).to_key().is_err());
    }

    #[test]
    fn equals_addr_net_membership() {
        let a = Value::Addr("10.0.5.77".parse().unwrap());
        let n = Value::Net("10.0.5.0/24".parse().unwrap());
        assert!(a.equals(&n));
        assert!(n.equals(&a));
        let other = Value::Addr("10.0.6.1".parse().unwrap());
        assert!(!other.equals(&n));
    }

    #[test]
    fn equals_bytes_and_string() {
        let b = Value::Bytes(Bytes::frozen_from_slice(b"abc"));
        let s = Value::str("abc");
        assert!(b.equals(&s));
        assert!(s.equals(&b));
    }

    #[test]
    fn heap_values_share_on_clone() {
        let v = Value::Vector(Rc::new(RefCell::new(vec![Value::Int(1)])));
        let w = v.clone();
        if let Value::Vector(inner) = &w {
            inner.borrow_mut().push(Value::Int(2));
        }
        if let Value::Vector(inner) = &v {
            assert_eq!(inner.borrow().len(), 2);
        }
    }

    #[test]
    fn portable_roundtrip_is_deep() {
        let v = Value::Vector(Rc::new(RefCell::new(vec![
            Value::str("a"),
            Value::Tuple(Rc::new(vec![Value::Int(1), Value::Bool(false)])),
        ])));
        let p = v.to_portable().unwrap();
        let v2 = Value::from_portable(&p);
        assert!(v.equals(&v2));
        // Mutating the copy must not affect the original.
        if let Value::Vector(inner) = &v2 {
            inner.borrow_mut().push(Value::Int(9));
        }
        if let Value::Vector(inner) = &v {
            assert_eq!(inner.borrow().len(), 2);
        }
    }

    #[test]
    fn portable_preserves_frozen_state() {
        let b = Bytes::frozen_from_slice(b"done");
        let p = Value::Bytes(b).to_portable().unwrap();
        match Value::from_portable(&p) {
            Value::Bytes(b2) => assert!(b2.is_frozen()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn files_cannot_cross_threads() {
        let f = Value::File(LogFile::in_memory("x"));
        assert!(f.to_portable().is_err());
    }

    #[test]
    fn render_shapes() {
        assert_eq!(Value::Bool(true).render(), "True");
        assert_eq!(Value::Int(42).render(), "42");
        assert_eq!(
            Value::Tuple(Rc::new(vec![Value::Int(1), Value::str("x")])).render(),
            "(1, x)"
        );
        let mut s = SetVal::new();
        s.insert(Key::Int(2), Time::ZERO);
        s.insert(Key::Int(1), Time::ZERO);
        assert_eq!(Value::Set(Rc::new(RefCell::new(s))).render(), "{1, 2}");
    }

    #[test]
    fn map_portable_roundtrip() {
        let mut m = MapVal::new();
        m.insert(Key::String("k".into()), Value::Int(5), Time::ZERO);
        let v = Value::Map(Rc::new(RefCell::new(m)));
        let p = v.to_portable().unwrap();
        let v2 = Value::from_portable(&p);
        if let Value::Map(m2) = v2 {
            assert_eq!(
                m2.borrow_mut()
                    .get(&Key::String("k".into()), Time::ZERO)
                    .map(|x| x.as_int().unwrap()),
                Some(5)
            );
        } else {
            panic!("expected map");
        }
    }
}
