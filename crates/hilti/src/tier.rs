//! Profile-guided adaptive tiering: runtime feedback for the compiled
//! engine.
//!
//! The static specializer (`crate::specialize`) can only exploit types the
//! checker proved; anything declared `any` — which is most of what the
//! Bro-script compiler emits — stays on the generic dispatch path forever.
//! This module adds the classic VM answer (Deegen, arXiv 2411.11469;
//! Titzer's baseline-compiler study, arXiv 2305.13241): start every
//! function in the generic tier, *watch* it, and once it is hot re-lower it
//! through the same specialization pass using the observed operand types,
//! plus monomorphic inline caches at struct-field/overlay access sites and
//! callee-resolved call sites.
//!
//! ## Determinism
//!
//! Tier-up must be observationally invisible — the differential fuzz suite
//! asserts byte-identical output, exceptions, and fuel across
//! `off`/`lazy`/`eager`/`threaded`:
//!
//! * **Counters are deterministic.** Hotness is driven by invocation and
//!   retired-instruction counts maintained inside the dispatch loop — pure
//!   functions of the executed instruction stream, never of wall-clock
//!   time.
//! * **Rewrites are pc-preserving and fuel-identical.** Tiered code is a
//!   clone of the generic body rewritten in place: every pc maps to the
//!   same site, so switching tiers mid-function (on-stack replacement at
//!   the dispatch boundary) is safe, and each instruction keeps its generic
//!   fuel cost (`BrIfInt` charges 2, exactly the pair it fused).
//! * **Speculation is guarded by the same checks.** An `any` slot observed
//!   `int` specializes because the typed instruction still validates its
//!   operands at run time and raises the identical catchable `TypeError`
//!   the generic `ops::eval` path would — the runtime check *is* the
//!   guard. Inline caches key on struct type name / overlay name / callee
//!   name and fall back to the generic resolution (refilling, then
//!   de-optimizing past [`TierConfig::ic_cap`]) on a miss.
//! * **Observational modes pin the generic tier.** Tracing, instruction
//!   stats, the execution profiler, and fault injection all bypass tiered
//!   code entirely, so their outputs stay comparable across builds.
//!
//! Tier state lives in the per-thread [`crate::vm::Context`], which is why
//! the parallel pipeline gets lock-free per-shard tiering (and byte-
//! identical N-worker merges) with no extra machinery.

use std::rc::Rc;

use crate::bytecode::{CFunc, CInstr, CompiledProgram, IcSite};
use crate::ir::Opcode;
use crate::specialize::{specialize_func_with_types, SpecStats};
use crate::threaded::ThreadedFunc;
use crate::types::Type;
use crate::value::Value;

/// When (if ever) functions move from the generic tier to the specialized
/// one — and whether they continue to the direct-threaded tier above it.
/// Selected per build via `BuildOptions::tiering` or per run via
/// `hiltic run --tiering=off|lazy|eager|threaded`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieringMode {
    /// Never tier up: every function runs generic bytecode forever. This
    /// is the measurement baseline for the tier-up speedup.
    Off,
    /// Tier up once a function crosses the hotness thresholds. The
    /// production default when tiering is enabled.
    Lazy,
    /// Tier up on first execution (observed types are whatever the first
    /// call provided). Useful for tests and for amortizing long runs.
    Eager,
    /// Like `Lazy`, but a promoted function is additionally compiled into
    /// direct-threaded ops (`crate::threaded`): operands, branch targets
    /// and IC handles pre-bound at tier-up, no fetch/decode loop. The top
    /// rung of the tier ladder.
    Threaded,
}

impl TieringMode {
    pub fn parse(s: &str) -> Option<TieringMode> {
        Some(match s {
            "off" => TieringMode::Off,
            "lazy" => TieringMode::Lazy,
            "eager" => TieringMode::Eager,
            "threaded" => TieringMode::Threaded,
            _ => return None,
        })
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            TieringMode::Off => "off",
            TieringMode::Lazy => "lazy",
            TieringMode::Eager => "eager",
            TieringMode::Threaded => "threaded",
        }
    }

    /// Reads the mode from the `HILTI_TIERING` environment variable — the
    /// channel the CI tier matrix and `scripts/tier1.sh` use to point the
    /// whole test/smoke pyramid at one tier. Unset, empty, or unparsable
    /// values mean "no override".
    pub fn from_env() -> Option<TieringMode> {
        std::env::var("HILTI_TIERING")
            .ok()
            .as_deref()
            .and_then(TieringMode::parse)
    }
}

/// Hotness thresholds and IC sizing. Defaults are deliberately small: the
/// point of tiering is that hot loops cross them almost immediately, and
/// determinism does not depend on where the thresholds sit.
#[derive(Clone, Copy, Debug)]
pub struct TierConfig {
    /// Tier a function up after this many invocations…
    pub hot_invocations: u64,
    /// …or after this many dispatch-loop iterations spent in its generic
    /// body (catches hot loops inside rarely-called functions; this is the
    /// per-function retired-instruction signal PR 3's profiler surfaces).
    pub hot_retired: u64,
    /// Inline-cache entries per site before the site de-optimizes back to
    /// generic resolution.
    pub ic_cap: usize,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            hot_invocations: 16,
            hot_retired: 2048,
            ic_cap: 4,
        }
    }
}

/// Per-parameter observed-type lattice: `Unseen → Int/Bool → Poly`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Obs {
    #[default]
    Unseen,
    Int,
    Bool,
    Poly,
}

impl Obs {
    #[inline]
    fn observe(&mut self, v: &Value) {
        let seen = match v {
            Value::Int(_) => Obs::Int,
            Value::Bool(_) => Obs::Bool,
            _ => Obs::Poly,
        };
        *self = match (*self, seen) {
            (Obs::Unseen, s) => s,
            (cur, s) if cur == s => cur,
            _ => Obs::Poly,
        };
    }
}

/// Per-function tier state.
#[derive(Default)]
struct FnTier {
    invocations: u64,
    retired: u64,
    obs: Vec<Obs>,
    code: Option<Rc<CFunc>>,
    /// Direct-threaded body, present only under [`TieringMode::Threaded`]
    /// (built together with `code` at tier-up, from it).
    threaded: Option<Rc<ThreadedFunc>>,
}

/// A tiered function's executable bodies: the specialized bytecode (always
/// present once tiered) and, in threaded mode, its direct-threaded form.
/// The two share IC sites, and the threaded form deopts into the bytecode
/// one pc for pc.
pub(crate) struct TierCode {
    pub(crate) cfunc: Rc<CFunc>,
    pub(crate) threaded: Option<Rc<ThreadedFunc>>,
}

/// What a poll of the tier engine decided for the current dispatch
/// iteration.
pub(crate) enum TierPoll {
    /// Stay on the generic body.
    Generic,
    /// Run the (already) tiered body.
    Code(TierCode),
    /// The function just crossed the threshold: run the fresh tiered body
    /// and let the caller emit telemetry.
    TieredNow { code: TierCode, name: String },
}

/// The per-`Context` adaptive-tier engine: hotness counters, observed
/// types, and the tiered code cache. One per execution context — shards of
/// the parallel pipeline each own theirs, so the hot path takes no locks.
pub struct TierEngine {
    mode: TieringMode,
    config: TierConfig,
    fns: Vec<FnTier>,
    tierups: u64,
}

impl TierEngine {
    pub fn new(mode: TieringMode, config: TierConfig) -> TierEngine {
        TierEngine {
            mode,
            config,
            fns: Vec::new(),
            tierups: 0,
        }
    }

    pub fn mode(&self) -> TieringMode {
        self.mode
    }

    #[inline]
    fn ensure(&mut self, nfuncs: usize) {
        if self.fns.len() < nfuncs {
            self.fns.resize_with(nfuncs, FnTier::default);
        }
    }

    /// Records an invocation of `func` with `args`, feeding the observed
    /// parameter types. Called at every entry edge: host calls, direct
    /// `call`, and `callable.call`.
    #[inline]
    pub(crate) fn note_call(&mut self, nfuncs: usize, func: u32, args: &[Value]) {
        if self.mode == TieringMode::Off {
            return;
        }
        self.ensure(nfuncs);
        let ft = &mut self.fns[func as usize];
        if ft.code.is_some() {
            return;
        }
        ft.invocations += 1;
        if ft.obs.len() < args.len() {
            ft.obs.resize(args.len(), Obs::Unseen);
        }
        for (o, a) in ft.obs.iter_mut().zip(args) {
            o.observe(a);
        }
    }

    /// Polled once per dispatch-loop iteration while `func` is on top of
    /// the frame stack. Counts a retired instruction against the hotness
    /// budget and performs tier-up when a threshold is crossed. Entirely
    /// deterministic: the decision depends only on the executed
    /// instruction stream.
    pub(crate) fn poll(&mut self, prog: &CompiledProgram, func: u32) -> TierPoll {
        self.ensure(prog.funcs.len());
        let fi = func as usize;
        let ft = &mut self.fns[fi];
        if let Some(code) = &ft.code {
            return TierPoll::Code(TierCode {
                cfunc: Rc::clone(code),
                threaded: ft.threaded.clone(),
            });
        }
        let hot = match self.mode {
            TieringMode::Off => false,
            TieringMode::Eager => true,
            // Threaded shares Lazy's hotness schedule: the extra lowering
            // is a tier-up *product*, not a different promotion policy, so
            // the two modes promote the same functions at the same points.
            TieringMode::Lazy | TieringMode::Threaded => {
                ft.retired += 1;
                ft.retired >= self.config.hot_retired
                    || ft.invocations >= self.config.hot_invocations
            }
        };
        if !hot {
            return TierPoll::Generic;
        }
        let tiered = Rc::new(tier_up(&prog.funcs[fi], &ft.obs, &self.config));
        let threaded = (self.mode == TieringMode::Threaded)
            .then(|| Rc::new(crate::threaded::compile(&tiered)));
        ft.code = Some(Rc::clone(&tiered));
        ft.threaded = threaded.clone();
        self.tierups += 1;
        TierPoll::TieredNow {
            code: TierCode {
                cfunc: tiered,
                threaded,
            },
            name: prog.funcs[fi].name.clone(),
        }
    }

    /// The direct-threaded body of `func`, if it has been tiered up under
    /// [`TieringMode::Threaded`]. A plain lookup — no hotness counting —
    /// used by the threaded executor to chain calls between already-hot
    /// functions without leaving its inner loop.
    #[inline]
    pub(crate) fn threaded_code(&self, func: u32) -> Option<Rc<ThreadedFunc>> {
        self.fns.get(func as usize)?.threaded.clone()
    }

    /// Tier-up and IC state for introspection and tests.
    pub fn report(&self) -> TierReport {
        let mut functions = Vec::new();
        for ft in &self.fns {
            let Some(code) = &ft.code else { continue };
            let mut ic_sites = Vec::new();
            for instr in &code.code {
                let (kind, ic) = match instr {
                    CInstr::StructGetIC { ic, .. } => ("struct.get", ic),
                    CInstr::StructSetIC { ic, .. } => ("struct.set", ic),
                    CInstr::OverlayGetIC { ic, .. } => ("overlay.get", ic),
                    CInstr::CallCallableIC { ic, .. } => ("callable.call", ic),
                    _ => continue,
                };
                let site = ic.borrow();
                ic_sites.push(IcSiteReport {
                    kind,
                    entries: site.entries.len(),
                    deopt: site.deopt,
                    hits: site.hits,
                    misses: site.misses,
                });
            }
            functions.push(TieredFn {
                name: code.name.clone(),
                ic_sites,
            });
        }
        TierReport {
            tierups: self.tierups,
            functions,
        }
    }
}

/// Snapshot of the engine's tier-up decisions and inline-cache states.
#[derive(Clone, Debug, Default)]
pub struct TierReport {
    pub tierups: u64,
    pub functions: Vec<TieredFn>,
}

/// One tiered function in a [`TierReport`].
#[derive(Clone, Debug)]
pub struct TieredFn {
    pub name: String,
    pub ic_sites: Vec<IcSiteReport>,
}

/// One inline-cache site in a [`TierReport`].
#[derive(Clone, Copy, Debug)]
pub struct IcSiteReport {
    pub kind: &'static str,
    pub entries: usize,
    pub deopt: bool,
    pub hits: u64,
    pub misses: u64,
}

/// Re-lowers one generic function body with runtime feedback: refines
/// `any`-declared parameters to their observed types, runs the static
/// specialization rewrites against the refined types, then installs inline
/// caches at the polymorphic access/call sites. Pure function of
/// `(generic body, observations)` — same inputs, same tiered code.
fn tier_up(generic: &CFunc, obs: &[Obs], config: &TierConfig) -> CFunc {
    let mut cf = generic.clone();
    let mut types = cf.slot_types.clone();
    for (i, o) in obs.iter().enumerate().take(cf.n_params as usize) {
        if !matches!(types.get(i), Some(Type::Any)) {
            continue;
        }
        match o {
            Obs::Int => types[i] = Type::Int(64),
            Obs::Bool => types[i] = Type::Bool,
            Obs::Unseen | Obs::Poly => {}
        }
    }
    let mut stats = SpecStats::default();
    specialize_func_with_types(&mut cf, &types, &mut stats);
    insert_inline_caches(&mut cf, config.ic_cap);
    cf
}

/// Installs IC variants at cacheable sites. Only plain top-level `Op`
/// forms are rewritten: a `GlobalStore`-wrapped site keeps the generic
/// path (globals are rare and the wrapper owns the store semantics).
fn insert_inline_caches(cf: &mut CFunc, cap: usize) {
    for instr in &mut cf.code {
        let replacement = match instr {
            CInstr::Op {
                opcode: Opcode::StructGet,
                target,
                args,
                idents,
            } if args.len() == 1 && !idents.is_empty() => Some(CInstr::StructGetIC {
                target: *target,
                obj: args[0].clone(),
                field: Rc::from(idents[0].as_str()),
                ic: IcSite::new(cap),
            }),
            CInstr::Op {
                opcode: Opcode::StructSet,
                target,
                args,
                idents,
            } if args.len() == 2 && !idents.is_empty() => Some(CInstr::StructSetIC {
                target: *target,
                obj: args[0].clone(),
                value: args[1].clone(),
                field: Rc::from(idents[0].as_str()),
                ic: IcSite::new(cap),
            }),
            CInstr::Op {
                opcode: Opcode::OverlayGet,
                target,
                args,
                idents,
            } if !args.is_empty() && idents.len() >= 2 => Some(CInstr::OverlayGetIC {
                target: *target,
                args: args.clone(),
                oname: Rc::from(idents[0].as_str()),
                field: Rc::from(idents[1].as_str()),
                ic: IcSite::new(cap),
            }),
            CInstr::CallCallable {
                target,
                callable,
                args,
            } => Some(CInstr::CallCallableIC {
                target: *target,
                callable: callable.clone(),
                args: args.clone(),
                ic: IcSite::new(cap),
            }),
            _ => None,
        };
        if let Some(r) = replacement {
            *instr = r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_lattice_joins() {
        let mut o = Obs::Unseen;
        o.observe(&Value::Int(1));
        assert_eq!(o, Obs::Int);
        o.observe(&Value::Int(7));
        assert_eq!(o, Obs::Int);
        o.observe(&Value::str("s"));
        assert_eq!(o, Obs::Poly);
        let mut b = Obs::Unseen;
        b.observe(&Value::Bool(true));
        assert_eq!(b, Obs::Bool);
        b.observe(&Value::Int(0));
        assert_eq!(b, Obs::Poly);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(TieringMode::parse("off"), Some(TieringMode::Off));
        assert_eq!(TieringMode::parse("lazy"), Some(TieringMode::Lazy));
        assert_eq!(TieringMode::parse("eager"), Some(TieringMode::Eager));
        assert_eq!(TieringMode::parse("threaded"), Some(TieringMode::Threaded));
        assert_eq!(TieringMode::parse("warp"), None);
        assert_eq!(TieringMode::Lazy.as_str(), "lazy");
        assert_eq!(TieringMode::Threaded.as_str(), "threaded");
    }

    #[test]
    fn tier_up_refines_observed_int_params() {
        // An `any` parameter observed int specializes the arithmetic on it.
        let m = crate::parser::parse_module(
            r#"
module M
int<64> f(any x) {
    local int<64> y
    y = int.add x 1
    return y
}
"#,
        )
        .unwrap();
        let linked = crate::linker::link_with_priorities(vec![m]).unwrap();
        let prog = crate::bytecode::compile(&linked).unwrap();
        let generic = prog.func("M::f").unwrap();
        let tiered = tier_up(generic, &[Obs::Int], &TierConfig::default());
        assert!(
            tiered
                .code
                .iter()
                .any(|i| matches!(i, CInstr::AddInt { .. })),
            "{:#?}",
            tiered.code
        );
        // Poly observation leaves it generic.
        let still_generic = tier_up(generic, &[Obs::Poly], &TierConfig::default());
        assert!(still_generic.code.iter().any(|i| matches!(
            i,
            CInstr::Op {
                opcode: Opcode::IntAdd,
                ..
            }
        )));
    }

    #[test]
    fn tier_up_installs_inline_caches() {
        let m = crate::parser::parse_module(
            r#"
module M
type T = struct { int<64> a, int<64> b }
int<64> getb(any s) {
    local int<64> v
    v = struct.get s b
    return v
}
"#,
        )
        .unwrap();
        let linked = crate::linker::link_with_priorities(vec![m]).unwrap();
        let prog = crate::bytecode::compile(&linked).unwrap();
        let generic = prog.func("M::getb").unwrap();
        let tiered = tier_up(generic, &[], &TierConfig::default());
        assert!(
            tiered
                .code
                .iter()
                .any(|i| matches!(i, CInstr::StructGetIC { .. })),
            "{:#?}",
            tiered.code
        );
        // pc-preserving: same instruction count, and every IC site renders
        // exactly like the generic op it replaced.
        assert_eq!(generic.code.len(), tiered.code.len());
        for (g, t) in generic.code.iter().zip(tiered.code.iter()) {
            if matches!(t, CInstr::StructGetIC { .. }) {
                assert_eq!(g.render(), t.render());
            }
        }
    }
}
