//! Direct-threaded code: the top rung of the adaptive tier ladder.
//!
//! The specialized tier (`crate::specialize` + `crate::tier`) removes the
//! `ops::eval` megamatch for typed instructions but still re-dispatches
//! through the main loop's `CInstr` fetch/decode on every iteration. This
//! module compiles a tiered function's specialized bytecode one step
//! further, into a flat array of *pre-bound* threaded ops ([`TOp`]): slot
//! and immediate operands, branch targets, and inline-cache handles are all
//! resolved at tier-up time, so the executor (`vm::run_threaded`) is a
//! single tight match over small enum ops with no per-instruction operand
//! decoding — the direct-threaded baseline-tier design of Titzer's
//! baseline-compiler study (arXiv 2305.13241) and Deegen (arXiv 2411.11469).
//!
//! ## Parity contract
//!
//! Threaded code must be observationally invisible, exactly like the
//! specialized tier below it:
//!
//! * **pc-preserving.** `compile` lowers exactly one [`TOp`] per `CInstr`
//!   pc, so branch targets carry over untranslated and execution can leave
//!   threaded code at *any* pc (deopt) with the generic body resuming at
//!   the same site — on-stack replacement at the dispatch boundary.
//! * **Fuel-identical.** Each threaded op charges the same cost at the same
//!   program point as its generic rendering (1 unit, `BrIfInt` 2). The
//!   executor meters through a local countdown clamped to
//!   `WATCHDOG_CHECK_UNITS` when a delivery deadline is armed, mirroring
//!   the specialized fast loop, so deadline-detection latency is unchanged.
//! * **Deopt, don't duplicate.** Anything with an effectful or raising
//!   path that the generic arms own — host calls, hooks, generic `Op`s,
//!   exception raising itself, IC *misses* — lowers to [`TOp::Deopt`] (or
//!   exits on the miss): the executor stops *before* charging and the
//!   generic arm re-executes that one instruction, so every exception,
//!   trace line, and IC-counter update flows through exactly one code
//!   path. IC sites share the same `Rc<RefCell<IcSite>>` as the tiered
//!   `CFunc`, so hit/miss statistics stay in one place.
//! * **Observational modes never reach here.** Tracing, stats, profiling
//!   and armed fault injection pin the generic tier in `vm::run`, so those
//!   outputs are byte-identical across all tiering modes by construction.

use std::cell::RefCell;
use std::rc::Rc;

use crate::bytecode::{CFunc, CInstr, COperand, IcSite, IntBit, IntCmp, IntSrc};
use crate::value::Value;

/// A pre-bound operand: the threaded analog of [`COperand`], with the
/// indirection resolved at tier-up rather than re-matched per execution.
#[derive(Clone, Debug)]
pub(crate) enum TSrc {
    Slot(u16),
    Global(u32),
    Value(Value),
}

impl TSrc {
    fn from_operand(op: &COperand) -> TSrc {
        match op {
            COperand::Slot(s) => TSrc::Slot(*s),
            COperand::Global(g) => TSrc::Global(*g),
            COperand::Value(v) => TSrc::Value(v.clone()),
        }
    }
}

/// One pre-bound threaded op. Costs and semantics match the `CInstr` it
/// was lowered from one for one; see the module docs for the contract.
#[derive(Clone, Debug)]
pub(crate) enum TOp {
    AddInt {
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    SubInt {
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    MulInt {
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    BitInt {
        op: IntBit,
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    CmpInt {
        cmp: IntCmp,
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    /// Fused compare-and-branch; charges 2 like its generic rendering.
    BrIfInt {
        cmp: IntCmp,
        a: IntSrc,
        b: IntSrc,
        dst: u16,
        then_pc: u32,
        else_pc: u32,
    },
    MoveSlot {
        dst: u16,
        src: u16,
    },
    LoadImm {
        dst: u16,
        v: Value,
    },
    BrBool {
        cond: u16,
        then_pc: u32,
        else_pc: u32,
    },
    Jump(u32),
    Branch {
        cond: TSrc,
        then_pc: u32,
        else_pc: u32,
    },
    Return(Option<TSrc>),
    /// Direct call with pre-bound argument sources; the callee's frame
    /// layout is read from the program image at execution time so the op
    /// stays valid across contexts sharing one image.
    Call {
        func: u32,
        args: Box<[TSrc]>,
        ret_slot: Option<u16>,
        ret_global: Option<u32>,
    },
    PushHandler {
        pc: u32,
        kind: Rc<str>,
        binder: Option<u16>,
    },
    PopHandler,
    /// `struct.get` hit path; shares the tiered `CFunc`'s cache site. A
    /// miss — or any raising path — deopts to the IC arm in the generic
    /// loop, which owns resolution, refill and error semantics.
    StructGetIC {
        target: Option<u16>,
        obj: TSrc,
        ic: Rc<RefCell<IcSite>>,
    },
    /// `struct.set` hit path; same sharing and deopt rules.
    StructSetIC {
        target: Option<u16>,
        obj: TSrc,
        value: TSrc,
        ic: Rc<RefCell<IcSite>>,
    },
    /// Everything else: hand this pc back to the generic dispatch loop.
    Deopt,
}

/// A function compiled to direct-threaded ops, produced at tier-up by
/// [`compile`] and cached per function in [`crate::tier::TierEngine`].
#[derive(Debug)]
pub(crate) struct ThreadedFunc {
    pub(crate) ops: Box<[TOp]>,
}

/// Lowers a tiered (specialized + IC'd) function body into threaded ops,
/// one per pc. Pure function of the input body: same code, same ops.
pub(crate) fn compile(cf: &CFunc) -> ThreadedFunc {
    let ops = cf.code.iter().map(lower).collect();
    ThreadedFunc { ops }
}

fn lower(instr: &CInstr) -> TOp {
    match instr {
        CInstr::AddInt { dst, a, b } => TOp::AddInt {
            dst: *dst,
            a: *a,
            b: *b,
        },
        CInstr::SubInt { dst, a, b } => TOp::SubInt {
            dst: *dst,
            a: *a,
            b: *b,
        },
        CInstr::MulInt { dst, a, b } => TOp::MulInt {
            dst: *dst,
            a: *a,
            b: *b,
        },
        CInstr::BitInt { op, dst, a, b } => TOp::BitInt {
            op: *op,
            dst: *dst,
            a: *a,
            b: *b,
        },
        CInstr::CmpInt { cmp, dst, a, b } => TOp::CmpInt {
            cmp: *cmp,
            dst: *dst,
            a: *a,
            b: *b,
        },
        CInstr::BrIfInt {
            cmp,
            a,
            b,
            dst,
            then_pc,
            else_pc,
        } => TOp::BrIfInt {
            cmp: *cmp,
            a: *a,
            b: *b,
            dst: *dst,
            then_pc: *then_pc,
            else_pc: *else_pc,
        },
        CInstr::MoveSlot { dst, src } => TOp::MoveSlot {
            dst: *dst,
            src: *src,
        },
        CInstr::LoadImm { dst, v } => TOp::LoadImm {
            dst: *dst,
            v: v.clone(),
        },
        CInstr::BrBool {
            cond,
            then_pc,
            else_pc,
        } => TOp::BrBool {
            cond: *cond,
            then_pc: *then_pc,
            else_pc: *else_pc,
        },
        CInstr::Jump(pc) => TOp::Jump(*pc),
        CInstr::Branch {
            cond,
            then_pc,
            else_pc,
        } => TOp::Branch {
            cond: TSrc::from_operand(cond),
            then_pc: *then_pc,
            else_pc: *else_pc,
        },
        CInstr::Return(v) => TOp::Return(v.as_ref().map(TSrc::from_operand)),
        CInstr::Call { target, func, args } => TOp::Call {
            func: *func,
            args: args.iter().map(TSrc::from_operand).collect(),
            ret_slot: *target,
            ret_global: None,
        },
        // A global-storing call keeps the call fast path; the store target
        // rides along exactly like the generic arm's unwrapped form. Every
        // other GlobalStore-wrapped instruction stays generic.
        CInstr::GlobalStore { global, inner } => match &**inner {
            CInstr::Call { target, func, args } => TOp::Call {
                func: *func,
                args: args.iter().map(TSrc::from_operand).collect(),
                ret_slot: *target,
                ret_global: Some(*global),
            },
            _ => TOp::Deopt,
        },
        CInstr::PushHandler { pc, kind, binder } => TOp::PushHandler {
            pc: *pc,
            kind: Rc::clone(kind),
            binder: *binder,
        },
        CInstr::PopHandler => TOp::PopHandler,
        CInstr::StructGetIC {
            target, obj, ic, ..
        } => TOp::StructGetIC {
            target: *target,
            obj: TSrc::from_operand(obj),
            ic: Rc::clone(ic),
        },
        CInstr::StructSetIC {
            target,
            obj,
            value,
            ic,
            ..
        } => TOp::StructSetIC {
            target: *target,
            obj: TSrc::from_operand(obj),
            value: TSrc::from_operand(value),
            ic: Rc::clone(ic),
        },
        // Generic ops, host calls, hooks, callable/overlay ICs (re-entrant
        // or clone-heavy paths) and yields all run on the generic loop.
        _ => TOp::Deopt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::link_with_priorities;
    use crate::parser::parse_module;

    fn compiled(src: &str, func: &str) -> (CFunc, ThreadedFunc) {
        let m = parse_module(src).unwrap();
        let linked = link_with_priorities(vec![m]).unwrap();
        let mut prog = crate::bytecode::compile(&linked).unwrap();
        crate::specialize::specialize_program(&mut prog);
        let cf = prog.func(func).unwrap().clone();
        let tf = compile(&cf);
        (cf, tf)
    }

    #[test]
    fn lowering_is_pc_preserving() {
        let (cf, tf) = compiled(
            r#"
module M
int<64> sum(int<64> n) {
    local int<64> i
    local int<64> acc
    local bool more
    i = assign 0
    acc = assign 0
loop:
    acc = int.add acc i
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
"#,
            "M::sum",
        );
        assert_eq!(cf.code.len(), tf.ops.len());
        for (ci, to) in cf.code.iter().zip(tf.ops.iter()) {
            match ci {
                CInstr::BrIfInt { then_pc, .. } => {
                    // Branch targets carry over untranslated.
                    let TOp::BrIfInt { then_pc: t, .. } = to else {
                        panic!("{to:?}")
                    };
                    assert_eq!(then_pc, t);
                }
                CInstr::Return(_) => assert!(matches!(to, TOp::Return(_))),
                _ => {}
            }
        }
    }

    #[test]
    fn recursive_call_lowers_to_threaded_call() {
        let (_, tf) = compiled(
            r#"
module M
int<64> fib(int<64> n) {
    local bool base
    local int<64> a
    local int<64> b
    base = int.lt n 2
    if.else base ret rec
ret:
    return n
rec:
    a = int.sub n 1
    a = call fib (a)
    b = int.sub n 2
    b = call fib (b)
    a = int.add a b
    return a
}
"#,
            "M::fib",
        );
        assert!(
            tf.ops.iter().any(|o| matches!(
                o,
                TOp::Call {
                    ret_slot: Some(_),
                    ..
                }
            )),
            "{:#?}",
            tf.ops
        );
        // Nothing in this body needs the generic loop.
        assert!(!tf.ops.iter().any(|o| matches!(o, TOp::Deopt)));
    }

    #[test]
    fn effectful_sites_lower_to_deopt() {
        let (_, tf) = compiled(
            r#"
module M
void f() {
    call Hilti::print "hello"
}
"#,
            "M::f",
        );
        // `print` is a generic op: the threaded body hands it back.
        assert!(
            tf.ops.iter().any(|o| matches!(o, TOp::Deopt)),
            "{:#?}",
            tf.ops
        );
    }
}
