//! IR optimization passes.
//!
//! §6.6 of the paper notes its prototype "lacks support for even the most
//! basic compiler optimizations, such as constant folding and common
//! subexpression elimination at the HILTI level". This module implements
//! those passes — constant folding, copy propagation, local CSE, dead-code
//! elimination, and jump threading — as the optimization stage between the
//! front end and bytecode lowering. Benchmark A1 measures their effect
//! (the ablation the paper could not run).
//!
//! All passes are conservative: only [`Opcode::is_pure`] instructions are
//! folded, propagated, or eliminated, and only within a basic block where
//! cross-block state is not tracked.

use std::collections::{HashMap, HashSet};

use crate::ir::{Const, Function, Instr, Module, Opcode, Operand, Terminator};

/// Optimization level.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum OptLevel {
    /// No transformations (the paper's prototype).
    None,
    /// All passes, iterated to a fixed point.
    #[default]
    Full,
}

/// Statistics from one optimization run (observability + tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    pub constants_folded: usize,
    pub copies_propagated: usize,
    pub cse_hits: usize,
    pub dead_removed: usize,
    pub blocks_threaded: usize,
}

impl PassStats {
    pub fn total(&self) -> usize {
        self.constants_folded
            + self.copies_propagated
            + self.cse_hits
            + self.dead_removed
            + self.blocks_threaded
    }
}

/// Optimizes every function in a module.
pub fn optimize_module(m: &mut Module, level: OptLevel) -> PassStats {
    let mut stats = PassStats::default();
    if level == OptLevel::None {
        return stats;
    }
    for f in &mut m.functions {
        merge(&mut stats, optimize_function(f));
    }
    for bodies in m.hooks.values_mut() {
        for b in bodies {
            merge(&mut stats, optimize_function(&mut b.func));
        }
    }
    stats
}

/// Optimizes every function in a linked program.
pub fn optimize_linked(l: &mut crate::linker::Linked, level: OptLevel) -> PassStats {
    let mut stats = PassStats::default();
    if level == OptLevel::None {
        return stats;
    }
    for f in l.functions.values_mut() {
        merge(&mut stats, optimize_function(f));
    }
    for bodies in l.hooks.values_mut() {
        for f in bodies {
            merge(&mut stats, optimize_function(f));
        }
    }
    stats
}

fn merge(into: &mut PassStats, from: PassStats) {
    into.constants_folded += from.constants_folded;
    into.copies_propagated += from.copies_propagated;
    into.cse_hits += from.cse_hits;
    into.dead_removed += from.dead_removed;
    into.blocks_threaded += from.blocks_threaded;
}

/// Runs all passes on one function to a fixed point.
pub fn optimize_function(f: &mut Function) -> PassStats {
    let mut stats = PassStats::default();
    // Fixed-point with a hard round cap: conservative passes converge in a
    // handful of rounds; the cap guards against any pass miscounting a
    // no-op rewrite as progress.
    for round_no in 0..16 {
        let mut round = PassStats::default();
        round.copies_propagated += copy_propagate(f);
        round.constants_folded += const_fold(f);
        round.cse_hits += cse(f);
        round.dead_removed += dce(f);
        round.blocks_threaded += jump_thread(f);
        let changed = round.total() > 0;
        if std::env::var_os("HILTI_OPT_DEBUG").is_some() {
            eprintln!("opt round {round_no}: {round:?}");
        }
        merge(&mut stats, round);
        if !changed {
            break;
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// Constant folding

/// Evaluates pure instructions whose operands are all constants.
fn const_fold(f: &mut Function) -> usize {
    let mut folded = 0;
    for block in &mut f.blocks {
        for instr in &mut block.instrs {
            if !instr.opcode.is_pure() || instr.target.is_none() {
                continue;
            }
            if instr.opcode == Opcode::Assign {
                continue; // nothing to fold
            }
            let consts: Option<Vec<&Const>> = instr
                .args
                .iter()
                .map(|a| match a {
                    Operand::Const(c) => Some(c),
                    Operand::Var(_) => None,
                })
                .collect();
            let Some(consts) = consts else { continue };
            if let Some(result) = fold(instr.opcode, &consts) {
                *instr = Instr {
                    target: instr.target.clone(),
                    opcode: Opcode::Assign,
                    args: vec![Operand::Const(result)],
                };
                folded += 1;
            }
        }
    }
    folded
}

/// Folds one pure opcode over constant operands, where semantics are
/// simple enough to evaluate at compile time.
fn fold(op: Opcode, args: &[&Const]) -> Option<Const> {
    use Const::*;
    use Opcode::*;
    let int2 = || -> Option<(i64, i64)> {
        match (args.first()?, args.get(1)?) {
            (Int(a), Int(b)) => Some((*a, *b)),
            _ => None,
        }
    };
    let bool2 = || -> Option<(bool, bool)> {
        match (args.first()?, args.get(1)?) {
            (Bool(a), Bool(b)) => Some((*a, *b)),
            _ => None,
        }
    };
    Some(match op {
        IntAdd => int2().map(|(a, b)| Int(a.wrapping_add(b)))?,
        IntSub => int2().map(|(a, b)| Int(a.wrapping_sub(b)))?,
        IntMul => int2().map(|(a, b)| Int(a.wrapping_mul(b)))?,
        IntDiv => {
            let (a, b) = int2()?;
            if b == 0 {
                return None; // keep the runtime exception
            }
            Int(a.wrapping_div(b))
        }
        IntMod => {
            let (a, b) = int2()?;
            if b == 0 {
                return None;
            }
            Int(a.wrapping_rem(b))
        }
        IntEq => int2().map(|(a, b)| Bool(a == b))?,
        IntLt => int2().map(|(a, b)| Bool(a < b))?,
        IntGt => int2().map(|(a, b)| Bool(a > b))?,
        IntLeq => int2().map(|(a, b)| Bool(a <= b))?,
        IntGeq => int2().map(|(a, b)| Bool(a >= b))?,
        IntAnd => int2().map(|(a, b)| Int(a & b))?,
        IntOr => int2().map(|(a, b)| Int(a | b))?,
        IntXor => int2().map(|(a, b)| Int(a ^ b))?,
        IntShl => int2().map(|(a, b)| Int(a.wrapping_shl(b as u32)))?,
        IntShr => int2().map(|(a, b)| Int(((a as u64) >> (b as u32 & 63)) as i64))?,
        IntNeg => match args.first()? {
            Int(a) => Int(a.wrapping_neg()),
            _ => return None,
        },
        BoolAnd => bool2().map(|(a, b)| Bool(a && b))?,
        BoolOr => bool2().map(|(a, b)| Bool(a || b))?,
        BoolXor => bool2().map(|(a, b)| Bool(a ^ b))?,
        BoolNot => match args.first()? {
            Bool(a) => Bool(!a),
            _ => return None,
        },
        StringConcat => match (args.first()?, args.get(1)?) {
            (Str(a), Str(b)) => Str(format!("{a}{b}")),
            _ => return None,
        },
        StringLength => match args.first()? {
            Str(a) => Int(a.chars().count() as i64),
            _ => return None,
        },
        Equal => fold_equal(args)?,
        Unequal => match fold_equal(args)? {
            Bool(b) => Bool(!b),
            _ => return None,
        },
        IntToDouble => match args.first()? {
            Int(a) => Double(*a as f64),
            _ => return None,
        },
        DoubleToInt => match args.first()? {
            Double(a) => Int(*a as i64),
            _ => return None,
        },
        _ => return None,
    })
}

fn fold_equal(args: &[&Const]) -> Option<Const> {
    use Const::*;
    Some(match (args.first()?, args.get(1)?) {
        (Int(a), Int(b)) => Bool(a == b),
        (Bool(a), Bool(b)) => Bool(a == b),
        (Str(a), Str(b)) => Bool(a == b),
        (Addr(a), Addr(b)) => Bool(a == b),
        (Port(a), Port(b)) => Bool(a == b),
        (Addr(a), Net(n)) | (Net(n), Addr(a)) => Bool(n.contains(a)),
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Copy propagation (within block)

fn copy_propagate(f: &mut Function) -> usize {
    let mut propagated = 0;
    for block in &mut f.blocks {
        // var → replacement operand.
        let mut copies: HashMap<String, Operand> = HashMap::new();
        for instr in &mut block.instrs {
            // Substitute uses first (only counting real changes, so the
            // fixed-point loop sees convergence).
            for arg in &mut instr.args {
                if let Operand::Var(v) = arg {
                    if let Some(rep) = copies.get(v) {
                        if rep != arg {
                            *arg = rep.clone();
                            propagated += 1;
                        }
                    }
                }
            }
            // Writing to a target invalidates copies of and through it.
            if let Some(t) = &instr.target {
                copies.remove(t);
                copies.retain(|_, rep| !matches!(rep, Operand::Var(v) if v == t));
                if instr.opcode == Opcode::Assign {
                    // Record the new copy (safe only for pure value flow;
                    // heap values share state either way, so propagating
                    // the reference is still correct). Self-copies are not
                    // recorded — they would loop the substitution.
                    if let Some(arg) = instr.args.first() {
                        if !matches!(arg, Operand::Var(v) if v == t) {
                            copies.insert(t.clone(), arg.clone());
                        }
                    }
                }
            }
        }
        // Terminator uses.
        match &mut block.term {
            Terminator::IfElse(cond, _, _) => {
                if let Operand::Var(v) = cond {
                    if let Some(rep) = copies.get(v) {
                        if rep != cond {
                            *cond = rep.clone();
                            propagated += 1;
                        }
                    }
                }
            }
            Terminator::Return(Some(v)) => {
                if let Operand::Var(name) = v {
                    if let Some(rep) = copies.get(name) {
                        if rep != v {
                            *v = rep.clone();
                            propagated += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    propagated
}

// ---------------------------------------------------------------------------
// Common subexpression elimination (within block)

fn cse(f: &mut Function) -> usize {
    let mut hits = 0;
    for block in &mut f.blocks {
        // (opcode, rendered args) → earlier target.
        let mut seen: HashMap<String, String> = HashMap::new();
        for instr in &mut block.instrs {
            let mut record: Option<(String, String)> = None;
            if instr.opcode.is_pure() && instr.opcode != Opcode::Assign && instr.target.is_some() {
                let key = format!("{:?}|{:?}", instr.opcode, instr.args);
                if let Some(prev) = seen.get(&key) {
                    // Re-use the earlier result.
                    let prev = prev.clone();
                    *instr = Instr {
                        target: instr.target.clone(),
                        opcode: Opcode::Assign,
                        args: vec![Operand::Var(prev)],
                    };
                    hits += 1;
                } else if let Some(t) = &instr.target {
                    // Never record an expression that reads its own target
                    // (`it = iterator.incr it 1`): the operand names the
                    // pre-write value, so the key goes stale immediately.
                    let self_ref = instr
                        .args
                        .iter()
                        .any(|a| matches!(a, Operand::Var(v) if v == t));
                    if !self_ref {
                        record = Some((key, t.clone()));
                    }
                }
            }
            // Any write invalidates expressions that used or produced the
            // target — *before* recording the expression computed here.
            if let Some(t) = &instr.target {
                let t = t.clone();
                seen.retain(|key, v| v != &t && !key.contains(&format!("Var(\"{t}\")")));
            }
            if let Some((key, t)) = record {
                seen.insert(key, t);
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// Dead code elimination

fn dce(f: &mut Function) -> usize {
    // Count uses of every variable across the whole function.
    let mut uses: HashMap<&str, usize> = HashMap::new();
    for block in &f.blocks {
        for instr in &block.instrs {
            for arg in &instr.args {
                if let Operand::Var(v) = arg {
                    *uses.entry(v.as_str()).or_default() += 1;
                }
            }
        }
        match &block.term {
            Terminator::IfElse(Operand::Var(v), _, _) => {
                *uses.entry(v.as_str()).or_default() += 1;
            }
            Terminator::Return(Some(Operand::Var(v))) => {
                *uses.entry(v.as_str()).or_default() += 1;
            }
            _ => {}
        }
    }
    let uses: HashMap<String, usize> = uses.into_iter().map(|(k, v)| (k.to_owned(), v)).collect();

    let mut removed = 0;
    for block in &mut f.blocks {
        let before = block.instrs.len();
        block.instrs.retain(|instr| {
            let deletable = instr.opcode.is_pure()
                && !can_trap(instr.opcode)
                && instr
                    .target
                    .as_ref()
                    .map(|t| {
                        // Globals (qualified names) are observable state.
                        !t.contains("::") && uses.get(t).copied().unwrap_or(0) == 0
                    })
                    .unwrap_or(false);
            !deletable
        });
        removed += before - block.instrs.len();
    }
    removed
}

/// Pure instructions that can still raise an exception on some inputs;
/// removing them as dead code would change observable behaviour.
fn can_trap(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::IntDiv
            | Opcode::IntMod
            | Opcode::DoubleDiv
            | Opcode::StringToInt
            | Opcode::TupleGet
            | Opcode::Select
    )
}

// ---------------------------------------------------------------------------
// Jump threading / unreachable block removal

fn jump_thread(f: &mut Function) -> usize {
    let mut changed = 0;

    // Map label → final destination through chains of empty jump blocks.
    let mut forward: HashMap<String, String> = HashMap::new();
    for b in &f.blocks {
        if b.instrs.is_empty() {
            if let Terminator::Jump(dst) = &b.term {
                if *dst != b.label {
                    forward.insert(b.label.clone(), dst.clone());
                }
            }
        }
    }
    let resolve = |label: &str, forward: &HashMap<String, String>| -> String {
        let mut cur = label.to_owned();
        let mut hops = 0;
        while let Some(next) = forward.get(&cur) {
            cur = next.clone();
            hops += 1;
            if hops > forward.len() {
                break; // cycle guard
            }
        }
        cur
    };
    for b in &mut f.blocks {
        match &mut b.term {
            Terminator::Jump(l) => {
                let r = resolve(l, &forward);
                if r != *l {
                    *l = r;
                    changed += 1;
                }
            }
            Terminator::IfElse(_, l1, l2) => {
                for l in [l1, l2] {
                    let r = resolve(l, &forward);
                    if r != *l {
                        *l = r;
                        changed += 1;
                    }
                }
            }
            _ => {}
        }
    }

    // Remove unreachable blocks (entry block + referenced labels survive).
    let mut reachable: HashSet<String> = HashSet::new();
    let mut stack = vec![f.blocks[0].label.clone()];
    // Handler labels referenced from push_handler instructions are live.
    for b in &f.blocks {
        for i in &b.instrs {
            if i.opcode == Opcode::PushHandler {
                if let Some(Operand::Const(Const::Label(l))) = i.args.first() {
                    stack.push(l.clone());
                }
            }
        }
    }
    while let Some(l) = stack.pop() {
        if !reachable.insert(l.clone()) {
            continue;
        }
        if let Some(b) = f.blocks.iter().find(|b| b.label == l) {
            match &b.term {
                Terminator::Jump(d) => stack.push(d.clone()),
                Terminator::IfElse(_, d1, d2) => {
                    stack.push(d1.clone());
                    stack.push(d2.clone());
                }
                Terminator::Return(_) => {}
            }
        }
    }
    let before = f.blocks.len();
    f.blocks.retain(|b| reachable.contains(&b.label));
    changed + (before - f.blocks.len())
}

/// §3.3: "The HILTI compiler can also insert instrumentation to profile at
/// function granularity." Wraps every function body in
/// `profiler.start`/`profiler.stop` spans named after the function;
/// accumulated (inclusive — callees are counted in their callers) times
/// are readable via `Context::profile_ns("fn:<name>")`.
pub fn instrument_functions(l: &mut crate::linker::Linked) -> usize {
    let mut instrumented = 0;
    let mut fix = |f: &mut Function| {
        let span = format!("fn:{}", f.name);
        if let Some(entry) = f.blocks.first_mut() {
            entry.instrs.insert(
                0,
                Instr::new(None, Opcode::ProfilerStart, vec![Operand::ident(&span)]),
            );
        }
        for b in &mut f.blocks {
            if matches!(b.term, Terminator::Return(_)) {
                b.instrs.push(Instr::new(
                    None,
                    Opcode::ProfilerStop,
                    vec![Operand::ident(&span)],
                ));
            }
        }
        instrumented += 1;
    };
    for f in l.functions.values_mut() {
        fix(f);
    }
    for bodies in l.hooks.values_mut() {
        for f in bodies {
            fix(f);
        }
    }
    instrumented
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn optimized(src: &str, fname: &str) -> (Function, PassStats) {
        let m = parse_module(src).unwrap();
        let mut f = m.function(fname).unwrap().clone();
        let stats = optimize_function(&mut f);
        (f, stats)
    }

    #[test]
    fn folds_constant_arithmetic() {
        let (f, stats) = optimized(
            r#"
module M
int<64> f() {
    local int<64> x
    x = int.add 2 3
    x = int.mul x 10
    return x
}
"#,
            "M::f",
        );
        assert!(stats.constants_folded >= 2, "{stats:?}");
        // Everything folds down to `return 50`.
        match &f.blocks[0].term {
            Terminator::Return(Some(Operand::Const(Const::Int(50)))) => {}
            other => panic!("expected folded return, got {other:?}"),
        }
    }

    #[test]
    fn folds_division_but_not_by_zero() {
        let (_, stats) = optimized(
            "module M\nint<64> f() {\n  local int<64> x\n  x = int.div 10 2\n  return x\n}\n",
            "M::f",
        );
        assert!(stats.constants_folded >= 1);
        let (f, _) = optimized(
            "module M\nint<64> f() {\n  local int<64> x\n  x = int.div 10 0\n  return x\n}\n",
            "M::f",
        );
        // Division by zero stays for the runtime exception.
        assert!(f.blocks[0]
            .instrs
            .iter()
            .any(|i| i.opcode == Opcode::IntDiv));
    }

    #[test]
    fn cse_reuses_duplicate_expressions() {
        let (f, stats) = optimized(
            r#"
module M
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> z
    x = int.add a b
    y = int.add a b
    z = int.add x y
    return z
}
"#,
            "M::f",
        );
        assert!(stats.cse_hits >= 1, "{stats:?}");
        let adds = f.blocks[0]
            .instrs
            .iter()
            .filter(|i| i.opcode == Opcode::IntAdd)
            .count();
        assert!(
            adds <= 2,
            "expected duplicate add removed: {:?}",
            f.blocks[0].instrs
        );
    }

    #[test]
    fn cse_respects_redefinition() {
        let (f, _) = optimized(
            r#"
module M
int<64> f(int<64> a) {
    local int<64> x
    local int<64> y
    x = int.add a 1
    a = int.add a 1
    y = int.add a 1
    return y
}
"#,
            "M::f",
        );
        // `y = int.add a 1` must NOT be replaced with x: `a` changed.
        let adds = f.blocks[0]
            .instrs
            .iter()
            .filter(|i| i.opcode == Opcode::IntAdd)
            .count();
        assert!(adds >= 2, "{:?}", f.blocks[0].instrs);
    }

    #[test]
    fn dce_removes_unused_results() {
        let (f, stats) = optimized(
            r#"
module M
int<64> f(int<64> a) {
    local int<64> unused
    unused = int.mul a 100
    return a
}
"#,
            "M::f",
        );
        assert!(stats.dead_removed >= 1, "{stats:?}");
        assert!(f.blocks[0].instrs.is_empty());
    }

    #[test]
    fn dce_keeps_side_effects() {
        let (f, _) = optimized(
            r#"
module M
void f(ref<list<int<64>>> l) {
    list.push_back l 1
}
"#,
            "M::f",
        );
        assert_eq!(f.blocks[0].instrs.len(), 1);
    }

    #[test]
    fn jump_threading_collapses_chains() {
        let (f, stats) = optimized(
            r#"
module M
int<64> f(bool b) {
    if.else b a1 a2
a1:
    jump middle
middle:
    jump target
target:
    return 1
a2:
    return 2
}
"#,
            "M::f",
        );
        assert!(stats.blocks_threaded >= 1, "{stats:?}");
        // The if now branches (transitively) straight to target.
        match &f.blocks[0].term {
            Terminator::IfElse(_, l1, _) => assert_eq!(l1, "target"),
            other => panic!("unexpected {other:?}"),
        }
        // Intermediate empty blocks were dropped.
        assert!(f.block("a1").is_none());
        assert!(f.block("middle").is_none());
    }

    #[test]
    fn copy_propagation_feeds_folding() {
        let (f, stats) = optimized(
            r#"
module M
int<64> f() {
    local int<64> a
    local int<64> b
    a = assign 5
    b = assign a
    b = int.add b 2
    return b
}
"#,
            "M::f",
        );
        assert!(stats.copies_propagated >= 1, "{stats:?}");
        assert!(stats.constants_folded >= 1, "{stats:?}");
        match &f.blocks[0].term {
            Terminator::Return(Some(Operand::Const(Const::Int(7)))) => {}
            other => panic!("expected folded return, got {other:?}"),
        }
    }

    #[test]
    fn globals_survive_dce() {
        let m = parse_module(
            r#"
module M
global int<64> g = 0
void f() {
    g = int.add g 1
}
"#,
        )
        .unwrap();
        let mut linked = crate::linker::link_with_priorities(vec![m]).unwrap();
        let stats = optimize_linked(&mut linked, OptLevel::Full);
        let f = linked.function("M::f").unwrap();
        assert_eq!(f.blocks[0].instrs.len(), 1, "{stats:?}");
    }

    #[test]
    fn optlevel_none_is_identity() {
        let mut m = parse_module(
            "module M\nint<64> f() {\n  local int<64> x\n  x = int.add 1 2\n  return x\n}\n",
        )
        .unwrap();
        let orig = m.clone();
        let stats = optimize_module(&mut m, OptLevel::None);
        assert_eq!(stats.total(), 0);
        assert_eq!(
            format!("{:?}", m.functions),
            format!("{:?}", orig.functions)
        );
    }
}
