//! Operational semantics of the data instructions.
//!
//! Both execution engines — the tree-walking interpreter and the bytecode
//! VM — delegate every non-control-flow instruction here, exactly as the
//! paper's generated native code calls into one shared C runtime library
//! (§5 "Runtime Library"). Control flow (calls, jumps, yields, handlers)
//! stays engine-specific.
//!
//! Instructions validate their operands and raise typed exceptions instead
//! of exhibiting undefined behaviour (§7 "Safe Execution Environment"):
//! every function here returns `RtResult`, and a raised error either hits a
//! handler installed by `exception.push_handler` or propagates out of the
//! program.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use hilti_rt::bytestring::Bytes;
use hilti_rt::classifier::{Backend, Classifier, FieldMatcher, FieldValue};
use hilti_rt::containers::ExpireStrategy;
use hilti_rt::error::{ExceptionKind, RtError, RtResult};
use hilti_rt::file::LogFile;
use hilti_rt::limits::AllocBudget;
use hilti_rt::overlay::{OverlayType, Unpacked};
use hilti_rt::regexp::{MatchVerdict, Regex};
use hilti_rt::time::{Interval, Time};
use hilti_rt::timer::TimerMgr;

use crate::ir::Opcode;
use crate::types::Type;
use crate::value::{CallableVal, ExceptionVal, MapVal, SetVal, StructVal, TimerEntry, Value};

/// A heap container registered for global-time expiration.
#[derive(Clone)]
pub enum ExpiringHandle {
    Set(Rc<RefCell<SetVal>>),
    Map(Rc<RefCell<MapVal>>),
}

/// What the engines must provide to the shared semantics.
pub trait ExecCtx {
    /// Emits one line of program output (`Hilti::print`, `debug.print`).
    fn output(&mut self, line: String);
    /// The global (network) time of this execution context.
    fn global_time(&self) -> Time;
    fn set_global_time(&mut self, t: Time);
    /// Registers a container for expiration driven by global time.
    fn register_expiring(&mut self, handle: ExpiringHandle);
    /// Expires entries in registered containers up to `t`.
    fn advance_expiring(&mut self, t: Time);
    /// Looks up a struct type's field names, in declaration order.
    fn struct_fields(&self, type_name: &str) -> Option<Vec<String>>;
    /// Looks up an overlay type.
    fn overlay(&self, type_name: &str) -> Option<Rc<OverlayType>>;
    /// Opens (or returns the already-open) named output file.
    fn open_file(&mut self, name: &str) -> LogFile;
    /// Opens a named input source (host-registered).
    fn open_iosrc(&mut self, name: &str) -> RtResult<Value>;
    /// Schedules a callable onto a virtual thread.
    fn schedule_thread(&mut self, tid: u64, callable: CallableVal) -> RtResult<()>;
    /// The executing virtual thread's id.
    fn thread_id(&self) -> u64;
    /// Profiler hooks.
    fn profiler_start(&mut self, name: &str);
    fn profiler_stop(&mut self, name: &str);
    fn profiler_count(&mut self, name: &str, n: u64);
    fn profiler_time(&self, name: &str) -> u64;
    /// The heap budget newly created values should charge against, if
    /// this context enforces one. Default: unmetered.
    fn alloc_budget(&self) -> Option<AllocBudget> {
        None
    }
}

/// Result of evaluating a data instruction: the produced value plus any
/// timer callables that fired and must now be invoked by the engine.
#[derive(Debug)]
pub struct Evaluated {
    pub value: Value,
    pub fired: Vec<CallableVal>,
}

impl Evaluated {
    fn value(v: Value) -> Evaluated {
        Evaluated {
            value: v,
            fired: Vec::new(),
        }
    }

    fn null() -> Evaluated {
        Evaluated::value(Value::Null)
    }
}

fn arity(args: &[Value], n: usize, op: Opcode) -> RtResult<()> {
    if args.len() != n {
        return Err(RtError::type_error(format!(
            "{} expects {n} operands, got {}",
            op.mnemonic(),
            args.len()
        )));
    }
    Ok(())
}

fn arity_min(args: &[Value], n: usize, op: Opcode) -> RtResult<()> {
    if args.len() < n {
        return Err(RtError::type_error(format!(
            "{} expects at least {n} operands, got {}",
            op.mnemonic(),
            args.len()
        )));
    }
    Ok(())
}

fn as_set(v: &Value) -> RtResult<&Rc<RefCell<SetVal>>> {
    match v {
        Value::Set(s) => Ok(s),
        other => Err(RtError::type_error(format!(
            "expected set, got {}",
            other.type_name()
        ))),
    }
}

fn as_map(v: &Value) -> RtResult<&Rc<RefCell<MapVal>>> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(RtError::type_error(format!(
            "expected map, got {}",
            other.type_name()
        ))),
    }
}

fn as_list(v: &Value) -> RtResult<&Rc<RefCell<VecDeque<Value>>>> {
    match v {
        Value::List(l) => Ok(l),
        other => Err(RtError::type_error(format!(
            "expected list, got {}",
            other.type_name()
        ))),
    }
}

fn as_vector(v: &Value) -> RtResult<&Rc<RefCell<Vec<Value>>>> {
    match v {
        Value::Vector(x) => Ok(x),
        other => Err(RtError::type_error(format!(
            "expected vector, got {}",
            other.type_name()
        ))),
    }
}

fn as_struct(v: &Value) -> RtResult<&Rc<RefCell<StructVal>>> {
    match v {
        Value::Struct(s) => Ok(s),
        other => Err(RtError::type_error(format!(
            "expected struct, got {}",
            other.type_name()
        ))),
    }
}

fn as_regexp(v: &Value) -> RtResult<&std::sync::Arc<Regex>> {
    match v {
        Value::Regexp(r) => Ok(r),
        other => Err(RtError::type_error(format!(
            "expected regexp, got {}",
            other.type_name()
        ))),
    }
}

fn as_classifier(v: &Value) -> RtResult<&Rc<RefCell<Classifier<Value>>>> {
    match v {
        Value::Classifier(c) => Ok(c),
        other => Err(RtError::type_error(format!(
            "expected classifier, got {}",
            other.type_name()
        ))),
    }
}

fn as_timer_mgr(v: &Value) -> RtResult<&Rc<RefCell<TimerMgr<TimerEntry>>>> {
    match v {
        Value::TimerMgr(t) => Ok(t),
        other => Err(RtError::type_error(format!(
            "expected timer_mgr, got {}",
            other.type_name()
        ))),
    }
}

fn as_callable(v: &Value) -> RtResult<&Rc<CallableVal>> {
    match v {
        Value::Callable(c) => Ok(c),
        other => Err(RtError::type_error(format!(
            "expected callable, got {}",
            other.type_name()
        ))),
    }
}

/// Converts a value into a classifier rule field.
fn to_field_matcher(v: &Value) -> RtResult<FieldMatcher> {
    Ok(match v {
        Value::Null => FieldMatcher::Wildcard,
        Value::String(s) if &**s == "*" => FieldMatcher::Wildcard,
        Value::Net(n) => FieldMatcher::Net(*n),
        Value::Addr(a) => FieldMatcher::Host(*a),
        Value::Port(p) => FieldMatcher::Port(*p),
        Value::Int(i) => FieldMatcher::Int(*i as u64),
        other => {
            return Err(RtError::type_error(format!(
                "cannot use {} as classifier field",
                other.type_name()
            )))
        }
    })
}

/// Converts a value into a classifier lookup field.
fn to_field_value(v: &Value) -> RtResult<FieldValue> {
    Ok(match v {
        Value::Addr(a) => FieldValue::Addr(*a),
        Value::Port(p) => FieldValue::Port(*p),
        Value::Int(i) => FieldValue::Int(*i as u64),
        other => {
            return Err(RtError::type_error(format!(
                "cannot use {} as classifier key",
                other.type_name()
            )))
        }
    })
}

/// Instantiates a default value of `ty` — the `new` instruction. `extra`
/// carries type-specific parameters (e.g. channel capacity).
pub fn instantiate(ty: &Type, extra: &[Value], ctx: &mut dyn ExecCtx) -> RtResult<Value> {
    Ok(match ty.strip_ref() {
        Type::Bytes => {
            let b = Bytes::new();
            if let Some(budget) = ctx.alloc_budget() {
                b.set_budget(budget);
            }
            Value::Bytes(b)
        }
        Type::List(_) => Value::List(Rc::new(RefCell::new(VecDeque::new()))),
        Type::Vector(_) => Value::Vector(Rc::new(RefCell::new(Vec::new()))),
        Type::Set(_) => {
            let mut s = SetVal::new();
            if let Some(budget) = ctx.alloc_budget() {
                s.set_budget(budget);
            }
            Value::Set(Rc::new(RefCell::new(s)))
        }
        Type::Map(_, _) => {
            let mut m = MapVal::new();
            if let Some(budget) = ctx.alloc_budget() {
                m.set_budget(budget);
            }
            Value::Map(Rc::new(RefCell::new(m)))
        }
        Type::Struct(name) => {
            let fields = ctx
                .struct_fields(name)
                .ok_or_else(|| RtError::type_error(format!("unknown struct type {name}")))?;
            Value::Struct(Rc::new(RefCell::new(StructVal {
                type_name: Rc::from(&**name),
                fields: vec![Value::Null; fields.len()],
            })))
        }
        Type::Classifier(_, _) => {
            // An int extra of 1 selects the indexed backend (ablation A2).
            let backend = match extra.first() {
                Some(Value::Int(1)) => Backend::FieldIndexed,
                _ => Backend::LinearScan,
            };
            Value::Classifier(Rc::new(RefCell::new(Classifier::with_backend(backend))))
        }
        Type::TimerMgr => Value::TimerMgr(Rc::new(RefCell::new(TimerMgr::new()))),
        Type::Channel(_) => {
            let cap = match extra.first() {
                Some(Value::Int(n)) if *n > 0 => Some(*n as usize),
                _ => None,
            };
            match cap {
                Some(c) => Value::Channel(hilti_rt::channel::Channel::bounded(c)),
                None => Value::Channel(hilti_rt::channel::Channel::unbounded()),
            }
        }
        other => {
            return Err(RtError::type_error(format!(
                "cannot instantiate type {other}"
            )))
        }
    })
}

/// Evaluates one data instruction. `const_hints` carries constant operands
/// that are not values (identifiers: struct fields, overlay names, ...);
/// engines pass them through from the IR.
pub fn eval(
    op: Opcode,
    args: &[Value],
    idents: &[String],
    ctx: &mut dyn ExecCtx,
) -> RtResult<Evaluated> {
    use Opcode::*;
    let now = ctx.global_time();
    Ok(match op {
        // --- generic -----------------------------------------------------
        Assign => {
            arity(args, 1, op)?;
            Evaluated::value(args[0].clone())
        }
        Equal => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].equals(&args[1])))
        }
        Unequal => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(!args[0].equals(&args[1])))
        }
        Select => {
            arity(args, 3, op)?;
            Evaluated::value(if args[0].as_bool()? {
                args[1].clone()
            } else {
                args[2].clone()
            })
        }
        DeepCopy => {
            arity(args, 1, op)?;
            Evaluated::value(Value::from_portable(&args[0].to_portable()?))
        }

        // --- integers ----------------------------------------------------
        IntAdd => bin_int(args, op, |a, b| Ok(a.wrapping_add(b)))?,
        IntSub => bin_int(args, op, |a, b| Ok(a.wrapping_sub(b)))?,
        IntMul => bin_int(args, op, |a, b| Ok(a.wrapping_mul(b)))?,
        IntDiv => bin_int(args, op, |a, b| {
            if b == 0 {
                Err(RtError::arithmetic("division by zero"))
            } else {
                Ok(a.wrapping_div(b))
            }
        })?,
        IntMod => bin_int(args, op, |a, b| {
            if b == 0 {
                Err(RtError::arithmetic("modulo by zero"))
            } else {
                Ok(a.wrapping_rem(b))
            }
        })?,
        IntNeg => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_int()?.wrapping_neg()))
        }
        IntAbs => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_int()?.wrapping_abs()))
        }
        IntMin => bin_int(args, op, |a, b| Ok(a.min(b)))?,
        IntMax => bin_int(args, op, |a, b| Ok(a.max(b)))?,
        IntEq => bin_int_cmp(args, op, |a, b| a == b)?,
        IntLt => bin_int_cmp(args, op, |a, b| a < b)?,
        IntGt => bin_int_cmp(args, op, |a, b| a > b)?,
        IntLeq => bin_int_cmp(args, op, |a, b| a <= b)?,
        IntGeq => bin_int_cmp(args, op, |a, b| a >= b)?,
        IntAnd => bin_int(args, op, |a, b| Ok(a & b))?,
        IntOr => bin_int(args, op, |a, b| Ok(a | b))?,
        IntXor => bin_int(args, op, |a, b| Ok(a ^ b))?,
        IntShl => bin_int(args, op, |a, b| Ok(a.wrapping_shl(b as u32)))?,
        IntShr => bin_int(args, op, |a, b| Ok(((a as u64) >> (b as u32 & 63)) as i64))?,
        IntToDouble => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Double(args[0].as_int()? as f64))
        }
        IntToString => {
            arity(args, 1, op)?;
            Evaluated::value(Value::str(&args[0].as_int()?.to_string()))
        }
        IntFromBytes => {
            // (bytes, base) — parse ASCII digits.
            arity(args, 2, op)?;
            let raw = args[0].as_bytes()?.to_vec();
            let base = args[1].as_int()? as u32;
            let s = std::str::from_utf8(&raw)
                .map_err(|_| RtError::value("non-UTF8 digits"))?
                .trim();
            let v = i64::from_str_radix(s, base)
                .map_err(|_| RtError::value(format!("bad integer literal {s:?}")))?;
            Evaluated::value(Value::Int(v))
        }

        // --- booleans ----------------------------------------------------
        BoolAnd => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].as_bool()? && args[1].as_bool()?))
        }
        BoolOr => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].as_bool()? || args[1].as_bool()?))
        }
        BoolXor => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].as_bool()? ^ args[1].as_bool()?))
        }
        BoolNot => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Bool(!args[0].as_bool()?))
        }

        // --- bitsets (int<64> with named bits) -----------------------------
        BitsetSet => bin_int(args, op, |a, b| Ok(a | (1 << (b & 63))))?,
        BitsetClear => bin_int(args, op, |a, b| Ok(a & !(1 << (b & 63))))?,
        BitsetHas => bin_int_cmp(args, op, |a, b| a & (1 << (b & 63)) != 0)?,

        // --- doubles -------------------------------------------------------
        DoubleAdd => bin_double(args, op, |a, b| a + b)?,
        DoubleSub => bin_double(args, op, |a, b| a - b)?,
        DoubleMul => bin_double(args, op, |a, b| a * b)?,
        DoubleDiv => {
            arity(args, 2, op)?;
            let b = args[1].as_double()?;
            if b == 0.0 {
                return Err(RtError::arithmetic("division by zero"));
            }
            Evaluated::value(Value::Double(args[0].as_double()? / b))
        }
        DoubleLt => bin_double_cmp(args, op, |a, b| a < b)?,
        DoubleGt => bin_double_cmp(args, op, |a, b| a > b)?,
        DoubleLeq => bin_double_cmp(args, op, |a, b| a <= b)?,
        DoubleGeq => bin_double_cmp(args, op, |a, b| a >= b)?,
        DoubleAbs => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Double(args[0].as_double()?.abs()))
        }
        DoubleToInt => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_double()? as i64))
        }

        // --- strings -------------------------------------------------------
        StringConcat => {
            arity(args, 2, op)?;
            let mut s = args[0].as_str()?.to_owned();
            s.push_str(args[1].as_str()?);
            Evaluated::value(Value::str(&s))
        }
        StringLength => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_str()?.chars().count() as i64))
        }
        StringFind => {
            arity(args, 2, op)?;
            let hay = args[0].as_str()?;
            let needle = args[1].as_str()?;
            Evaluated::value(Value::Int(hay.find(needle).map(|p| p as i64).unwrap_or(-1)))
        }
        StringSubstr => {
            arity(args, 3, op)?;
            let s = args[0].as_str()?;
            let from = args[1].as_int()?.max(0) as usize;
            let len = args[2].as_int()?.max(0) as usize;
            let sub: String = s.chars().skip(from).take(len).collect();
            Evaluated::value(Value::str(&sub))
        }
        StringToBytes => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Bytes(Bytes::frozen_from_slice(
                args[0].as_str()?.as_bytes(),
            )))
        }
        StringToInt => {
            arity(args, 1, op)?;
            let v: i64 = args[0]
                .as_str()?
                .trim()
                .parse()
                .map_err(|_| RtError::value("bad integer literal"))?;
            Evaluated::value(Value::Int(v))
        }
        StringUpper => {
            arity(args, 1, op)?;
            Evaluated::value(Value::str(&args[0].as_str()?.to_uppercase()))
        }
        StringLower => {
            arity(args, 1, op)?;
            Evaluated::value(Value::str(&args[0].as_str()?.to_lowercase()))
        }
        StringStartsWith => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(
                args[0].as_str()?.starts_with(args[1].as_str()?),
            ))
        }
        StringFmt => {
            // fmt string with `{}` placeholders + values.
            arity_min(args, 1, op)?;
            let fmt = args[0].as_str()?;
            let mut out = String::with_capacity(fmt.len());
            let mut next = 1usize;
            let mut chars = fmt.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '{' && chars.peek() == Some(&'}') {
                    chars.next();
                    let v = args.get(next).ok_or_else(|| {
                        RtError::value("string.fmt: more placeholders than values")
                    })?;
                    out.push_str(&v.render());
                    next += 1;
                } else {
                    out.push(c);
                }
            }
            Evaluated::value(Value::str(&out))
        }
        StringRender => {
            arity(args, 1, op)?;
            Evaluated::value(Value::str(&args[0].render()))
        }

        // --- bytes ---------------------------------------------------------
        BytesAppend => {
            arity(args, 2, op)?;
            let data = match &args[1] {
                Value::Bytes(b) => b.to_vec(),
                Value::String(s) => s.as_bytes().to_vec(),
                other => {
                    return Err(RtError::type_error(format!(
                        "bytes.append needs bytes/string, got {}",
                        other.type_name()
                    )))
                }
            };
            args[0].as_bytes()?.append(&data)?;
            Evaluated::null()
        }
        BytesFreeze => {
            arity(args, 1, op)?;
            args[0].as_bytes()?.freeze();
            Evaluated::null()
        }
        BytesUnfreeze => {
            arity(args, 1, op)?;
            args[0].as_bytes()?.unfreeze();
            Evaluated::null()
        }
        BytesIsFrozen => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Bool(args[0].as_bytes()?.is_frozen()))
        }
        BytesLength => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_bytes()?.len() as i64))
        }
        BytesSub => {
            // (iter_begin, iter_end) → new frozen bytes of that range.
            arity(args, 2, op)?;
            let a = args[0].as_bytes_iter()?;
            let b = args[1].as_bytes_iter()?;
            let data = a.bytes().extract(a.offset(), b.offset())?;
            Evaluated::value(Value::Bytes(Bytes::frozen_from_slice(&data)))
        }
        BytesFind => {
            // (bytes, needle, from_iter) → tuple(bool found, iter pos).
            arity(args, 3, op)?;
            let hay = args[0].as_bytes()?;
            let needle = match &args[1] {
                Value::Bytes(b) => b.to_vec(),
                Value::String(s) => s.as_bytes().to_vec(),
                other => {
                    return Err(RtError::type_error(format!(
                        "bytes.find needs bytes/string needle, got {}",
                        other.type_name()
                    )))
                }
            };
            let from = args[2].as_bytes_iter()?;
            match hay.find(from.offset(), &needle)? {
                Some(pos) => Evaluated::value(Value::Tuple(Rc::new(vec![
                    Value::Bool(true),
                    Value::BytesIter(hay.iter_at(pos)),
                ]))),
                None => Evaluated::value(Value::Tuple(Rc::new(vec![
                    Value::Bool(false),
                    Value::BytesIter(hay.end()),
                ]))),
            }
        }
        BytesTrim => {
            arity(args, 2, op)?;
            let b = args[0].as_bytes()?;
            let to = args[1].as_bytes_iter()?;
            b.trim(to.offset())?;
            Evaluated::null()
        }
        BytesToString => {
            arity(args, 1, op)?;
            Evaluated::value(Value::str(&String::from_utf8_lossy(
                &args[0].as_bytes()?.to_vec(),
            )))
        }
        BytesToInt => {
            arity(args, 2, op)?;
            let raw = args[0].as_bytes()?.to_vec();
            let base = args[1].as_int()? as u32;
            let s = std::str::from_utf8(&raw)
                .map_err(|_| RtError::value("non-UTF8 digits"))?
                .trim();
            let v = i64::from_str_radix(s, base)
                .map_err(|_| RtError::value(format!("bad integer literal {s:?}")))?;
            Evaluated::value(Value::Int(v))
        }
        BytesBegin => {
            arity(args, 1, op)?;
            Evaluated::value(Value::BytesIter(args[0].as_bytes()?.begin()))
        }
        BytesEnd => {
            arity(args, 1, op)?;
            Evaluated::value(Value::BytesIter(args[0].as_bytes()?.end()))
        }
        BytesAt => {
            arity(args, 2, op)?;
            let b = args[0].as_bytes()?;
            let off = args[1].as_int()? as u64;
            Evaluated::value(Value::BytesIter(b.iter_at(off)))
        }
        BytesStartsWith => {
            arity(args, 2, op)?;
            let b = args[0].as_bytes()?;
            let prefix = match &args[1] {
                Value::Bytes(p) => p.to_vec(),
                Value::String(s) => s.as_bytes().to_vec(),
                other => {
                    return Err(RtError::type_error(format!(
                        "bytes.starts_with needs bytes/string, got {}",
                        other.type_name()
                    )))
                }
            };
            let avail = b.extract(
                b.begin_offset(),
                b.begin_offset() + (prefix.len() as u64).min(b.len() as u64),
            )?;
            Evaluated::value(Value::Bool(avail.len() >= prefix.len() && avail == prefix))
        }
        BytesCopy => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Bytes(args[0].as_bytes()?.deep_copy()))
        }
        BytesEod => {
            // (iter) -> bytes from the iterator to the end of *frozen*
            // input; raises WouldBlock while the input is still open. The
            // retry-on-resume fiber semantics make this the
            // "read until end of data" primitive for generated parsers.
            arity(args, 1, op)?;
            let it = args[0].as_bytes_iter()?;
            let b = it.bytes();
            if !b.is_frozen() {
                return Err(RtError::would_block());
            }
            let data = b.extract(it.offset().min(b.end_offset()), b.end_offset())?;
            Evaluated::value(Value::Tuple(Rc::new(vec![
                Value::Bytes(Bytes::frozen_from_slice(&data)),
                Value::BytesIter(b.end()),
            ])))
        }

        // --- bytes iterators ------------------------------------------------
        IterIncr => {
            arity(args, 2, op)?;
            let it = args[0].as_bytes_iter()?;
            Evaluated::value(Value::BytesIter(
                it.advance(args[1].as_int()?.max(0) as u64),
            ))
        }
        IterDeref => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(i64::from(args[0].as_bytes_iter()?.deref()?)))
        }
        IterOffset => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_bytes_iter()?.offset() as i64))
        }
        IterDiff => {
            arity(args, 2, op)?;
            let a = args[0].as_bytes_iter()?;
            let b = args[1].as_bytes_iter()?;
            Evaluated::value(Value::Int(a.distance(b)? as i64))
        }
        IterAtFrozenEnd => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Bool(args[0].as_bytes_iter()?.at_frozen_end()))
        }
        IterWouldBlock => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Bool(args[0].as_bytes_iter()?.would_block()))
        }

        // --- addr / net / port ----------------------------------------------
        AddrFamily => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(if args[0].as_addr()?.is_v4() { 4 } else { 6 }))
        }
        AddrMask => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Addr(
                args[0]
                    .as_addr()?
                    .mask(args[1].as_int()?.clamp(0, 128) as u8),
            ))
        }
        NetContains => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].as_net()?.contains(&args[1].as_addr()?)))
        }
        NetFamily => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(if args[0].as_net()?.prefix().is_v4() {
                4
            } else {
                6
            }))
        }
        NetPrefix => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Addr(args[0].as_net()?.prefix()))
        }
        NetLength => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(i64::from(args[0].as_net()?.len())))
        }
        PortProtocol => {
            arity(args, 1, op)?;
            Evaluated::value(Value::str(&args[0].as_port()?.protocol.to_string()))
        }
        PortNumber => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(i64::from(args[0].as_port()?.number)))
        }

        // --- time / interval --------------------------------------------------
        TimeAdd => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Time(args[0].as_time()? + args[1].as_interval()?))
        }
        TimeSubTime => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Interval(args[0].as_time()? - args[1].as_time()?))
        }
        TimeSubInterval => {
            arity(args, 2, op)?;
            let i = args[1].as_interval()?;
            Evaluated::value(Value::Time(
                args[0].as_time()? + Interval::from_nanos(-i.nanos()),
            ))
        }
        TimeLt => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].as_time()? < args[1].as_time()?))
        }
        TimeGt => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].as_time()? > args[1].as_time()?))
        }
        TimeFromDouble => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Time(Time::from_secs_f64(args[0].as_double()?)))
        }
        TimeToDouble => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Double(args[0].as_time()?.as_secs_f64()))
        }
        TimeNsecs => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_time()?.nanos() as i64))
        }
        IntervalAdd => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Interval(
                args[0].as_interval()? + args[1].as_interval()?,
            ))
        }
        IntervalSub => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Interval(
                args[0].as_interval()? - args[1].as_interval()?,
            ))
        }
        IntervalLt => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].as_interval()? < args[1].as_interval()?))
        }
        IntervalGt => {
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(args[0].as_interval()? > args[1].as_interval()?))
        }
        IntervalFromDouble => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Interval(Interval::from_secs_f64(
                args[0].as_double()?,
            )))
        }
        IntervalToDouble => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Double(args[0].as_interval()?.as_secs_f64()))
        }
        IntervalNsecs => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_interval()?.nanos()))
        }

        // --- enums -------------------------------------------------------------
        EnumFromInt => {
            arity(args, 1, op)?;
            let name = idents
                .first()
                .ok_or_else(|| RtError::type_error("enum.from_int needs a type ident"))?;
            Evaluated::value(Value::Enum(Rc::from(name.as_str()), args[0].as_int()?))
        }
        EnumToInt => {
            arity(args, 1, op)?;
            match &args[0] {
                Value::Enum(_, v) => Evaluated::value(Value::Int(*v)),
                other => {
                    return Err(RtError::type_error(format!(
                        "enum.to_int needs enum, got {}",
                        other.type_name()
                    )))
                }
            }
        }

        // --- tuples -------------------------------------------------------------
        TupleGet => {
            arity(args, 2, op)?;
            let t = args[0].as_tuple()?;
            let i = args[1].as_int()?;
            let v = t
                .get(i.max(0) as usize)
                .ok_or_else(|| RtError::index(format!("tuple index {i} out of range")))?;
            Evaluated::value(v.clone())
        }
        TupleLength => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(args[0].as_tuple()?.len() as i64))
        }
        TuplePack => Evaluated::value(Value::Tuple(Rc::new(args.to_vec()))),

        // --- lists ---------------------------------------------------------------
        ListPushBack | ListAppend => {
            arity(args, 2, op)?;
            as_list(&args[0])?.borrow_mut().push_back(args[1].clone());
            Evaluated::null()
        }
        ListPushFront => {
            arity(args, 2, op)?;
            as_list(&args[0])?.borrow_mut().push_front(args[1].clone());
            Evaluated::null()
        }
        ListPopFront => {
            arity(args, 1, op)?;
            let v = as_list(&args[0])?
                .borrow_mut()
                .pop_front()
                .ok_or_else(|| RtError::index("pop from empty list"))?;
            Evaluated::value(v)
        }
        ListPopBack => {
            arity(args, 1, op)?;
            let v = as_list(&args[0])?
                .borrow_mut()
                .pop_back()
                .ok_or_else(|| RtError::index("pop from empty list"))?;
            Evaluated::value(v)
        }
        ListFront => {
            arity(args, 1, op)?;
            let l = as_list(&args[0])?.borrow();
            let v = l
                .front()
                .ok_or_else(|| RtError::index("front of empty list"))?;
            Evaluated::value(v.clone())
        }
        ListBack => {
            arity(args, 1, op)?;
            let l = as_list(&args[0])?.borrow();
            let v = l
                .back()
                .ok_or_else(|| RtError::index("back of empty list"))?;
            Evaluated::value(v.clone())
        }
        ListLength => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(as_list(&args[0])?.borrow().len() as i64))
        }
        ListClear => {
            arity(args, 1, op)?;
            as_list(&args[0])?.borrow_mut().clear();
            Evaluated::null()
        }

        // --- vectors ----------------------------------------------------------------
        VectorPushBack => {
            arity(args, 2, op)?;
            as_vector(&args[0])?.borrow_mut().push(args[1].clone());
            Evaluated::null()
        }
        VectorPopBack => {
            arity(args, 1, op)?;
            let v = as_vector(&args[0])?
                .borrow_mut()
                .pop()
                .ok_or_else(|| RtError::index("pop from empty vector"))?;
            Evaluated::value(v)
        }
        VectorGet => {
            arity(args, 2, op)?;
            let v = as_vector(&args[0])?.borrow();
            let i = args[1].as_int()?;
            let item = v
                .get(i.max(0) as usize)
                .ok_or_else(|| RtError::index(format!("vector index {i} out of range")))?;
            Evaluated::value(item.clone())
        }
        VectorSet => {
            arity(args, 3, op)?;
            let v = as_vector(&args[0])?;
            let i = args[1].as_int()?.max(0) as usize;
            let mut v = v.borrow_mut();
            if i >= v.len() {
                return Err(RtError::index(format!("vector index {i} out of range")));
            }
            v[i] = args[2].clone();
            Evaluated::null()
        }
        VectorLength => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(as_vector(&args[0])?.borrow().len() as i64))
        }
        VectorReserve => {
            arity(args, 2, op)?;
            as_vector(&args[0])?
                .borrow_mut()
                .reserve(args[1].as_int()?.max(0) as usize);
            Evaluated::null()
        }
        VectorClear => {
            arity(args, 1, op)?;
            as_vector(&args[0])?.borrow_mut().clear();
            Evaluated::null()
        }

        // --- sets --------------------------------------------------------------------
        SetInsert => {
            arity(args, 2, op)?;
            let k = args[1].to_key()?;
            as_set(&args[0])?.borrow_mut().try_insert(k, now)?;
            Evaluated::null()
        }
        SetExists => {
            arity(args, 2, op)?;
            let k = args[1].to_key()?;
            Evaluated::value(Value::Bool(as_set(&args[0])?.borrow_mut().exists(&k, now)))
        }
        SetRemove => {
            arity(args, 2, op)?;
            let k = args[1].to_key()?;
            Evaluated::value(Value::Bool(as_set(&args[0])?.borrow_mut().remove(&k)))
        }
        SetSize => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(as_set(&args[0])?.borrow().len() as i64))
        }
        SetTimeout => {
            // (set, strategy enum/int, interval)
            arity(args, 3, op)?;
            let strategy = expire_strategy(&args[1])?;
            let timeout = args[2].as_interval()?;
            let rc = as_set(&args[0])?.clone();
            rc.borrow_mut().set_timeout(strategy, timeout);
            ctx.register_expiring(ExpiringHandle::Set(rc));
            Evaluated::null()
        }
        SetClear => {
            arity(args, 1, op)?;
            as_set(&args[0])?.borrow_mut().clear();
            Evaluated::null()
        }
        SetMembers => {
            // Sorted member list — deterministic iteration order for
            // `for` loops over sets (matches `map.keys`).
            arity(args, 1, op)?;
            let s = as_set(&args[0])?.borrow();
            let mut keys: Vec<crate::value::Key> = s.iter().cloned().collect();
            keys.sort();
            let list: VecDeque<Value> = keys.iter().map(|k| k.to_value()).collect();
            Evaluated::value(Value::List(Rc::new(RefCell::new(list))))
        }

        // --- maps ---------------------------------------------------------------------
        MapInsert => {
            arity(args, 3, op)?;
            let k = args[1].to_key()?;
            as_map(&args[0])?
                .borrow_mut()
                .try_insert(k, args[2].clone(), now)?;
            Evaluated::null()
        }
        MapGet => {
            arity(args, 2, op)?;
            let k = args[1].to_key()?;
            let m = as_map(&args[0])?;
            let v = m
                .borrow_mut()
                .get(&k, now)
                .cloned()
                .ok_or_else(|| RtError::index("no such map element"))?;
            Evaluated::value(v)
        }
        MapGetDefault => {
            arity(args, 3, op)?;
            let k = args[1].to_key()?;
            let m = as_map(&args[0])?;
            let v = m.borrow_mut().get(&k, now).cloned();
            Evaluated::value(v.unwrap_or_else(|| args[2].clone()))
        }
        MapExists => {
            arity(args, 2, op)?;
            let k = args[1].to_key()?;
            Evaluated::value(Value::Bool(as_map(&args[0])?.borrow().contains(&k)))
        }
        MapRemove => {
            arity(args, 2, op)?;
            let k = args[1].to_key()?;
            Evaluated::value(Value::Bool(
                as_map(&args[0])?.borrow_mut().remove(&k).is_some(),
            ))
        }
        MapSize => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(as_map(&args[0])?.borrow().len() as i64))
        }
        MapTimeout => {
            arity(args, 3, op)?;
            let strategy = expire_strategy(&args[1])?;
            let timeout = args[2].as_interval()?;
            let rc = as_map(&args[0])?.clone();
            rc.borrow_mut().set_timeout(strategy, timeout);
            ctx.register_expiring(ExpiringHandle::Map(rc));
            Evaluated::null()
        }
        MapClear => {
            arity(args, 1, op)?;
            as_map(&args[0])?.borrow_mut().clear();
            Evaluated::null()
        }
        MapKeys => {
            arity(args, 1, op)?;
            let m = as_map(&args[0])?.borrow();
            let mut keys: Vec<crate::value::Key> = m.iter().map(|(k, _)| k.clone()).collect();
            keys.sort();
            let list: VecDeque<Value> = keys.iter().map(|k| k.to_value()).collect();
            Evaluated::value(Value::List(Rc::new(RefCell::new(list))))
        }

        // --- structs --------------------------------------------------------------------
        StructGet => {
            arity(args, 1, op)?;
            let s = as_struct(&args[0])?.borrow();
            let field = idents
                .first()
                .ok_or_else(|| RtError::type_error("struct.get needs a field ident"))?;
            let idx = struct_field_index(ctx, &s.type_name, field)?;
            let v = s.fields[idx].clone();
            if matches!(v, Value::Null) {
                return Err(RtError::new(
                    ExceptionKind::IndexError,
                    format!("field {field} is unset"),
                ));
            }
            Evaluated::value(v)
        }
        StructSet => {
            arity(args, 2, op)?;
            let rc = as_struct(&args[0])?;
            let field = idents
                .first()
                .ok_or_else(|| RtError::type_error("struct.set needs a field ident"))?;
            let idx = {
                let s = rc.borrow();
                struct_field_index(ctx, &s.type_name, field)?
            };
            rc.borrow_mut().fields[idx] = args[1].clone();
            Evaluated::null()
        }
        StructIsSet => {
            arity(args, 1, op)?;
            let s = as_struct(&args[0])?.borrow();
            let field = idents
                .first()
                .ok_or_else(|| RtError::type_error("struct.is_set needs a field ident"))?;
            let idx = struct_field_index(ctx, &s.type_name, field)?;
            Evaluated::value(Value::Bool(!matches!(s.fields[idx], Value::Null)))
        }
        StructUnset => {
            arity(args, 1, op)?;
            let rc = as_struct(&args[0])?;
            let field = idents
                .first()
                .ok_or_else(|| RtError::type_error("struct.unset needs a field ident"))?;
            let idx = {
                let s = rc.borrow();
                struct_field_index(ctx, &s.type_name, field)?
            };
            rc.borrow_mut().fields[idx] = Value::Null;
            Evaluated::null()
        }

        // --- classifier --------------------------------------------------------------------
        ClassifierAdd => {
            // (classifier, tuple-of-fields, value)
            arity(args, 3, op)?;
            let fields = classifier_fields(&args[1])?;
            as_classifier(&args[0])?
                .borrow_mut()
                .add(fields, args[2].clone())?;
            Evaluated::null()
        }
        ClassifierAddPrio => {
            arity(args, 4, op)?;
            let fields = classifier_fields(&args[1])?;
            as_classifier(&args[0])?.borrow_mut().add_with_priority(
                fields,
                args[2].clone(),
                args[3].as_int()?,
            )?;
            Evaluated::null()
        }
        ClassifierCompile => {
            arity(args, 1, op)?;
            as_classifier(&args[0])?.borrow_mut().compile();
            Evaluated::null()
        }
        ClassifierGet => {
            arity(args, 2, op)?;
            let key = classifier_key(&args[1])?;
            let v = as_classifier(&args[0])?.borrow().get(&key)?;
            Evaluated::value(v)
        }
        ClassifierMatches => {
            arity(args, 2, op)?;
            let key = classifier_key(&args[1])?;
            Evaluated::value(Value::Bool(
                as_classifier(&args[0])?.borrow().matches(&key).is_some(),
            ))
        }
        ClassifierSize => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(as_classifier(&args[0])?.borrow().len() as i64))
        }

        // --- regexp --------------------------------------------------------------------------
        RegexpNew => {
            // Patterns come through idents (one per pattern).
            if idents.is_empty() {
                return Err(RtError::pattern("regexp.new needs pattern constants"));
            }
            let pats: Vec<&str> = idents.iter().map(String::as_str).collect();
            Evaluated::value(Value::Regexp(Regex::set(&pats)?))
        }
        RegexpMatchPrefix => {
            arity(args, 2, op)?;
            let re = as_regexp(&args[0])?;
            let data = args[1].as_bytes()?.to_vec();
            match re.match_prefix(&data) {
                MatchVerdict::Match { len, .. } => Evaluated::value(Value::Int(len as i64)),
                MatchVerdict::NoMatch => Evaluated::value(Value::Int(-1)),
            }
        }
        RegexpFind => {
            arity(args, 2, op)?;
            let re = as_regexp(&args[0])?;
            let data = args[1].as_bytes()?.to_vec();
            match re.find(&data) {
                Some((pos, pat, len)) => Evaluated::value(Value::Tuple(Rc::new(vec![
                    Value::Int(pos as i64),
                    Value::Int(pat as i64),
                    Value::Int(len as i64),
                ]))),
                None => Evaluated::value(Value::Tuple(Rc::new(vec![
                    Value::Int(-1),
                    Value::Int(-1),
                    Value::Int(0),
                ]))),
            }
        }
        RegexpMatchToken => {
            // (regexp, iter) → tuple(int pattern_or_-1, iter after match).
            // Raises WouldBlock if the match could extend with more input
            // and the underlying bytes are not frozen — this is what makes
            // a BinPAC++ parser suspend its fiber mid-token (§3.2, §4).
            arity(args, 2, op)?;
            let re = as_regexp(&args[0])?;
            let it = args[1].as_bytes_iter()?;
            let bytes = it.bytes();
            let mut matcher = re.matcher();
            bytes.with_available(it.offset(), |slice| {
                matcher.feed(slice);
            })?;
            if matcher.can_extend() && !bytes.is_frozen() {
                return Err(RtError::would_block());
            }
            match matcher.finish() {
                MatchVerdict::Match { pattern, len } => {
                    Evaluated::value(Value::Tuple(Rc::new(vec![
                        Value::Int(pattern as i64),
                        Value::BytesIter(it.advance(len)),
                    ])))
                }
                MatchVerdict::NoMatch => Evaluated::value(Value::Tuple(Rc::new(vec![
                    Value::Int(-1),
                    Value::BytesIter(it.clone()),
                ]))),
            }
        }
        RegexpMatcherInit => {
            arity(args, 1, op)?;
            let re = as_regexp(&args[0])?;
            Evaluated::value(Value::Matcher(Rc::new(RefCell::new(re.matcher()))))
        }
        RegexpMatcherFeed => {
            arity(args, 2, op)?;
            let m = match &args[0] {
                Value::Matcher(m) => m,
                other => {
                    return Err(RtError::type_error(format!(
                        "expected matcher, got {}",
                        other.type_name()
                    )))
                }
            };
            let data = args[1].as_bytes()?.to_vec();
            let status = m.borrow_mut().feed(&data);
            Evaluated::value(Value::Int(match status {
                hilti_rt::regexp::MatchStatus::Failed => 0,
                hilti_rt::regexp::MatchStatus::Ongoing => 1,
            }))
        }
        RegexpMatcherFinish => {
            arity(args, 1, op)?;
            let m = match &args[0] {
                Value::Matcher(m) => m,
                other => {
                    return Err(RtError::type_error(format!(
                        "expected matcher, got {}",
                        other.type_name()
                    )))
                }
            };
            match m.borrow().finish() {
                MatchVerdict::Match { pattern, len } => {
                    Evaluated::value(Value::Tuple(Rc::new(vec![
                        Value::Int(pattern as i64),
                        Value::Int(len as i64),
                    ])))
                }
                MatchVerdict::NoMatch => {
                    Evaluated::value(Value::Tuple(Rc::new(vec![Value::Int(-1), Value::Int(0)])))
                }
            }
        }

        // --- channels -----------------------------------------------------------------------
        ChannelWrite => {
            arity(args, 2, op)?;
            match &args[0] {
                Value::Channel(c) => {
                    c.write(&args[1].to_portable()?)?;
                    Evaluated::null()
                }
                other => Err(RtError::type_error(format!(
                    "expected channel, got {}",
                    other.type_name()
                )))?,
            }
        }
        ChannelRead => {
            arity(args, 1, op)?;
            match &args[0] {
                Value::Channel(c) => Evaluated::value(Value::from_portable(&c.read()?)),
                other => Err(RtError::type_error(format!(
                    "expected channel, got {}",
                    other.type_name()
                )))?,
            }
        }
        ChannelTryRead => {
            arity(args, 1, op)?;
            match &args[0] {
                Value::Channel(c) => match c.try_read()? {
                    Some(p) => Evaluated::value(Value::Tuple(Rc::new(vec![
                        Value::Bool(true),
                        Value::from_portable(&p),
                    ]))),
                    None => Evaluated::value(Value::Tuple(Rc::new(vec![
                        Value::Bool(false),
                        Value::Null,
                    ]))),
                },
                other => Err(RtError::type_error(format!(
                    "expected channel, got {}",
                    other.type_name()
                )))?,
            }
        }
        ChannelSize => {
            arity(args, 1, op)?;
            match &args[0] {
                Value::Channel(c) => Evaluated::value(Value::Int(c.len() as i64)),
                other => Err(RtError::type_error(format!(
                    "expected channel, got {}",
                    other.type_name()
                )))?,
            }
        }
        ChannelClose => {
            arity(args, 1, op)?;
            match &args[0] {
                Value::Channel(c) => {
                    c.close();
                    Evaluated::null()
                }
                other => Err(RtError::type_error(format!(
                    "expected channel, got {}",
                    other.type_name()
                )))?,
            }
        }

        // --- timers -------------------------------------------------------------------------
        TimerMgrAdvance => {
            arity(args, 2, op)?;
            let mgr = as_timer_mgr(&args[0])?;
            let t = args[1].as_time()?;
            let fired = mgr.borrow_mut().advance(t);
            Evaluated {
                value: Value::Null,
                fired: fired.into_iter().map(|e| e.action).collect(),
            }
        }
        TimerMgrAdvanceGlobal => {
            arity(args, 1, op)?;
            let t = args[0].as_time()?;
            ctx.set_global_time(t);
            ctx.advance_expiring(t);
            Evaluated::null()
        }
        TimerMgrSchedule => {
            // (mgr, time, callable) → int timer seq.
            arity(args, 3, op)?;
            let mgr = as_timer_mgr(&args[0])?;
            let t = args[1].as_time()?;
            let c = as_callable(&args[2])?;
            // Globally unique entry identity (TimerEntry's Eq keys on it).
            use std::sync::atomic::{AtomicU64, Ordering};
            static TIMER_SEQ: AtomicU64 = AtomicU64::new(0);
            let seq = TIMER_SEQ.fetch_add(1, Ordering::Relaxed);
            mgr.borrow_mut().schedule(
                t,
                TimerEntry {
                    seq,
                    action: (**c).clone(),
                },
            );
            Evaluated::value(Value::Int(seq as i64))
        }
        TimerMgrCancel => {
            // Cancellation by id requires the TimerId; we approximate with
            // a no-op returning false (HILTI programs in this workspace do
            // not cancel timers; the instruction exists for completeness).
            arity(args, 2, op)?;
            Evaluated::value(Value::Bool(false))
        }
        TimerMgrCurrent => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Time(as_timer_mgr(&args[0])?.borrow().now()))
        }
        TimerMgrGlobalTime => {
            arity(args, 0, op)?;
            Evaluated::value(Value::Time(ctx.global_time()))
        }
        TimerMgrSize => {
            arity(args, 1, op)?;
            Evaluated::value(Value::Int(as_timer_mgr(&args[0])?.borrow().len() as i64))
        }
        TimerNew | TimerCancel => {
            return Err(RtError::type_error(
                "standalone timers are managed through timer_mgr.schedule",
            ))
        }

        // --- callables ------------------------------------------------------------------------
        CallableBind => {
            // idents[0] = function name; args = bound arguments.
            let func = idents
                .first()
                .ok_or_else(|| RtError::type_error("callable.bind needs a function ident"))?;
            Evaluated::value(Value::Callable(Rc::new(CallableVal {
                func: Rc::from(func.as_str()),
                bound: args.to_vec(),
            })))
        }

        // --- overlays -------------------------------------------------------------------------
        OverlayGet => {
            // idents = [overlay type, field]; args = [bytes, optional base].
            arity_min(args, 1, op)?;
            let (oname, field) = match idents {
                [o, f, ..] => (o, f),
                _ => {
                    return Err(RtError::type_error(
                        "overlay.get needs type and field idents",
                    ))
                }
            };
            let overlay = ctx
                .overlay(oname)
                .ok_or_else(|| RtError::type_error(format!("unknown overlay {oname}")))?;
            let base = match args.get(1) {
                Some(v) => v.as_int()?.max(0) as u64,
                None => args[0].as_bytes()?.begin_offset(),
            };
            let unpacked = overlay.get(args[0].as_bytes()?, base, field)?;
            Evaluated::value(match unpacked {
                Unpacked::UInt(u) => Value::Int(u as i64),
                Unpacked::Addr(a) => Value::Addr(a),
                Unpacked::Bytes(b) => Value::Bytes(Bytes::frozen_from_slice(&b)),
            })
        }

        // --- files ----------------------------------------------------------------------------
        FileOpen => {
            arity(args, 1, op)?;
            let name = args[0].as_str()?;
            Evaluated::value(Value::File(ctx.open_file(name)))
        }
        FileWrite => {
            arity(args, 2, op)?;
            match &args[0] {
                Value::File(f) => {
                    f.write_line(&args[1].render())?;
                    Evaluated::null()
                }
                other => Err(RtError::type_error(format!(
                    "expected file, got {}",
                    other.type_name()
                )))?,
            }
        }
        FileClose => {
            arity(args, 1, op)?;
            Evaluated::null() // files are reference counted; close is advisory
        }

        // --- packet i/o --------------------------------------------------------------------------
        IosrcOpen => {
            arity(args, 1, op)?;
            ctx.open_iosrc(args[0].as_str()?).map(Evaluated::value)?
        }
        IosrcRead => {
            arity(args, 1, op)?;
            match &args[0] {
                Value::IOSrc(src) => {
                    let next = (src.borrow_mut().producer)();
                    Evaluated::value(match next {
                        Some((t, data)) => Value::Tuple(Rc::new(vec![
                            Value::Bool(true),
                            Value::Time(t),
                            Value::Bytes(Bytes::frozen_from_slice(&data)),
                        ])),
                        None => Value::Tuple(Rc::new(vec![
                            Value::Bool(false),
                            Value::Time(Time::ZERO),
                            Value::Bytes(Bytes::new()),
                        ])),
                    })
                }
                other => Err(RtError::type_error(format!(
                    "expected iosrc, got {}",
                    other.type_name()
                )))?,
            }
        }

        // --- threads ------------------------------------------------------------------------------
        ThreadSchedule => {
            // (int vthread id, callable)
            arity(args, 2, op)?;
            let tid = args[0].as_int()? as u64;
            let c = as_callable(&args[1])?;
            ctx.schedule_thread(tid, (**c).clone())?;
            Evaluated::null()
        }
        ThreadId => {
            arity(args, 0, op)?;
            Evaluated::value(Value::Int(ctx.thread_id() as i64))
        }

        // --- profiling ------------------------------------------------------------------------------
        ProfilerStart => {
            let name = idents.first().map(String::as_str).unwrap_or("default");
            ctx.profiler_start(name);
            Evaluated::null()
        }
        ProfilerStop => {
            let name = idents.first().map(String::as_str).unwrap_or("default");
            ctx.profiler_stop(name);
            Evaluated::null()
        }
        ProfilerCount => {
            arity(args, 1, op)?;
            let name = idents.first().map(String::as_str).unwrap_or("default");
            ctx.profiler_count(name, args[0].as_int()?.max(0) as u64);
            Evaluated::null()
        }
        ProfilerTime => {
            let name = idents.first().map(String::as_str).unwrap_or("default");
            Evaluated::value(Value::Int(ctx.profiler_time(name) as i64))
        }

        // --- debug -----------------------------------------------------------------------------------
        DebugPrint => {
            let line = args
                .iter()
                .map(Value::render)
                .collect::<Vec<_>>()
                .join(", ");
            ctx.output(line);
            Evaluated::null()
        }
        DebugAssert => {
            arity_min(args, 1, op)?;
            if !args[0].as_bool()? {
                let msg = args
                    .get(1)
                    .map(Value::render)
                    .unwrap_or_else(|| "assertion failed".into());
                return Err(RtError::runtime(msg));
            }
            Evaluated::null()
        }
        DebugInternalError => {
            let msg = args
                .first()
                .map(Value::render)
                .unwrap_or_else(|| "internal error".into());
            return Err(RtError::runtime(msg));
        }

        // --- exceptions ---------------------------------------------------------------------------------
        ExceptionThrow => {
            let kind = idents
                .first()
                .map(String::as_str)
                .unwrap_or("Hilti::RuntimeError");
            let msg = args.first().map(Value::render).unwrap_or_default();
            return Err(RtError::new(exception_kind_from_name(kind), msg));
        }
        ExceptionKindOf => {
            arity(args, 1, op)?;
            match &args[0] {
                Value::Exception(e) => Evaluated::value(Value::str(e.kind.name())),
                other => Err(RtError::type_error(format!(
                    "expected exception, got {}",
                    other.type_name()
                )))?,
            }
        }
        ExceptionMessage => {
            arity(args, 1, op)?;
            match &args[0] {
                Value::Exception(e) => Evaluated::value(Value::str(&e.message)),
                other => Err(RtError::type_error(format!(
                    "expected exception, got {}",
                    other.type_name()
                )))?,
            }
        }

        // --- handled by the engines ------------------------------------------------------------------------
        Call | CallC | CallVoid | Yield | New | HookRun | HookRunVoid | CallableCall
        | CallableCallVoid | PushHandler | PopHandler => {
            return Err(RtError::type_error(format!(
                "{} must be handled by the execution engine",
                op.mnemonic()
            )))
        }
    })
}

// NOTE: the specialized bytecode tier (`crate::specialize`, executed
// inline by the VM) mirrors the wrapping/shift/comparison semantics of the
// int ops evaluated through these helpers. `tests/differential.rs` checks
// the two paths against each other; keep them in sync when touching either.
#[inline]
fn bin_int(
    args: &[Value],
    op: Opcode,
    f: impl FnOnce(i64, i64) -> RtResult<i64>,
) -> RtResult<Evaluated> {
    arity(args, 2, op)?;
    Ok(Evaluated::value(Value::Int(f(
        args[0].as_int()?,
        args[1].as_int()?,
    )?)))
}

#[inline]
fn bin_int_cmp(
    args: &[Value],
    op: Opcode,
    f: impl FnOnce(i64, i64) -> bool,
) -> RtResult<Evaluated> {
    arity(args, 2, op)?;
    Ok(Evaluated::value(Value::Bool(f(
        args[0].as_int()?,
        args[1].as_int()?,
    ))))
}

fn bin_double(args: &[Value], op: Opcode, f: impl FnOnce(f64, f64) -> f64) -> RtResult<Evaluated> {
    arity(args, 2, op)?;
    Ok(Evaluated::value(Value::Double(f(
        args[0].as_double()?,
        args[1].as_double()?,
    ))))
}

fn bin_double_cmp(
    args: &[Value],
    op: Opcode,
    f: impl FnOnce(f64, f64) -> bool,
) -> RtResult<Evaluated> {
    arity(args, 2, op)?;
    Ok(Evaluated::value(Value::Bool(f(
        args[0].as_double()?,
        args[1].as_double()?,
    ))))
}

fn expire_strategy(v: &Value) -> RtResult<ExpireStrategy> {
    match v {
        Value::Int(0) => Ok(ExpireStrategy::Create),
        Value::Int(1) => Ok(ExpireStrategy::Access),
        Value::Enum(name, idx) if name.contains("ExpireStrategy") => match idx {
            0 => Ok(ExpireStrategy::Create),
            _ => Ok(ExpireStrategy::Access),
        },
        Value::String(s) => match &**s {
            "Create" | "create" => Ok(ExpireStrategy::Create),
            "Access" | "access" => Ok(ExpireStrategy::Access),
            other => Err(RtError::value(format!("unknown expire strategy {other}"))),
        },
        other => Err(RtError::type_error(format!(
            "expected expire strategy, got {}",
            other.type_name()
        ))),
    }
}

fn struct_field_index(ctx: &dyn ExecCtx, type_name: &str, field: &str) -> RtResult<usize> {
    let fields = ctx
        .struct_fields(type_name)
        .ok_or_else(|| RtError::type_error(format!("unknown struct type {type_name}")))?;
    fields
        .iter()
        .position(|f| f == field)
        .ok_or_else(|| RtError::index(format!("struct {type_name} has no field {field}")))
}

fn classifier_fields(v: &Value) -> RtResult<Vec<FieldMatcher>> {
    match v {
        Value::Tuple(t) => t.iter().map(to_field_matcher).collect(),
        single => Ok(vec![to_field_matcher(single)?]),
    }
}

fn classifier_key(v: &Value) -> RtResult<Vec<FieldValue>> {
    match v {
        Value::Tuple(t) => t.iter().map(to_field_value).collect(),
        single => Ok(vec![to_field_value(single)?]),
    }
}

/// Maps a textual exception name (`Hilti::IndexError`) to its kind.
pub fn exception_kind_from_name(name: &str) -> ExceptionKind {
    match name {
        "Hilti::IndexError" | "IndexError" => ExceptionKind::IndexError,
        "Hilti::ValueError" | "ValueError" => ExceptionKind::ValueError,
        "Hilti::ArithmeticError" | "ArithmeticError" => ExceptionKind::ArithmeticError,
        "Hilti::InvalidIterator" | "InvalidIterator" => ExceptionKind::InvalidIterator,
        "Hilti::WouldBlock" | "WouldBlock" => ExceptionKind::WouldBlock,
        "Hilti::Frozen" | "Frozen" => ExceptionKind::Frozen,
        "Hilti::PatternError" | "PatternError" => ExceptionKind::PatternError,
        "Hilti::ChannelError" | "ChannelError" => ExceptionKind::ChannelError,
        "Hilti::TypeError" | "TypeError" => ExceptionKind::TypeError,
        "Hilti::ResourceExhausted" | "ResourceExhausted" => ExceptionKind::ResourceExhausted,
        "Hilti::IoError" | "IoError" => ExceptionKind::IoError,
        _ => ExceptionKind::RuntimeError,
    }
}

/// Wraps an error into a caught-exception value for `catch` binders.
pub fn exception_value(err: &RtError) -> Value {
    Value::Exception(Rc::new(ExceptionVal {
        kind: err.kind,
        message: err.message.clone(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Opcode::*;
    use std::collections::HashMap;

    /// A minimal in-memory context for exercising the semantics directly.
    struct TestCtx {
        out: Vec<String>,
        time: Time,
        expiring: Vec<ExpiringHandle>,
        structs: HashMap<String, Vec<String>>,
        files: HashMap<String, LogFile>,
    }

    impl TestCtx {
        fn new() -> TestCtx {
            let mut structs = HashMap::new();
            structs.insert(
                "Conn".to_owned(),
                vec!["orig".to_owned(), "resp".to_owned()],
            );
            TestCtx {
                out: Vec::new(),
                time: Time::ZERO,
                expiring: Vec::new(),
                structs,
                files: HashMap::new(),
            }
        }
    }

    impl ExecCtx for TestCtx {
        fn output(&mut self, line: String) {
            self.out.push(line);
        }
        fn global_time(&self) -> Time {
            self.time
        }
        fn set_global_time(&mut self, t: Time) {
            self.time = t;
        }
        fn register_expiring(&mut self, handle: ExpiringHandle) {
            self.expiring.push(handle);
        }
        fn advance_expiring(&mut self, t: Time) {
            for h in &self.expiring {
                match h {
                    ExpiringHandle::Set(s) => {
                        s.borrow_mut().advance(t);
                    }
                    ExpiringHandle::Map(m) => {
                        m.borrow_mut().advance(t);
                    }
                }
            }
        }
        fn struct_fields(&self, name: &str) -> Option<Vec<String>> {
            self.structs.get(name).cloned()
        }
        fn overlay(&self, _name: &str) -> Option<Rc<OverlayType>> {
            Some(Rc::new(OverlayType::ipv4_header()))
        }
        fn open_file(&mut self, name: &str) -> LogFile {
            self.files
                .entry(name.to_owned())
                .or_insert_with(|| LogFile::in_memory(name))
                .clone()
        }
        fn open_iosrc(&mut self, _name: &str) -> RtResult<Value> {
            Err(RtError::io("no sources in tests"))
        }
        fn schedule_thread(&mut self, _tid: u64, _c: CallableVal) -> RtResult<()> {
            Ok(())
        }
        fn thread_id(&self) -> u64 {
            7
        }
        fn profiler_start(&mut self, _n: &str) {}
        fn profiler_stop(&mut self, _n: &str) {}
        fn profiler_count(&mut self, _n: &str, _v: u64) {}
        fn profiler_time(&self, _n: &str) -> u64 {
            0
        }
    }

    fn run(op: crate::ir::Opcode, args: &[Value]) -> RtResult<Value> {
        let mut ctx = TestCtx::new();
        eval(op, args, &[], &mut ctx).map(|e| e.value)
    }

    fn run_idents(op: crate::ir::Opcode, args: &[Value], idents: &[&str]) -> RtResult<Value> {
        let mut ctx = TestCtx::new();
        let idents: Vec<String> = idents.iter().map(|s| s.to_string()).collect();
        eval(op, args, &idents, &mut ctx).map(|e| e.value)
    }

    #[test]
    fn arity_is_enforced_everywhere_sampled() {
        for op in [IntAdd, BoolAnd, StringConcat, SetInsert, MapGet, TupleGet] {
            assert!(run(op, &[]).is_err(), "{op:?} with 0 args");
        }
    }

    #[test]
    fn int_semantics() {
        assert!(run(IntAdd, &[Value::Int(i64::MAX), Value::Int(1)])
            .unwrap()
            .equals(&Value::Int(i64::MIN))); // wrapping
        assert!(run(IntDiv, &[Value::Int(7), Value::Int(2)])
            .unwrap()
            .equals(&Value::Int(3)));
        assert_eq!(
            run(IntDiv, &[Value::Int(7), Value::Int(0)])
                .unwrap_err()
                .kind,
            ExceptionKind::ArithmeticError
        );
        assert!(run(IntShr, &[Value::Int(-1), Value::Int(1)])
            .unwrap()
            .equals(&Value::Int((u64::MAX >> 1) as i64))); // logical shift
        assert!(run(
            IntFromBytes,
            &[
                Value::Bytes(Bytes::frozen_from_slice(b"ff")),
                Value::Int(16)
            ]
        )
        .unwrap()
        .equals(&Value::Int(255)));
    }

    #[test]
    fn string_semantics() {
        assert_eq!(
            run(
                StringFmt,
                &[Value::str("a={} b={}"), Value::Int(1), Value::str("x")]
            )
            .unwrap()
            .render(),
            "a=1 b=x"
        );
        assert!(run(StringFmt, &[Value::str("{} {}"), Value::Int(1)]).is_err());
        assert_eq!(
            run(
                StringSubstr,
                &[Value::str("hello"), Value::Int(1), Value::Int(3)]
            )
            .unwrap()
            .render(),
            "ell"
        );
        assert!(
            run(StringStartsWith, &[Value::str("abc"), Value::str("ab")])
                .unwrap()
                .equals(&Value::Bool(true))
        );
    }

    #[test]
    fn bytes_semantics() {
        let b = Bytes::from_slice(b"hello");
        run(
            BytesAppend,
            &[Value::Bytes(b.clone()), Value::str(" world")],
        )
        .unwrap();
        assert_eq!(b.to_vec(), b"hello world");
        run(BytesFreeze, &[Value::Bytes(b.clone())]).unwrap();
        assert_eq!(
            run(BytesAppend, &[Value::Bytes(b.clone()), Value::str("!")])
                .unwrap_err()
                .kind,
            ExceptionKind::Frozen
        );
        // find: (bytes, needle, from) → (found, iter).
        let t = run(
            BytesFind,
            &[
                Value::Bytes(b.clone()),
                Value::str("world"),
                Value::BytesIter(b.begin()),
            ],
        )
        .unwrap();
        let tup = t.as_tuple().unwrap();
        assert!(tup[0].equals(&Value::Bool(true)));
        assert_eq!(tup[1].as_bytes_iter().unwrap().offset(), 6);
    }

    #[test]
    fn set_timeout_registers_for_expiry() {
        let mut ctx = TestCtx::new();
        let set = Value::Set(Rc::new(RefCell::new(SetVal::new())));
        eval(
            SetTimeout,
            &[
                set.clone(),
                Value::Int(1),
                Value::Interval(Interval::from_secs(10)),
            ],
            &[],
            &mut ctx,
        )
        .unwrap();
        assert_eq!(ctx.expiring.len(), 1);
        eval(SetInsert, &[set.clone(), Value::Int(5)], &[], &mut ctx).unwrap();
        ctx.set_global_time(Time::from_secs(20));
        ctx.advance_expiring(Time::from_secs(20));
        let size = eval(SetSize, &[set], &[], &mut ctx).unwrap().value;
        assert!(size.equals(&Value::Int(0)));
    }

    #[test]
    fn struct_field_access_by_ident() {
        let mut ctx = TestCtx::new();
        let s = instantiate(&Type::Struct(std::sync::Arc::from("Conn")), &[], &mut ctx).unwrap();
        eval(
            StructSet,
            &[s.clone(), Value::str("A")],
            &["orig".into()],
            &mut ctx,
        )
        .unwrap();
        let v = eval(
            StructGet,
            std::slice::from_ref(&s),
            &["orig".into()],
            &mut ctx,
        )
        .unwrap()
        .value;
        assert_eq!(v.render(), "A");
        // Unset field raises IndexError.
        assert_eq!(
            eval(
                StructGet,
                std::slice::from_ref(&s),
                &["resp".into()],
                &mut ctx
            )
            .unwrap_err()
            .kind,
            ExceptionKind::IndexError
        );
        let isset = eval(StructIsSet, &[s], &["resp".into()], &mut ctx)
            .unwrap()
            .value;
        assert!(isset.equals(&Value::Bool(false)));
    }

    #[test]
    fn overlay_get_via_ctx() {
        // 20-byte IPv4 header; ctx supplies the standard overlay.
        let mut hdr = vec![0x45u8, 0, 0, 20, 0, 0, 0, 0, 64, 6, 0, 0];
        hdr.extend_from_slice(&[10, 0, 0, 1, 10, 0, 0, 2]);
        let v = run_idents(
            OverlayGet,
            &[Value::Bytes(Bytes::frozen_from_slice(&hdr)), Value::Int(0)],
            &["IP::Header", "src"],
        )
        .unwrap();
        assert_eq!(v.render(), "10.0.0.1");
    }

    #[test]
    fn regexp_match_token_would_block_semantics() {
        let re = Regex::new("[a-z]+!").unwrap();
        let open_bytes = Bytes::from_slice(b"abc");
        // Open input, token could extend: WouldBlock.
        let r = run(
            RegexpMatchToken,
            &[
                Value::Regexp(re.clone()),
                Value::BytesIter(open_bytes.begin()),
            ],
        );
        assert_eq!(r.unwrap_err().kind, ExceptionKind::WouldBlock);
        // Frozen: resolves.
        open_bytes.append(b"!").unwrap();
        open_bytes.freeze();
        let v = run(
            RegexpMatchToken,
            &[Value::Regexp(re), Value::BytesIter(open_bytes.begin())],
        )
        .unwrap();
        let t = v.as_tuple().unwrap();
        assert!(t[0].equals(&Value::Int(0)));
        assert_eq!(t[1].as_bytes_iter().unwrap().offset(), 4);
    }

    #[test]
    fn bytes_eod_blocks_until_frozen() {
        let b = Bytes::from_slice(b"tail");
        assert_eq!(
            run(BytesEod, &[Value::BytesIter(b.begin())])
                .unwrap_err()
                .kind,
            ExceptionKind::WouldBlock
        );
        b.freeze();
        let v = run(BytesEod, &[Value::BytesIter(b.begin())]).unwrap();
        let t = v.as_tuple().unwrap();
        assert_eq!(t[0].as_bytes().unwrap().to_vec(), b"tail");
    }

    #[test]
    fn classifier_ops_roundtrip() {
        let mut ctx = TestCtx::new();
        let c = instantiate(
            &Type::Classifier(
                std::sync::Arc::new(Type::Any),
                std::sync::Arc::new(Type::Bool),
            ),
            &[],
            &mut ctx,
        )
        .unwrap();
        let rule = Value::Tuple(Rc::new(vec![
            Value::Net("10.0.0.0/8".parse().unwrap()),
            Value::Null,
        ]));
        eval(
            ClassifierAdd,
            &[c.clone(), rule, Value::Bool(true)],
            &[],
            &mut ctx,
        )
        .unwrap();
        eval(ClassifierCompile, std::slice::from_ref(&c), &[], &mut ctx).unwrap();
        let key = Value::Tuple(Rc::new(vec![
            Value::Addr("10.1.2.3".parse().unwrap()),
            Value::Addr("8.8.8.8".parse().unwrap()),
        ]));
        let hit = eval(ClassifierGet, &[c.clone(), key], &[], &mut ctx)
            .unwrap()
            .value;
        assert!(hit.equals(&Value::Bool(true)));
        let miss_key = Value::Tuple(Rc::new(vec![
            Value::Addr("11.0.0.1".parse().unwrap()),
            Value::Addr("8.8.8.8".parse().unwrap()),
        ]));
        assert_eq!(
            eval(ClassifierGet, &[c, miss_key], &[], &mut ctx)
                .unwrap_err()
                .kind,
            ExceptionKind::IndexError
        );
    }

    #[test]
    fn timer_mgr_fires_callables() {
        let mut ctx = TestCtx::new();
        let mgr = instantiate(&Type::TimerMgr, &[], &mut ctx).unwrap();
        let callable = Value::Callable(Rc::new(CallableVal {
            func: Rc::from("M::cb"),
            bound: vec![Value::Int(1)],
        }));
        eval(
            TimerMgrSchedule,
            &[mgr.clone(), Value::Time(Time::from_secs(10)), callable],
            &[],
            &mut ctx,
        )
        .unwrap();
        let fired = eval(
            TimerMgrAdvance,
            &[mgr.clone(), Value::Time(Time::from_secs(5))],
            &[],
            &mut ctx,
        )
        .unwrap()
        .fired;
        assert!(fired.is_empty());
        let fired = eval(
            TimerMgrAdvance,
            &[mgr, Value::Time(Time::from_secs(10))],
            &[],
            &mut ctx,
        )
        .unwrap()
        .fired;
        assert_eq!(fired.len(), 1);
        assert_eq!(&*fired[0].func, "M::cb");
    }

    #[test]
    fn exception_kind_mapping() {
        assert_eq!(
            exception_kind_from_name("Hilti::IndexError"),
            ExceptionKind::IndexError
        );
        assert_eq!(
            exception_kind_from_name("WouldBlock"),
            ExceptionKind::WouldBlock
        );
        assert_eq!(
            exception_kind_from_name("anything else"),
            ExceptionKind::RuntimeError
        );
    }

    #[test]
    fn debug_and_assert() {
        let mut ctx = TestCtx::new();
        eval(DebugPrint, &[Value::Int(1), Value::str("x")], &[], &mut ctx).unwrap();
        assert_eq!(ctx.out, vec!["1, x"]);
        assert!(eval(DebugAssert, &[Value::Bool(true)], &[], &mut ctx).is_ok());
        assert!(eval(DebugAssert, &[Value::Bool(false)], &[], &mut ctx).is_err());
    }

    #[test]
    fn type_confusion_is_error_not_panic() {
        // Wrong operand types across a sample of opcodes: typed errors.
        assert!(run(IntAdd, &[Value::str("a"), Value::Int(1)]).is_err());
        assert!(run(SetInsert, &[Value::Int(1), Value::Int(2)]).is_err());
        assert!(run(MapGet, &[Value::Bool(true), Value::Int(0)]).is_err());
        assert!(run(TupleGet, &[Value::Int(1), Value::Int(0)]).is_err());
        assert!(run(BytesLength, &[Value::Null]).is_err());
        assert!(run(ChannelRead, &[Value::Int(5)]).is_err());
    }
}
