//! HILTI's static type system (§3.2 "Rich Data Types").
//!
//! The machine is statically typed: containers, iterators, and references
//! are parameterized by type, and instructions validate their operand types
//! before a program runs ([`crate::check`]). Types also provide "crucial
//! context for type checking, optimization, and data flow/dependency
//! analyses".

use std::fmt;
use std::sync::Arc;

/// A HILTI type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Type {
    /// Bottom type of `return` with no value.
    Void,
    Bool,
    /// Fixed-width integer, `int<8|16|32|64>`.
    Int(u8),
    Double,
    /// Unicode string.
    String,
    /// Raw bytes (appendable, freezable; see `hilti_rt::Bytes`).
    Bytes,
    /// Iterator over bytes.
    BytesIter,
    Addr,
    Net,
    Port,
    Time,
    Interval,
    /// Named enum type.
    Enum(Arc<str>),
    /// Named bitset type (a set of named bits in an int<64>).
    Bitset(Arc<str>),
    Tuple(Arc<Vec<Type>>),
    List(Arc<Type>),
    Vector(Arc<Type>),
    Set(Arc<Type>),
    Map(Arc<Type>, Arc<Type>),
    /// Named struct type; layout looked up in the module.
    Struct(Arc<str>),
    /// Reference to a heap value. In this implementation references are
    /// implicit (values of heap types share state on copy), but `ref<T>`
    /// remains in the surface syntax and the type checker treats it as
    /// transparent.
    Ref(Arc<Type>),
    /// Compiled regular expression (possibly a set of patterns).
    Regexp,
    /// In-progress incremental regexp match.
    Matcher,
    Channel(Arc<Type>),
    /// Packet classifier with rule-struct and value types.
    Classifier(Arc<Type>, Arc<Type>),
    /// Named overlay type.
    Overlay(Arc<str>),
    Timer,
    TimerMgr,
    File,
    /// Input source for packets (trace file / interface).
    IOSrc,
    /// Bound function value.
    Callable(Arc<Vec<Type>>, Arc<Type>),
    Exception,
    /// Caught-exception binder in `catch` clauses, or a wildcard in
    /// signatures of overloaded instructions.
    Any,
}

impl Type {
    /// Strips `ref<...>` wrappers; the machine's reference semantics make
    /// them transparent for checking purposes.
    pub fn strip_ref(&self) -> &Type {
        match self {
            Type::Ref(inner) => inner.strip_ref(),
            t => t,
        }
    }

    /// Structural compatibility: equal after stripping refs, with `Any`
    /// acting as a wildcard on either side.
    pub fn compatible(&self, other: &Type) -> bool {
        let a = self.strip_ref();
        let b = other.strip_ref();
        match (a, b) {
            (Type::Any, _) | (_, Type::Any) => true,
            (Type::Int(_), Type::Int(_)) => true,
            (Type::Tuple(x), Type::Tuple(y)) => {
                x.len() == y.len() && x.iter().zip(y.iter()).all(|(p, q)| p.compatible(q))
            }
            (Type::List(x), Type::List(y))
            | (Type::Vector(x), Type::Vector(y))
            | (Type::Set(x), Type::Set(y))
            | (Type::Channel(x), Type::Channel(y)) => x.compatible(y),
            (Type::Map(k1, v1), Type::Map(k2, v2)) => k1.compatible(k2) && v1.compatible(v2),
            (Type::Classifier(k1, v1), Type::Classifier(k2, v2)) => {
                k1.compatible(k2) && v1.compatible(v2)
            }
            (x, y) => x == y,
        }
    }

    /// True for types whose values live on the heap and share state when
    /// copied (the `ref` family in the paper's model).
    pub fn is_heap(&self) -> bool {
        matches!(
            self.strip_ref(),
            Type::Bytes
                | Type::List(_)
                | Type::Vector(_)
                | Type::Set(_)
                | Type::Map(_, _)
                | Type::Struct(_)
                | Type::Regexp
                | Type::Matcher
                | Type::Channel(_)
                | Type::Classifier(_, _)
                | Type::TimerMgr
                | Type::File
                | Type::IOSrc
        )
    }

    pub fn int64() -> Type {
        Type::Int(64)
    }

    pub fn list(t: Type) -> Type {
        Type::List(Arc::new(t))
    }

    pub fn vector(t: Type) -> Type {
        Type::Vector(Arc::new(t))
    }

    pub fn set(t: Type) -> Type {
        Type::Set(Arc::new(t))
    }

    pub fn map(k: Type, v: Type) -> Type {
        Type::Map(Arc::new(k), Arc::new(v))
    }

    pub fn tuple(ts: Vec<Type>) -> Type {
        Type::Tuple(Arc::new(ts))
    }

    pub fn reference(t: Type) -> Type {
        Type::Ref(Arc::new(t))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "bool"),
            Type::Int(w) => write!(f, "int<{w}>"),
            Type::Double => write!(f, "double"),
            Type::String => write!(f, "string"),
            Type::Bytes => write!(f, "bytes"),
            Type::BytesIter => write!(f, "iterator<bytes>"),
            Type::Addr => write!(f, "addr"),
            Type::Net => write!(f, "net"),
            Type::Port => write!(f, "port"),
            Type::Time => write!(f, "time"),
            Type::Interval => write!(f, "interval"),
            Type::Enum(n) => write!(f, "enum {n}"),
            Type::Bitset(n) => write!(f, "bitset {n}"),
            Type::Tuple(ts) => {
                write!(f, "tuple<")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ">")
            }
            Type::List(t) => write!(f, "list<{t}>"),
            Type::Vector(t) => write!(f, "vector<{t}>"),
            Type::Set(t) => write!(f, "set<{t}>"),
            Type::Map(k, v) => write!(f, "map<{k}, {v}>"),
            Type::Struct(n) => write!(f, "struct {n}"),
            Type::Ref(t) => write!(f, "ref<{t}>"),
            Type::Regexp => write!(f, "regexp"),
            Type::Matcher => write!(f, "matcher"),
            Type::Channel(t) => write!(f, "channel<{t}>"),
            Type::Classifier(k, v) => write!(f, "classifier<{k}, {v}>"),
            Type::Overlay(n) => write!(f, "overlay {n}"),
            Type::Timer => write!(f, "timer"),
            Type::TimerMgr => write!(f, "timer_mgr"),
            Type::File => write!(f, "file"),
            Type::IOSrc => write!(f, "iosrc"),
            Type::Callable(args, ret) => {
                write!(f, "callable<{ret}")?;
                for a in args.iter() {
                    write!(f, ", {a}")?;
                }
                write!(f, ">")
            }
            Type::Exception => write!(f, "exception"),
            Type::Any => write!(f, "any"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip_shapes() {
        assert_eq!(Type::Int(32).to_string(), "int<32>");
        assert_eq!(
            Type::map(Type::Addr, Type::set(Type::Port)).to_string(),
            "map<addr, set<port>>"
        );
        assert_eq!(Type::reference(Type::Bytes).to_string(), "ref<bytes>");
        assert_eq!(
            Type::tuple(vec![Type::Addr, Type::Addr]).to_string(),
            "tuple<addr, addr>"
        );
    }

    #[test]
    fn refs_are_transparent_for_compat() {
        let a = Type::reference(Type::set(Type::Addr));
        let b = Type::set(Type::Addr);
        assert!(a.compatible(&b));
        assert!(b.compatible(&a));
    }

    #[test]
    fn any_is_wildcard() {
        assert!(Type::Any.compatible(&Type::Port));
        assert!(Type::map(Type::Any, Type::Any).compatible(&Type::map(Type::Addr, Type::Bool)));
    }

    #[test]
    fn int_widths_are_compatible() {
        // Width is a storage attribute; arithmetic instructions accept any
        // combination and the checker warns rather than errors.
        assert!(Type::Int(8).compatible(&Type::Int(64)));
    }

    #[test]
    fn distinct_types_incompatible() {
        assert!(!Type::Addr.compatible(&Type::Port));
        assert!(!Type::list(Type::Addr).compatible(&Type::list(Type::Port)));
        assert!(
            !Type::tuple(vec![Type::Addr]).compatible(&Type::tuple(vec![Type::Addr, Type::Addr]))
        );
    }

    #[test]
    fn heap_classification() {
        assert!(Type::Bytes.is_heap());
        assert!(Type::map(Type::Addr, Type::Bool).is_heap());
        assert!(Type::reference(Type::Bytes).is_heap());
        assert!(!Type::Addr.is_heap());
        assert!(!Type::Int(64).is_heap());
    }
}
