//! The HILTI intermediate representation.
//!
//! Programs are modules of functions; functions are lists of labeled basic
//! blocks; blocks are sequences of register-style instructions of the form
//! `<target> = <mnemonic> <op1> <op2> <op3>` plus one terminator (§3.2
//! "Syntax"). Mnemonics group by prefix — `list.append`, `set.insert`,
//! `classifier.get` — exactly as in Table 1 of the paper; [`GROUPS`]
//! reproduces that table and a test asserts the instruction count is in the
//! paper's "about 200" ballpark.
//!
//! The representation is deliberately simple — "we deliberately limit
//! syntactic flexibility to better support compiler transformations because
//! HILTI mainly acts as compiler *target*".

use std::collections::HashMap;
use std::fmt;

use crate::types::Type;
use hilti_rt::addr::{Addr, Network, Port};
use hilti_rt::overlay::OverlayType;
use hilti_rt::time::{Interval, Time};

/// A compile-time constant operand.
#[derive(Clone, Debug, PartialEq)]
pub enum Const {
    Null,
    Bool(bool),
    Int(i64),
    Double(f64),
    Str(String),
    BytesLit(Vec<u8>),
    Addr(Addr),
    Net(Network),
    Port(Port),
    Time(Time),
    Interval(Interval),
    /// Reference to an enum label: (enum type name, label index).
    EnumLit(String, i64),
    /// A block label (jump targets, handler labels).
    Label(String),
    /// An identifier: function name, hook name, struct field, overlay
    /// field, exception kind, host-function name.
    Ident(String),
    /// A type operand, e.g. for `new`.
    TypeRef(Type),
    /// Regular-expression pattern set for `regexp.new`.
    Patterns(Vec<String>),
    /// Constant tuple.
    Tuple(Vec<Const>),
}

/// An instruction operand.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    Const(Const),
    /// A named variable; resolved against locals first, then module
    /// globals (which are thread-local at runtime, §3.2).
    Var(String),
}

impl Operand {
    pub fn int(v: i64) -> Operand {
        Operand::Const(Const::Int(v))
    }

    pub fn bool_(v: bool) -> Operand {
        Operand::Const(Const::Bool(v))
    }

    pub fn str(s: &str) -> Operand {
        Operand::Const(Const::Str(s.to_owned()))
    }

    pub fn bytes(b: &[u8]) -> Operand {
        Operand::Const(Const::BytesLit(b.to_vec()))
    }

    pub fn ident(s: &str) -> Operand {
        Operand::Const(Const::Ident(s.to_owned()))
    }

    pub fn label(s: &str) -> Operand {
        Operand::Const(Const::Label(s.to_owned()))
    }

    pub fn var(s: &str) -> Operand {
        Operand::Var(s.to_owned())
    }
}

macro_rules! opcodes {
    ($( $group:literal => { $( $variant:ident = $mnemonic:literal [pure=$pure:tt] ),* $(,)? } ),* $(,)?) => {
        /// Every instruction mnemonic of the machine.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
        pub enum Opcode {
            $( $( $variant, )* )*
        }

        impl Opcode {
            /// The textual mnemonic, e.g. `list.push_back`.
            pub fn mnemonic(&self) -> &'static str {
                match self {
                    $( $( Opcode::$variant => $mnemonic, )* )*
                }
            }

            /// Parses a mnemonic.
            pub fn from_mnemonic(s: &str) -> Option<Opcode> {
                match s {
                    $( $( $mnemonic => Some(Opcode::$variant), )* )*
                    _ => None,
                }
            }

            /// True for side-effect-free instructions whose result depends
            /// only on their operands — the candidates for constant
            /// folding, CSE, and dead-code elimination.
            pub fn is_pure(&self) -> bool {
                match self {
                    $( $( Opcode::$variant => $pure, )* )*
                }
            }

            /// The functionality group (Table 1) the opcode belongs to.
            pub fn group(&self) -> &'static str {
                match self {
                    $( $( Opcode::$variant => $group, )* )*
                }
            }
        }

        /// Table 1 of the paper: instruction groups and their mnemonics.
        pub const GROUPS: &[(&str, &[&str])] = &[
            $( ($group, &[ $( $mnemonic, )* ]), )*
        ];
    };
}

opcodes! {
    "Flow control" => {
        Assign = "assign" [pure=true],
        Call = "call" [pure=false],
        CallC = "call.c" [pure=false],
        CallVoid = "call.void" [pure=false],
        Yield = "yield" [pure=false],
        New = "new" [pure=false],
        DeepCopy = "deepcopy" [pure=false],
        Equal = "equal" [pure=true],
        Unequal = "unequal" [pure=true],
        Select = "select" [pure=true],
    },
    "Integers" => {
        IntAdd = "int.add" [pure=true],
        IntSub = "int.sub" [pure=true],
        IntMul = "int.mul" [pure=true],
        IntDiv = "int.div" [pure=true],
        IntMod = "int.mod" [pure=true],
        IntNeg = "int.neg" [pure=true],
        IntAbs = "int.abs" [pure=true],
        IntMin = "int.min" [pure=true],
        IntMax = "int.max" [pure=true],
        IntEq = "int.eq" [pure=true],
        IntLt = "int.lt" [pure=true],
        IntGt = "int.gt" [pure=true],
        IntLeq = "int.leq" [pure=true],
        IntGeq = "int.geq" [pure=true],
        IntAnd = "int.and" [pure=true],
        IntOr = "int.or" [pure=true],
        IntXor = "int.xor" [pure=true],
        IntShl = "int.shl" [pure=true],
        IntShr = "int.shr" [pure=true],
        IntToDouble = "int.to_double" [pure=true],
        IntToString = "int.to_string" [pure=true],
        IntFromBytes = "int.from_bytes" [pure=true],
    },
    "Booleans" => {
        BoolAnd = "bool.and" [pure=true],
        BoolOr = "bool.or" [pure=true],
        BoolNot = "bool.not" [pure=true],
        BoolXor = "bool.xor" [pure=true],
    },
    "Bitsets" => {
        BitsetSet = "bitset.set" [pure=true],
        BitsetClear = "bitset.clear" [pure=true],
        BitsetHas = "bitset.has" [pure=true],
    },
    "Doubles" => {
        DoubleAdd = "double.add" [pure=true],
        DoubleSub = "double.sub" [pure=true],
        DoubleMul = "double.mul" [pure=true],
        DoubleDiv = "double.div" [pure=true],
        DoubleLt = "double.lt" [pure=true],
        DoubleGt = "double.gt" [pure=true],
        DoubleLeq = "double.leq" [pure=true],
        DoubleGeq = "double.geq" [pure=true],
        DoubleAbs = "double.abs" [pure=true],
        DoubleToInt = "double.to_int" [pure=true],
    },
    "Strings" => {
        StringConcat = "string.concat" [pure=true],
        StringLength = "string.length" [pure=true],
        StringFind = "string.find" [pure=true],
        StringSubstr = "string.substr" [pure=true],
        StringToBytes = "string.to_bytes" [pure=true],
        StringToInt = "string.to_int" [pure=true],
        StringUpper = "string.upper" [pure=true],
        StringLower = "string.lower" [pure=true],
        StringStartsWith = "string.starts_with" [pure=true],
        StringFmt = "string.fmt" [pure=true],
        StringRender = "string.render" [pure=true],
    },
    "Raw data" => {
        BytesAppend = "bytes.append" [pure=false],
        BytesFreeze = "bytes.freeze" [pure=false],
        BytesUnfreeze = "bytes.unfreeze" [pure=false],
        BytesIsFrozen = "bytes.is_frozen" [pure=false],
        BytesLength = "bytes.length" [pure=false],
        BytesSub = "bytes.sub" [pure=false],
        BytesFind = "bytes.find" [pure=false],
        BytesTrim = "bytes.trim" [pure=false],
        BytesToString = "bytes.to_string" [pure=false],
        BytesToInt = "bytes.to_int" [pure=false],
        BytesBegin = "bytes.begin" [pure=false],
        BytesEnd = "bytes.end" [pure=false],
        BytesAt = "bytes.at" [pure=false],
        BytesStartsWith = "bytes.starts_with" [pure=false],
        BytesCopy = "bytes.copy" [pure=false],
        BytesEod = "bytes.eod" [pure=false],
    },
    "Bytes iterators" => {
        IterIncr = "iterator.incr" [pure=true],
        IterDeref = "iterator.deref" [pure=false],
        IterOffset = "iterator.offset" [pure=true],
        IterDiff = "iterator.diff" [pure=true],
        IterAtFrozenEnd = "iterator.at_frozen_end" [pure=false],
        IterWouldBlock = "iterator.would_block" [pure=false],
    },
    "IP addresses" => {
        AddrFamily = "addr.family" [pure=true],
        AddrMask = "addr.mask" [pure=true],
    },
    "CIDR masks" => {
        NetContains = "network.contains" [pure=true],
        NetFamily = "network.family" [pure=true],
        NetPrefix = "network.prefix" [pure=true],
        NetLength = "network.length" [pure=true],
    },
    "Ports" => {
        PortProtocol = "port.protocol" [pure=true],
        PortNumber = "port.number" [pure=true],
    },
    "Times" => {
        TimeAdd = "time.add" [pure=true],
        TimeSubTime = "time.sub_time" [pure=true],
        TimeSubInterval = "time.sub_interval" [pure=true],
        TimeLt = "time.lt" [pure=true],
        TimeGt = "time.gt" [pure=true],
        TimeFromDouble = "time.from_double" [pure=true],
        TimeToDouble = "time.to_double" [pure=true],
        TimeNsecs = "time.nsecs" [pure=true],
    },
    "Time intervals" => {
        IntervalAdd = "interval.add" [pure=true],
        IntervalSub = "interval.sub" [pure=true],
        IntervalLt = "interval.lt" [pure=true],
        IntervalGt = "interval.gt" [pure=true],
        IntervalFromDouble = "interval.from_double" [pure=true],
        IntervalToDouble = "interval.to_double" [pure=true],
        IntervalNsecs = "interval.nsecs" [pure=true],
    },
    "Enumerations" => {
        EnumFromInt = "enum.from_int" [pure=true],
        EnumToInt = "enum.to_int" [pure=true],
    },
    "Tuples" => {
        TupleGet = "tuple.get" [pure=true],
        TupleLength = "tuple.length" [pure=true],
        TuplePack = "tuple.pack" [pure=true],
    },
    "Lists" => {
        ListPushBack = "list.push_back" [pure=false],
        ListPushFront = "list.push_front" [pure=false],
        ListPopFront = "list.pop_front" [pure=false],
        ListPopBack = "list.pop_back" [pure=false],
        ListFront = "list.front" [pure=false],
        ListBack = "list.back" [pure=false],
        ListLength = "list.length" [pure=false],
        ListAppend = "list.append" [pure=false],
        ListClear = "list.clear" [pure=false],
    },
    "Vectors/arrays" => {
        VectorPushBack = "vector.push_back" [pure=false],
        VectorPopBack = "vector.pop_back" [pure=false],
        VectorGet = "vector.get" [pure=false],
        VectorSet = "vector.set" [pure=false],
        VectorLength = "vector.length" [pure=false],
        VectorReserve = "vector.reserve" [pure=false],
        VectorClear = "vector.clear" [pure=false],
    },
    "Hashsets" => {
        SetInsert = "set.insert" [pure=false],
        SetExists = "set.exists" [pure=false],
        SetRemove = "set.remove" [pure=false],
        SetSize = "set.size" [pure=false],
        SetTimeout = "set.timeout" [pure=false],
        SetClear = "set.clear" [pure=false],
        SetMembers = "set.members" [pure=false],
    },
    "Hashmaps" => {
        MapInsert = "map.insert" [pure=false],
        MapGet = "map.get" [pure=false],
        MapGetDefault = "map.get_default" [pure=false],
        MapExists = "map.exists" [pure=false],
        MapRemove = "map.remove" [pure=false],
        MapSize = "map.size" [pure=false],
        MapTimeout = "map.timeout" [pure=false],
        MapClear = "map.clear" [pure=false],
        MapKeys = "map.keys" [pure=false],
    },
    "Structs" => {
        StructGet = "struct.get" [pure=false],
        StructSet = "struct.set" [pure=false],
        StructIsSet = "struct.is_set" [pure=false],
        StructUnset = "struct.unset" [pure=false],
    },
    "Packet classification" => {
        ClassifierAdd = "classifier.add" [pure=false],
        ClassifierAddPrio = "classifier.add_prio" [pure=false],
        ClassifierCompile = "classifier.compile" [pure=false],
        ClassifierGet = "classifier.get" [pure=false],
        ClassifierMatches = "classifier.matches" [pure=false],
        ClassifierSize = "classifier.size" [pure=false],
    },
    "Regular expressions" => {
        RegexpNew = "regexp.new" [pure=false],
        RegexpMatchPrefix = "regexp.match_prefix" [pure=false],
        RegexpFind = "regexp.find" [pure=false],
        RegexpMatchToken = "regexp.match_token" [pure=false],
        RegexpMatcherInit = "regexp.matcher_init" [pure=false],
        RegexpMatcherFeed = "regexp.matcher_feed" [pure=false],
        RegexpMatcherFinish = "regexp.matcher_finish" [pure=false],
    },
    "Channels" => {
        ChannelWrite = "channel.write" [pure=false],
        ChannelRead = "channel.read" [pure=false],
        ChannelTryRead = "channel.try_read" [pure=false],
        ChannelSize = "channel.size" [pure=false],
        ChannelClose = "channel.close" [pure=false],
    },
    "Timer management" => {
        TimerMgrAdvance = "timer_mgr.advance" [pure=false],
        TimerMgrAdvanceGlobal = "timer_mgr.advance_global" [pure=false],
        TimerMgrSchedule = "timer_mgr.schedule" [pure=false],
        TimerMgrCancel = "timer_mgr.cancel" [pure=false],
        TimerMgrCurrent = "timer_mgr.current" [pure=false],
        TimerMgrGlobalTime = "timer_mgr.global_time" [pure=false],
        TimerMgrSize = "timer_mgr.size" [pure=false],
    },
    "Timers" => {
        TimerNew = "timer.new" [pure=false],
        TimerCancel = "timer.cancel" [pure=false],
    },
    "Virtual threads" => {
        ThreadSchedule = "thread.schedule" [pure=false],
        ThreadId = "thread.id" [pure=false],
    },
    "Callbacks" => {
        HookRun = "hook.run" [pure=false],
        HookRunVoid = "hook.run_void" [pure=false],
    },
    "Closures" => {
        CallableBind = "callable.bind" [pure=false],
        CallableCall = "callable.call" [pure=false],
        CallableCallVoid = "callable.call_void" [pure=false],
    },
    "Packet dissection" => {
        OverlayGet = "overlay.get" [pure=false],
    },
    "File i/o" => {
        FileOpen = "file.open" [pure=false],
        FileWrite = "file.write" [pure=false],
        FileClose = "file.close" [pure=false],
    },
    "Packet i/o" => {
        IosrcOpen = "iosrc.open" [pure=false],
        IosrcRead = "iosrc.read" [pure=false],
    },
    "Profiling" => {
        ProfilerStart = "profiler.start" [pure=false],
        ProfilerStop = "profiler.stop" [pure=false],
        ProfilerCount = "profiler.count" [pure=false],
        ProfilerTime = "profiler.time" [pure=false],
    },
    "Debug support" => {
        DebugPrint = "debug.print" [pure=false],
        DebugAssert = "debug.assert" [pure=false],
        DebugInternalError = "debug.internal_error" [pure=false],
    },
    "Exceptions" => {
        ExceptionThrow = "exception.throw" [pure=false],
        ExceptionKindOf = "exception.kind" [pure=true],
        ExceptionMessage = "exception.message" [pure=true],
        PushHandler = "exception.push_handler" [pure=false],
        PopHandler = "exception.pop_handler" [pure=false],
    },
}

/// One three-address instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct Instr {
    /// Destination variable, if the instruction produces a value.
    pub target: Option<String>,
    pub opcode: Opcode,
    pub args: Vec<Operand>,
}

impl Instr {
    pub fn new(target: Option<&str>, opcode: Opcode, args: Vec<Operand>) -> Self {
        Instr {
            target: target.map(str::to_owned),
            opcode,
            args,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(t) = &self.target {
            write!(f, "{t} = ")?;
        }
        write!(f, "{}", self.opcode.mnemonic())?;
        for a in &self.args {
            write!(f, " {a:?}")?;
        }
        Ok(())
    }
}

/// Block terminator.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    Jump(String),
    /// `if.else cond then_label else_label`.
    IfElse(Operand, String, String),
    Return(Option<Operand>),
}

/// A labeled basic block.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    pub label: String,
    pub instrs: Vec<Instr>,
    pub term: Terminator,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Fully qualified name, `Module::name`.
    pub name: String,
    pub params: Vec<(String, Type)>,
    pub ret: Type,
    pub locals: Vec<(String, Type)>,
    pub blocks: Vec<Block>,
}

impl Function {
    /// Finds a block by label.
    pub fn block(&self, label: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.label == label)
    }

    /// Index of a block by label.
    pub fn block_index(&self, label: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.label == label)
    }
}

/// A user-defined type.
#[derive(Clone, Debug)]
pub enum TypeDef {
    Struct(Vec<(String, Type)>),
    Enum(Vec<String>),
    Bitset(Vec<String>),
    Overlay(OverlayType),
}

/// A hook body: an ordinary function plus a priority (§5: hooks may have
/// bodies in several compilation units; higher priority runs first).
#[derive(Clone, Debug)]
pub struct HookBody {
    pub priority: i64,
    pub func: Function,
}

/// One compilation unit.
#[derive(Clone, Debug, Default)]
pub struct Module {
    pub name: String,
    pub types: HashMap<String, TypeDef>,
    /// Globals are *thread-local to the executing virtual thread* (§3.2:
    /// "no truly global" state). Initialized per context.
    pub globals: Vec<(String, Type, Option<Const>)>,
    pub functions: Vec<Function>,
    /// Hook name → bodies defined in this unit.
    pub hooks: HashMap<String, Vec<HookBody>>,
}

impl Module {
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_owned(),
            ..Default::default()
        }
    }

    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Qualifies a bare name with this module's namespace.
    pub fn qualify(&self, bare: &str) -> String {
        if bare.contains("::") {
            bare.to_owned()
        } else {
            format!("{}::{bare}", self.name)
        }
    }
}

/// Total number of instruction mnemonics.
pub fn instruction_count() -> usize {
    GROUPS.iter().map(|(_, ms)| ms.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for (_, mnemonics) in GROUPS {
            for m in *mnemonics {
                let op = Opcode::from_mnemonic(m).expect("every mnemonic parses");
                assert_eq!(op.mnemonic(), *m);
            }
        }
        assert_eq!(Opcode::from_mnemonic("no.such.op"), None);
    }

    #[test]
    fn instruction_count_in_paper_ballpark() {
        // "In total HILTI currently offers about 200 instructions (counting
        // instructions overloaded by their argument types only once)."
        let n = instruction_count();
        assert!((140..=260).contains(&n), "instruction count {n}");
    }

    #[test]
    fn table1_groups_covered() {
        // Every functionality group from Table 1 of the paper exists.
        let expected = [
            "Bitsets",
            "Booleans",
            "CIDR masks",
            "Callbacks",
            "Closures",
            "Channels",
            "Debug support",
            "Doubles",
            "Enumerations",
            "Exceptions",
            "File i/o",
            "Flow control",
            "Hashmaps",
            "Hashsets",
            "IP addresses",
            "Integers",
            "Lists",
            "Packet i/o",
            "Packet classification",
            "Packet dissection",
            "Ports",
            "Profiling",
            "Raw data",
            "References",
            "Regular expressions",
            "Strings",
            "Structs",
            "Time intervals",
            "Timer management",
            "Timers",
            "Times",
            "Tuples",
            "Vectors/arrays",
            "Virtual threads",
        ];
        let have: Vec<&str> = GROUPS.iter().map(|(g, _)| *g).collect();
        for g in expected {
            // "References" are implicit in our value model; everything else
            // must be present by name.
            if g == "References" {
                continue;
            }
            assert!(have.contains(&g), "missing group {g}");
        }
    }

    #[test]
    fn purity_classification() {
        assert!(Opcode::IntAdd.is_pure());
        assert!(Opcode::Equal.is_pure());
        assert!(!Opcode::SetInsert.is_pure());
        assert!(!Opcode::Call.is_pure());
        assert!(!Opcode::BytesLength.is_pure()); // length changes via append
        assert!(Opcode::IterIncr.is_pure());
    }

    #[test]
    fn groups_assigned() {
        assert_eq!(Opcode::ListPushBack.group(), "Lists");
        assert_eq!(Opcode::ClassifierGet.group(), "Packet classification");
        assert_eq!(Opcode::ThreadSchedule.group(), "Virtual threads");
    }

    #[test]
    fn module_qualify() {
        let m = Module::new("Main");
        assert_eq!(m.qualify("run"), "Main::run");
        assert_eq!(m.qualify("Hilti::print"), "Hilti::print");
    }

    #[test]
    fn instr_display() {
        let i = Instr::new(
            Some("x"),
            Opcode::IntAdd,
            vec![Operand::var("a"), Operand::int(1)],
        );
        let s = format!("{i}");
        assert!(s.starts_with("x = int.add"));
    }
}
