//! Bytecode specialization: the typed fast tier of the compiled engine.
//!
//! This pass rewrites generic [`CInstr::Op`] instructions into direct,
//! typed variants when operand types are statically known from the checked
//! IR (carried through lowering as [`CFunc::slot_types`]). The specialized
//! variants execute inline in the VM dispatch loop on `frame.slots` — no
//! operand clone into the scratch buffer, no `Evaluated` wrapper, no trip
//! through the `ops::eval` megamatch — which is where the bulk of the
//! per-instruction cost of hot integer/branch code goes (cf. Deegen-style
//! typed interpreter opcodes; §6.5's compiled-vs-interpreted gap is the
//! same story one level down).
//!
//! The pass runs in two phases over each function:
//!
//! 1. **Per-instruction rewrites.** `int.add/sub/mul`, the bitwise/shift
//!    group, and integer comparisons whose operands are all provably
//!    `int<n>` slots or integer immediates become `AddInt`-style variants;
//!    `assign` into a local becomes `MoveSlot`/`LoadImm`; a branch on a
//!    statically bool slot becomes `BrBool`.
//! 2. **Superinstruction fusion.** A `CmpInt` immediately followed by a
//!    branch on its result fuses into `BrIfInt` — the dominant
//!    `cmp`+`br_if` pair of loop headers collapses to one dispatch. The
//!    fused instruction still writes the bool flag slot and the original
//!    branch stays at its pc (it remains reachable through explicit jump
//!    labels), so no liveness or CFG analysis is needed.
//!
//! This pass is also the feeder for the tier above it: under
//! `--tiering=threaded`, the adaptive tier re-runs it with observed types
//! and then hands the specialized body to [`crate::threaded::compile`],
//! which flattens it into pre-bound direct-threaded ops — so every rewrite
//! here (including the fused `BrIfInt` and its two-unit fuel charge) has a
//! 1:1 pc-preserving counterpart on the top rung.
//!
//! Type guards are deliberately conservative: anything touching a global,
//! an `any`-typed slot, or a `GlobalStore` wrapper keeps the generic path,
//! so exception, fiber and global-visibility semantics stay in one place.
//! Specialized instructions still *check* operand values at run time
//! (locals start as `Null`), raising the same catchable `TypeError` the
//! generic path would.
//!
//! The pass is switched by `BuildOptions::specialize` (default on) so the
//! A1 ablation can quantify it; see `bench/benches/dispatch.rs`.

use crate::bytecode::{CFunc, CInstr, COperand, CompiledProgram, IntBit, IntCmp, IntSrc};
use crate::ir::Opcode;
use crate::types::Type;
use crate::value::Value;

/// What the pass did, for build reporting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Generic int arithmetic/bitwise ops replaced by typed variants.
    pub arith: usize,
    /// Integer comparisons replaced by `CmpInt`.
    pub cmps: usize,
    /// `assign` instructions replaced by `MoveSlot`/`LoadImm`.
    pub moves: usize,
    /// Branches on statically bool slots replaced by `BrBool`.
    pub branches: usize,
    /// Compare-and-branch pairs fused into `BrIfInt`.
    pub fused: usize,
}

impl SpecStats {
    pub fn total(&self) -> usize {
        self.arith + self.cmps + self.moves + self.branches + self.fused
    }
}

/// Rewrites every function of `prog` in place.
pub fn specialize_program(prog: &mut CompiledProgram) -> SpecStats {
    let mut stats = SpecStats::default();
    for f in &mut prog.funcs {
        specialize_func(f, &mut stats);
    }
    stats
}

fn specialize_func(cf: &mut CFunc, stats: &mut SpecStats) {
    let types = cf.slot_types.clone();
    specialize_func_with_types(cf, &types, stats);
}

/// Same rewrite, but against an externally supplied slot-type vector. The
/// adaptive tier (see [`crate::tier`]) calls this with the *declared* types
/// refined by runtime observation — e.g. an `any` parameter that has only
/// ever carried `int<64>` — which is safe because specialized instructions
/// still check operand values at run time and raise the identical catchable
/// `TypeError` the generic path would.
pub(crate) fn specialize_func_with_types(
    cf: &mut CFunc,
    slot_types: &[Type],
    stats: &mut SpecStats,
) {
    let is_int: Vec<bool> = slot_types
        .iter()
        .map(|t| matches!(t, Type::Int(_)))
        .collect();
    let is_bool: Vec<bool> = slot_types.iter().map(|t| matches!(t, Type::Bool)).collect();

    // An operand usable by a typed int instruction: a slot statically
    // declared int, or an integer constant. Globals (shared, any write
    // path) and untyped slots stay generic.
    let int_src = |op: &COperand| -> Option<IntSrc> {
        match op {
            COperand::Slot(s) if is_int.get(*s as usize).copied().unwrap_or(false) => {
                Some(IntSrc::Slot(*s))
            }
            COperand::Value(Value::Int(i)) => Some(IntSrc::Imm(*i)),
            _ => None,
        }
    };

    // Phase 1: per-instruction rewrites.
    for instr in &mut cf.code {
        let replacement = match instr {
            CInstr::Op {
                opcode,
                target: Some(dst),
                args,
                ..
            } => {
                let dst = *dst;
                match (*opcode, args.len()) {
                    (Opcode::IntAdd | Opcode::IntSub | Opcode::IntMul, 2) => {
                        match (int_src(&args[0]), int_src(&args[1])) {
                            (Some(a), Some(b)) => {
                                stats.arith += 1;
                                Some(match *opcode {
                                    Opcode::IntAdd => CInstr::AddInt { dst, a, b },
                                    Opcode::IntSub => CInstr::SubInt { dst, a, b },
                                    _ => CInstr::MulInt { dst, a, b },
                                })
                            }
                            _ => None,
                        }
                    }
                    (
                        Opcode::IntAnd
                        | Opcode::IntOr
                        | Opcode::IntXor
                        | Opcode::IntShl
                        | Opcode::IntShr,
                        2,
                    ) => match (int_src(&args[0]), int_src(&args[1])) {
                        (Some(a), Some(b)) => {
                            let op = IntBit::from_opcode(*opcode).expect("bit opcode");
                            stats.arith += 1;
                            Some(CInstr::BitInt { op, dst, a, b })
                        }
                        _ => None,
                    },
                    (
                        Opcode::IntEq
                        | Opcode::IntLt
                        | Opcode::IntGt
                        | Opcode::IntLeq
                        | Opcode::IntGeq,
                        2,
                    ) => match (int_src(&args[0]), int_src(&args[1])) {
                        (Some(a), Some(b)) => {
                            let cmp = IntCmp::from_opcode(*opcode).expect("cmp opcode");
                            stats.cmps += 1;
                            Some(CInstr::CmpInt { cmp, dst, a, b })
                        }
                        _ => None,
                    },
                    // `assign` needs no type guard: it copies any value,
                    // exactly like the generic path.
                    (Opcode::Assign, 1) => match &args[0] {
                        COperand::Slot(src) => {
                            stats.moves += 1;
                            Some(CInstr::MoveSlot { dst, src: *src })
                        }
                        COperand::Value(v) => {
                            stats.moves += 1;
                            Some(CInstr::LoadImm { dst, v: v.clone() })
                        }
                        COperand::Global(_) => None,
                    },
                    _ => None,
                }
            }
            CInstr::Branch {
                cond: COperand::Slot(s),
                then_pc,
                else_pc,
            } if is_bool.get(*s as usize).copied().unwrap_or(false) => {
                stats.branches += 1;
                Some(CInstr::BrBool {
                    cond: *s,
                    then_pc: *then_pc,
                    else_pc: *else_pc,
                })
            }
            _ => None,
        };
        if let Some(r) = replacement {
            *instr = r;
        }
    }

    // Phase 2: fuse compare-and-branch superinstructions. The branch that
    // consumes the freshly computed flag directly follows the comparison
    // (lowering emits blocks linearly); only the comparison is replaced,
    // the branch itself stays put for explicit jump targets.
    for i in 0..cf.code.len().saturating_sub(1) {
        let CInstr::CmpInt { cmp, dst, a, b } = cf.code[i] else {
            continue;
        };
        let (then_pc, else_pc) = match cf.code[i + 1] {
            CInstr::BrBool {
                cond,
                then_pc,
                else_pc,
            } if cond == dst => (then_pc, else_pc),
            CInstr::Branch {
                cond: COperand::Slot(s),
                then_pc,
                else_pc,
            } if s == dst => (then_pc, else_pc),
            _ => continue,
        };
        cf.code[i] = CInstr::BrIfInt {
            cmp,
            a,
            b,
            dst,
            then_pc,
            else_pc,
        };
        stats.fused += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::link_with_priorities;
    use crate::parser::parse_module;

    fn specialized(src: &str) -> (CompiledProgram, SpecStats) {
        let m = parse_module(src).unwrap();
        let linked = link_with_priorities(vec![m]).unwrap();
        let mut prog = crate::bytecode::compile(&linked).unwrap();
        let stats = specialize_program(&mut prog);
        (prog, stats)
    }

    const LOOP: &str = r#"
module M
int<64> sum(int<64> n) {
    local int<64> i
    local int<64> acc
    local bool more
    i = assign 0
    acc = assign 0
loop:
    acc = int.add acc i
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
"#;

    #[test]
    fn int_loop_specializes_and_fuses() {
        let (prog, stats) = specialized(LOOP);
        let f = prog.func("M::sum").unwrap();
        assert!(
            f.code.iter().any(|i| matches!(i, CInstr::AddInt { .. })),
            "{:#?}",
            f.code
        );
        assert!(
            f.code.iter().any(|i| matches!(i, CInstr::BrIfInt { .. })),
            "cmp+branch must fuse: {:#?}",
            f.code
        );
        assert!(
            f.code.iter().any(|i| matches!(i, CInstr::LoadImm { .. })),
            "{:#?}",
            f.code
        );
        assert!(stats.arith >= 2 && stats.fused >= 1, "{stats:?}");
    }

    #[test]
    fn fused_branch_keeps_original_at_next_pc() {
        // The pc after a BrIfInt still holds the branch, so explicit jumps
        // to it keep working.
        let (prog, _) = specialized(LOOP);
        let f = prog.func("M::sum").unwrap();
        let i = f
            .code
            .iter()
            .position(|i| matches!(i, CInstr::BrIfInt { .. }))
            .unwrap();
        assert!(
            matches!(f.code[i + 1], CInstr::Branch { .. } | CInstr::BrBool { .. }),
            "{:?}",
            f.code[i + 1]
        );
    }

    #[test]
    fn untyped_slots_stay_generic() {
        let (prog, stats) = specialized(
            r#"
module M
int<64> f(any x) {
    local int<64> y
    y = int.add x 1
    return y
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        assert!(
            f.code.iter().any(|i| matches!(
                i,
                CInstr::Op {
                    opcode: Opcode::IntAdd,
                    ..
                }
            )),
            "any-typed operand must not specialize: {:#?}",
            f.code
        );
        assert_eq!(stats.arith, 0);
    }

    #[test]
    fn global_operands_and_targets_stay_generic() {
        let (prog, _) = specialized(
            r#"
module M
global int<64> g = 0
void f() {
    g = int.add g 1
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        // Global target: still the GlobalStore-wrapped generic op.
        assert!(
            f.code.iter().any(|i| matches!(
                i,
                CInstr::GlobalStore { inner, .. }
                    if matches!(&**inner, CInstr::Op { opcode: Opcode::IntAdd, .. })
            )),
            "{:#?}",
            f.code
        );
    }

    #[test]
    fn immediates_become_imm_operands() {
        let (prog, _) = specialized(
            r#"
module M
int<64> f(int<64> a) {
    local int<64> x
    x = int.add a 7
    return x
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        assert!(
            f.code.iter().any(|i| matches!(
                i,
                CInstr::AddInt {
                    b: IntSrc::Imm(7),
                    ..
                }
            )),
            "{:#?}",
            f.code
        );
    }

    #[test]
    fn specialized_render_matches_generic() {
        // Trace parity: the specialized instruction renders exactly like
        // the generic one it replaced.
        let m = parse_module(LOOP).unwrap();
        let linked = link_with_priorities(vec![m]).unwrap();
        let plain = crate::bytecode::compile(&linked).unwrap();
        let mut spec = plain.clone();
        specialize_program(&mut spec);
        let pf = plain.func("M::sum").unwrap();
        let sf = spec.func("M::sum").unwrap();
        for (p, s) in pf.code.iter().zip(sf.code.iter()) {
            if matches!(s, CInstr::BrIfInt { .. }) {
                // Fused: renders as "cmp ; branch"; the VM traces it as
                // the two original lines.
                let both = s.render();
                let (cmp_part, br_part) = both.split_once(" ; ").unwrap();
                assert_eq!(p.render(), cmp_part);
                assert!(br_part.starts_with("if s"), "{br_part}");
            } else {
                assert_eq!(p.render(), s.render());
            }
        }
    }
}
