//! The bytecode virtual machine — the "compiled" execution engine.
//!
//! The VM executes [`crate::bytecode::CompiledProgram`]s over an explicit,
//! heap-allocated frame stack. That explicit stack is what makes fibers
//! cheap (§3.2, §5 "Runtime Model"): suspending a computation detaches its
//! frame vector into a [`crate::fiber::Fiber`]; resuming re-attaches it and
//! re-executes the instruction that blocked. A `bytes` operation that hits
//! the frontier of un-frozen input raises `Hilti::WouldBlock`, which in
//! resumable mode suspends instead of unwinding — the mechanism behind
//! BinPAC++'s transparent incremental parsing.
//!
//! Exception handling follows §3.2: `exception.push_handler` installs a
//! (kind, handler-pc, binder) record in the current frame; a raised error
//! dispatches to the innermost matching handler, or unwinds frames until
//! one matches, or propagates out of the program.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use hilti_rt::bytestring::Bytes;
use hilti_rt::error::{ExceptionKind, RtError, RtResult};
use hilti_rt::file::LogFile;
use hilti_rt::limits::{AllocBudget, ResourceLimits};
use hilti_rt::overlay::{OverlayType, Unpacked};
use hilti_rt::telemetry::{EventSink, Telemetry};
use hilti_rt::time::Time;

use crate::bytecode::{CFunc, CInstr, COperand, CompiledProgram, IcEntry, IcSite, IntSrc};
use crate::ops::{self, ExecCtx, ExpiringHandle};
use crate::threaded::{TOp, TSrc, ThreadedFunc};
use crate::tier::{TierCode, TierConfig, TierEngine, TierPoll, TierReport, TieringMode};
use crate::value::{CallableVal, Value};

/// A host-registered function (the inverse direction of the C stubs:
/// HILTI code calling into the application, §3.4).
pub type HostFn = Rc<RefCell<dyn FnMut(&[Value]) -> RtResult<Value>>>;

/// Per-virtual-thread execution context: thread-local globals, output,
/// registered state containers, files, host functions, profiler (§5
/// "Runtime Model": "with each virtual thread HILTI's runtime associates a
/// context object that stores all its relevant state").
pub struct Context {
    /// The thread-local global array, laid out by the linker.
    pub globals: Vec<Value>,
    /// Program output (`Hilti::print`).
    pub out: Vec<String>,
    global_time: Time,
    expiring: Vec<ExpiringHandle>,
    files: HashMap<String, LogFile>,
    host_fns: HashMap<String, HostFn>,
    iosrc_factories: HashMap<String, Box<dyn FnMut() -> RtResult<Value>>>,
    /// name → (accumulated ns, open span start).
    profiler: HashMap<String, (u64, Option<Instant>)>,
    /// Named `profiler.count` counters, registry-backed so repeated counts
    /// of the same name never allocate.
    counters: hilti_rt::telemetry::Registry,
    /// The virtual thread this context belongs to.
    pub thread_id: u64,
    /// thread.schedule requests, drained by the thread runtime.
    pub scheduled: Vec<(u64, CallableVal)>,
    /// Struct/overlay tables shared with the program (`Rc`: spawning a
    /// virtual-thread context must not deep-copy whole type tables).
    pub struct_fields: Rc<HashMap<String, Vec<String>>>,
    pub overlays: Rc<HashMap<String, Rc<OverlayType>>>,
    /// When set, every executed instruction is appended to `trace_log`
    /// (`hiltic run --trace`; the paper's §3.1 debugging support).
    pub trace: bool,
    /// Captured execution trace, one rendered instruction per line.
    /// Capped at [`TRACE_CAP`] lines to bound memory on runaway programs.
    pub trace_log: Vec<String>,
    /// When set, the VM counts executed instructions per mnemonic
    /// (`hiltic run --stats`) — the data that drives which instructions
    /// deserve specialized variants.
    pub stats: bool,
    instr_mix: HashMap<&'static str, u64>,
    /// When set, both engines attribute every retired instruction (and its
    /// fuel) to the executing function and its opcode class
    /// (`hiltic run --profile`). Counting-based and deterministic, so
    /// interpreter and VM profiles are directly comparable. Disables the
    /// specialized fast tier so every instruction is observed.
    pub profile: bool,
    exec_profile: ExecProfile,
    /// Total fuel units successfully charged over this context's lifetime.
    /// With the uniform cost model (one unit per retired abstract
    /// instruction) this *is* the retired-instruction count; entry points
    /// read it as before/after deltas.
    fuel_spent: u64,
    /// Attached telemetry: run counters flushed at engine entry points
    /// plus the event sink for resource-limit and fiber events.
    telemetry: Option<RunTelemetry>,
    /// Resource-governance configuration (fuel, heap, call depth). The
    /// enforcement state lives in the fields below so the dispatch loop
    /// never re-derives it per instruction.
    limits: ResourceLimits,
    /// Remaining execution fuel; `u64::MAX` means "unlimited" (the
    /// decrement still happens but can never reach zero in practice).
    pub(crate) fuel_left: u64,
    /// Shared heap budget handed to runtime values created by this
    /// context (bytes, sets, maps). `None` when no limit is configured.
    heap: Option<AllocBudget>,
    /// Deterministic fault injection: when the countdown hits zero the
    /// next fuel charge raises `fault_error` instead. `u64::MAX` = disarmed.
    fault_countdown: u64,
    fault_error: Option<RtError>,
    /// Delivery-watchdog deadline (wall clock); `None` = disarmed. Unlike
    /// fuel this bounds *time*, so a wedged state that burns cheap
    /// instructions forever still trips `Hilti::ResourceExhausted`.
    watchdog_at: Option<std::time::Instant>,
    /// Fuel units charged since the last watchdog clock read: the clock is
    /// consulted only every [`WATCHDOG_CHECK_UNITS`] units, keeping the
    /// disarmed hot path to one predictable branch.
    watchdog_acc: u64,
    /// Profile-guided adaptive tiering (see [`crate::tier`]). `None` means
    /// the feature is not armed at all (the static-specialization default);
    /// per-context state keeps the parallel pipeline's shards lock-free.
    tier: Option<TierEngine>,
    /// Retired-instruction (fuel-unit) attribution per execution tier:
    /// generic dispatch, the specialized fast loop, and the direct-threaded
    /// executor. Always-on — counts are added in whole batches at the fast
    /// tiers' exit points — and surfaced by `hiltic run --stats`; kept out
    /// of telemetry snapshots so merged-snapshot byte-identity across
    /// worker counts is unaffected.
    tier_retired: TierMix,
}

/// Per-tier retired-instruction counts; see [`Context::tier_mix`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierMix {
    /// Retired on the generic decode-dispatch path (including all
    /// observational modes, which pin it).
    pub generic: u64,
    /// Retired in the specialized fast loop.
    pub specialized: u64,
    /// Retired by the direct-threaded executor.
    pub threaded: u64,
}

impl TierMix {
    pub fn total(&self) -> u64 {
        self.generic + self.specialized + self.threaded
    }
}

/// Upper bound on captured trace lines; tracing silently stops there.
pub const TRACE_CAP: usize = 1_000_000;

/// Fuel units between wall-clock reads when a watchdog deadline is armed.
/// Also caps the specialized fast tier's local fuel while armed, so the
/// inner loop always returns to a generic charge point (and its clock
/// check) within this many units — bounding detection latency to a few
/// thousand instructions even for programs the fast tier could otherwise
/// spin in forever.
pub(crate) const WATCHDOG_CHECK_UNITS: u64 = 4096;

impl Context {
    /// Creates a context for `prog`, with globals initialized.
    pub fn for_program(prog: &CompiledProgram) -> Context {
        let globals = prog
            .global_inits
            .iter()
            .map(|init| init.clone().unwrap_or(Value::Null))
            .collect();
        Context {
            globals,
            out: Vec::new(),
            global_time: Time::ZERO,
            expiring: Vec::new(),
            files: HashMap::new(),
            host_fns: HashMap::new(),
            iosrc_factories: HashMap::new(),
            profiler: HashMap::new(),
            counters: hilti_rt::telemetry::Registry::new(),
            thread_id: 0,
            scheduled: Vec::new(),
            struct_fields: Rc::clone(&prog.struct_fields),
            overlays: Rc::clone(&prog.overlays),
            trace: false,
            trace_log: Vec::new(),
            stats: false,
            instr_mix: HashMap::new(),
            profile: false,
            exec_profile: ExecProfile::default(),
            fuel_spent: 0,
            telemetry: None,
            limits: ResourceLimits::default(),
            fuel_left: u64::MAX,
            heap: None,
            fault_countdown: u64::MAX,
            fault_error: None,
            watchdog_at: None,
            watchdog_acc: 0,
            tier: None,
            tier_retired: TierMix::default(),
        }
    }

    /// How many instructions each execution tier has retired over this
    /// context's lifetime (`hiltic run --stats` reports this mix).
    pub fn tier_mix(&self) -> TierMix {
        self.tier_retired
    }

    /// Arms profile-guided adaptive tiering with default thresholds.
    /// `TieringMode::Off` still installs the engine (so the mode is
    /// reportable) but never tiers anything up — that is the measurement
    /// baseline of the generic dispatch path.
    pub fn set_tiering(&mut self, mode: TieringMode) {
        self.set_tiering_config(mode, TierConfig::default());
    }

    /// Arms adaptive tiering with explicit thresholds (tests use tiny ones
    /// so tier-up happens within small kernels).
    pub fn set_tiering_config(&mut self, mode: TieringMode, config: TierConfig) {
        self.tier = Some(TierEngine::new(mode, config));
    }

    /// The armed tiering mode, if any.
    pub fn tiering(&self) -> Option<TieringMode> {
        self.tier.as_ref().map(|e| e.mode())
    }

    /// Tier-up decisions and inline-cache states for introspection; empty
    /// when tiering is not armed.
    pub fn tier_report(&self) -> TierReport {
        self.tier.as_ref().map(|e| e.report()).unwrap_or_default()
    }

    /// Polls the tier engine for the function on top of the frame stack:
    /// counts one generic dispatch iteration against its hotness budget and
    /// returns the tiered body to execute, if there is one. Emits the
    /// `tier_up` telemetry event at the moment of tier-up.
    #[inline]
    pub(crate) fn tier_poll(&mut self, prog: &CompiledProgram, func: u32) -> Option<TierCode> {
        let eng = self.tier.as_mut()?;
        match eng.poll(prog, func) {
            TierPoll::Generic => None,
            TierPoll::Code(code) => Some(code),
            TierPoll::TieredNow { code, name } => {
                if let Some(t) = &self.telemetry {
                    t.tierups.inc();
                    t.sink.emit("tier_up", vec![("function", name.into())]);
                }
                Some(code)
            }
        }
    }

    /// The direct-threaded body of `func` if it is already tiered up in
    /// threaded mode — a plain lookup with no hotness side effects, used
    /// by the threaded executor to chain hot-to-hot calls in-loop.
    #[inline]
    fn tier_threaded(&self, func: u32) -> Option<Rc<ThreadedFunc>> {
        self.tier.as_ref().and_then(|e| e.threaded_code(func))
    }

    /// Feeds an invocation edge (with its argument values) to the tier
    /// engine's per-function counters and observed-type lattice.
    #[inline]
    pub(crate) fn tier_note_call(&mut self, nfuncs: usize, func: u32, args: &[Value]) {
        if let Some(eng) = self.tier.as_mut() {
            eng.note_call(nfuncs, func, args);
        }
    }

    #[inline]
    fn ic_hit(&self) {
        if let Some(t) = &self.telemetry {
            t.ic_hits.inc();
        }
    }

    #[inline]
    fn ic_miss(&self) {
        if let Some(t) = &self.telemetry {
            t.ic_misses.inc();
        }
    }

    /// Installs resource limits, resetting the fuel meter and creating a
    /// fresh heap budget. Call before `run`; limits apply from then on.
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.fuel_left = limits.fuel.unwrap_or(u64::MAX);
        self.heap = limits.max_heap_bytes.map(AllocBudget::with_limit);
        self.arm_deadline_after_ms(limits.deadline_ms);
        self.limits = limits;
    }

    /// Arms (or clears) the wall-clock watchdog without touching the fuel
    /// meter or heap budget: execution must reach its next exit within
    /// `ms` milliseconds from now or trip `Hilti::ResourceExhausted` at a
    /// fuel-charge point. Host applications re-arm this per delivery so a
    /// wedged parse bounds only its own delivery, never the pipeline.
    pub fn arm_deadline_after_ms(&mut self, ms: Option<u64>) {
        self.watchdog_at =
            ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        // Pre-load the accumulator so the first charge after arming reads
        // the clock: a zero deadline trips deterministically at the first
        // charge point, which the chaos tests rely on.
        self.watchdog_acc = WATCHDOG_CHECK_UNITS;
    }

    /// Whether a delivery deadline is armed (caps the specialized
    /// fast-dispatch tier's run length so charge points stay frequent).
    #[inline]
    pub(crate) fn deadline_armed(&self) -> bool {
        self.watchdog_at.is_some()
    }

    /// The configured resource limits.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    /// Remaining fuel, or `None` when execution is unmetered.
    pub fn fuel_remaining(&self) -> Option<u64> {
        self.limits.fuel.map(|_| self.fuel_left)
    }

    /// The heap budget values created by this context charge against.
    pub fn heap_budget(&self) -> Option<&AllocBudget> {
        self.heap.as_ref()
    }

    /// Arms deterministic fault injection: after `n` further fuel charges
    /// the engine raises `err` at the next charge point. Used by the chaos
    /// harness to exercise mid-execution failure paths reproducibly.
    pub fn inject_fault_after(&mut self, n: u64, err: RtError) {
        self.fault_countdown = n;
        self.fault_error = Some(err);
    }

    /// Whether a fault injection is armed (disables the specialized
    /// fast-dispatch tier so the trigger point is deterministic).
    #[inline]
    pub(crate) fn fault_armed(&self) -> bool {
        self.fault_countdown != u64::MAX
    }

    /// Charges `cost` units of fuel, raising `Hilti::ResourceExhausted`
    /// when the meter runs dry (the meter pins to zero, so a handler that
    /// catches the exception cannot outrun the limit) and honouring any
    /// armed fault injection.
    #[inline]
    pub(crate) fn charge_fuel(&mut self, cost: u64) -> RtResult<()> {
        if self.fault_countdown != u64::MAX {
            if self.fault_countdown == 0 {
                self.fault_countdown = u64::MAX;
                let err = self
                    .fault_error
                    .take()
                    .unwrap_or_else(|| RtError::runtime("injected fault"));
                return Err(err);
            }
            self.fault_countdown -= 1;
        }
        if self.fuel_left < cost {
            self.fuel_left = 0;
            if let Some(t) = &self.telemetry {
                t.sink
                    .emit("resource_limit", vec![("resource", "fuel".into())]);
            }
            return Err(RtError::resource_exhausted("execution fuel exhausted"));
        }
        self.fuel_left -= cost;
        self.fuel_spent = self.fuel_spent.wrapping_add(cost);
        if let Some(at) = self.watchdog_at {
            self.watchdog_acc = self.watchdog_acc.saturating_add(cost);
            if self.watchdog_acc >= WATCHDOG_CHECK_UNITS {
                self.watchdog_acc = 0;
                if std::time::Instant::now() >= at {
                    // Stays armed: a handler that catches the exception
                    // gets at most one more check window, not a reprieve.
                    if let Some(t) = &self.telemetry {
                        t.sink
                            .emit("resource_limit", vec![("resource", "deadline".into())]);
                    }
                    return Err(RtError::resource_exhausted("delivery deadline exceeded"));
                }
            }
        }
        Ok(())
    }

    /// Total fuel units charged so far — the retired-instruction count.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel_spent
    }

    /// Attaches a telemetry bundle: the engines intern their run counters
    /// once here and flush retired-instruction deltas at every entry-point
    /// exit; resource-limit trips and fiber suspend/resume go to the sink.
    pub fn set_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = Some(RunTelemetry {
            instructions: telemetry.counter("engine.instructions_retired"),
            runs: telemetry.counter("engine.runs"),
            tierups: telemetry.counter("engine.tierup"),
            ic_hits: telemetry.counter("ic.hit"),
            ic_misses: telemetry.counter("ic.miss"),
            sink: telemetry.sink.clone(),
        });
    }

    /// Detaches telemetry; the engines stop reporting.
    pub fn clear_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Credits the instructions retired since `spent_before` to the
    /// attached telemetry, if any. Called once per engine entry point.
    pub(crate) fn telemetry_flush_run(&mut self, spent_before: u64) {
        if let Some(t) = &self.telemetry {
            t.instructions
                .add(self.fuel_spent.wrapping_sub(spent_before));
            t.runs.inc();
        }
    }

    /// The attached event sink, if telemetry is on.
    pub(crate) fn telemetry_sink(&self) -> Option<&EventSink> {
        self.telemetry.as_ref().map(|t| &t.sink)
    }

    /// The execution profile collected while [`Context::profile`] was set.
    pub fn exec_profile(&self) -> &ExecProfile {
        &self.exec_profile
    }

    /// Takes and resets the execution profile.
    pub fn take_exec_profile(&mut self) -> ExecProfile {
        std::mem::take(&mut self.exec_profile)
    }

    #[inline]
    pub(crate) fn profile_record(&mut self, func: &str, class: &'static str, units: u64) {
        self.exec_profile.record(func, class, units);
    }

    /// Takes the accumulated execution trace (see [`Context::trace`]).
    pub fn take_trace(&mut self) -> Vec<String> {
        std::mem::take(&mut self.trace_log)
    }

    /// The instruction-mix histogram collected while [`Context::stats`] was
    /// set, sorted by descending count (ties by name).
    pub fn instr_mix(&self) -> Vec<(&'static str, u64)> {
        let mut mix: Vec<(&'static str, u64)> =
            self.instr_mix.iter().map(|(n, c)| (*n, *c)).collect();
        mix.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        mix
    }

    /// Takes and resets the instruction-mix histogram.
    pub fn take_instr_mix(&mut self) -> Vec<(&'static str, u64)> {
        let mix = self.instr_mix();
        self.instr_mix.clear();
        mix
    }

    #[inline]
    pub(crate) fn count_instr(&mut self, name: &'static str) {
        *self.instr_mix.entry(name).or_default() += 1;
    }

    /// Registers a host function callable from HILTI code.
    pub fn register_host_fn(
        &mut self,
        name: &str,
        f: impl FnMut(&[Value]) -> RtResult<Value> + 'static,
    ) {
        self.host_fns
            .insert(name.to_owned(), Rc::new(RefCell::new(f)));
    }

    /// Registers a named input source factory for `iosrc.open`.
    pub fn register_iosrc(
        &mut self,
        name: &str,
        factory: impl FnMut() -> RtResult<Value> + 'static,
    ) {
        self.iosrc_factories
            .insert(name.to_owned(), Box::new(factory));
    }

    /// Pre-registers a named output file (e.g. disk-backed); otherwise
    /// `file.open` creates in-memory logs.
    pub fn register_file(&mut self, file: LogFile) {
        self.files.insert(file.name().to_owned(), file);
    }

    /// Access to a named log file's captured lines.
    pub fn file(&self, name: &str) -> Option<&LogFile> {
        self.files.get(name)
    }

    /// Takes the accumulated program output.
    pub fn take_output(&mut self) -> Vec<String> {
        std::mem::take(&mut self.out)
    }

    /// Accumulated nanoseconds for a named profiler span.
    pub fn profile_ns(&self, name: &str) -> u64 {
        self.profiler.get(name).map(|(t, _)| *t).unwrap_or(0)
    }

    /// Named profiler counter value.
    pub fn profile_counter(&self, name: &str) -> u64 {
        self.counters.counter_value(name)
    }

    pub fn global_time(&self) -> Time {
        self.global_time
    }

    /// Looks up a registered host function (used by both engines).
    pub fn host_fn(&self, name: &str) -> Option<HostFn> {
        self.host_fns.get(name).cloned()
    }
}

/// Interned engine-level telemetry handles (see [`Context::set_telemetry`]).
struct RunTelemetry {
    instructions: hilti_rt::telemetry::Counter,
    runs: hilti_rt::telemetry::Counter,
    tierups: hilti_rt::telemetry::Counter,
    ic_hits: hilti_rt::telemetry::Counter,
    ic_misses: hilti_rt::telemetry::Counter,
    sink: EventSink,
}

/// The deterministic execution profile: retired instructions attributed to
/// the executing function and to opcode classes. Both engines feed this at
/// their (single) fuel-charge points, so with the uniform cost model the
/// instruction and fuel views coincide and interpreter/VM profiles of the
/// same program agree exactly.
///
/// Attribution is exclusive: an instruction is charged to the function
/// whose body retires it, so `call` instructions land on the caller and
/// the callee's body on the callee.
#[derive(Clone, Debug, Default)]
pub struct ExecProfile {
    per_fn: HashMap<String, u64>,
    per_class: HashMap<&'static str, u64>,
}

impl ExecProfile {
    #[inline]
    pub(crate) fn record(&mut self, func: &str, class: &'static str, units: u64) {
        if let Some(n) = self.per_fn.get_mut(func) {
            *n += units;
        } else {
            self.per_fn.insert(func.to_owned(), units);
        }
        *self.per_class.entry(class).or_default() += units;
    }

    /// Per-function retired instructions, sorted by name.
    pub fn functions(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = self.per_fn.iter().map(|(n, c)| (n.clone(), *c)).collect();
        v.sort();
        v
    }

    /// Per-opcode-class retired instructions, sorted by class name.
    pub fn classes(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.per_class.iter().map(|(n, c)| (*n, *c)).collect();
        v.sort();
        v
    }

    /// Total retired instructions (== total fuel units).
    pub fn total(&self) -> u64 {
        self.per_fn.values().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.per_fn.is_empty()
    }
}

/// Maps an opcode mnemonic to its profile class: the prefix before the
/// first `.` (`int.add` → `int`, `bytes.length` → `bytes`, plain `jump` →
/// `jump`). IR terminators and VM control transfers are recorded as
/// `control` so the class breakdown matches across engines.
pub(crate) fn opcode_class(mnemonic: &'static str) -> &'static str {
    match mnemonic.find('.') {
        Some(i) => &mnemonic[..i],
        None => mnemonic,
    }
}

/// Profile class of a bytecode instruction. Specialized variants report
/// the class of the IR instruction they replace, so `--no-specialize` and
/// specialized runs profile identically; `BrIfInt` is handled at the call
/// site (it retires one `int` and one `control` unit).
fn cinstr_class(instr: &CInstr) -> &'static str {
    match instr {
        CInstr::Op { opcode, .. } => opcode_class(opcode.mnemonic()),
        CInstr::Call { .. } | CInstr::CallHost { .. } => "call",
        CInstr::CallCallable { .. } => "callable",
        CInstr::RunHook { .. } => "hook",
        CInstr::New { .. } => "new",
        CInstr::Jump(_) | CInstr::Branch { .. } | CInstr::BrBool { .. } | CInstr::Return(_) => {
            "control"
        }
        CInstr::PushHandler { .. } | CInstr::PopHandler => "exception",
        CInstr::Yield => "yield",
        CInstr::GlobalStore { inner, .. } => cinstr_class(inner),
        CInstr::AddInt { .. }
        | CInstr::SubInt { .. }
        | CInstr::MulInt { .. }
        | CInstr::BitInt { .. }
        | CInstr::CmpInt { .. }
        | CInstr::BrIfInt { .. } => "int",
        CInstr::MoveSlot { .. } | CInstr::LoadImm { .. } => "assign",
        // Observational modes pin execution to the generic tier, so these
        // never appear in a profile; classes mirror the generic ops anyway.
        CInstr::StructGetIC { .. } | CInstr::StructSetIC { .. } => "struct",
        CInstr::OverlayGetIC { .. } => "overlay",
        CInstr::CallCallableIC { .. } => "callable",
    }
}

impl ExecCtx for Context {
    fn output(&mut self, line: String) {
        self.out.push(line);
    }

    fn global_time(&self) -> Time {
        self.global_time
    }

    fn set_global_time(&mut self, t: Time) {
        if t > self.global_time {
            self.global_time = t;
        }
    }

    fn register_expiring(&mut self, handle: ExpiringHandle) {
        self.expiring.push(handle);
    }

    fn advance_expiring(&mut self, t: Time) {
        self.expiring.retain(|h| match h {
            ExpiringHandle::Set(s) => Rc::strong_count(s) > 1,
            ExpiringHandle::Map(m) => Rc::strong_count(m) > 1,
        });
        for h in &self.expiring {
            match h {
                ExpiringHandle::Set(s) => {
                    s.borrow_mut().advance(t);
                }
                ExpiringHandle::Map(m) => {
                    m.borrow_mut().advance(t);
                }
            }
        }
    }

    fn struct_fields(&self, type_name: &str) -> Option<Vec<String>> {
        self.struct_fields.get(type_name).cloned()
    }

    fn overlay(&self, type_name: &str) -> Option<Rc<OverlayType>> {
        self.overlays.get(type_name).cloned()
    }

    fn open_file(&mut self, name: &str) -> LogFile {
        self.files
            .entry(name.to_owned())
            .or_insert_with(|| LogFile::in_memory(name))
            .clone()
    }

    fn open_iosrc(&mut self, name: &str) -> RtResult<Value> {
        match self.iosrc_factories.get_mut(name) {
            Some(f) => f(),
            None => Err(RtError::io(format!("no registered input source {name:?}"))),
        }
    }

    fn schedule_thread(&mut self, tid: u64, callable: CallableVal) -> RtResult<()> {
        self.scheduled.push((tid, callable));
        Ok(())
    }

    fn thread_id(&self) -> u64 {
        self.thread_id
    }

    fn profiler_start(&mut self, name: &str) {
        let e = self.profiler.entry(name.to_owned()).or_insert((0, None));
        if e.1.is_none() {
            e.1 = Some(Instant::now());
        }
    }

    fn profiler_stop(&mut self, name: &str) {
        if let Some(e) = self.profiler.get_mut(name) {
            if let Some(start) = e.1.take() {
                e.0 += start.elapsed().as_nanos() as u64;
            }
        }
    }

    fn profiler_count(&mut self, name: &str, n: u64) {
        self.counters.counter(name).add(n);
    }

    fn profiler_time(&self, name: &str) -> u64 {
        self.profile_ns(name)
    }

    fn alloc_budget(&self) -> Option<AllocBudget> {
        self.heap.clone()
    }
}

/// An installed exception handler.
#[derive(Clone, Debug)]
pub struct Handler {
    pub pc: u32,
    pub kind: Rc<str>,
    pub binder: Option<u16>,
}

/// One activation record.
#[derive(Clone, Debug)]
pub struct Frame {
    pub func: u32,
    pub pc: u32,
    pub slots: Vec<Value>,
    pub handlers: Vec<Handler>,
    /// Where the caller wants this frame's return value.
    pub ret_slot: Option<u16>,
    pub ret_global: Option<u32>,
}

impl Frame {
    /// Builds a fresh activation record (public for the host API).
    pub fn new_public(prog: &CompiledProgram, func: u32, args: Vec<Value>) -> Frame {
        Frame::new(prog, func, args)
    }

    fn new(prog: &CompiledProgram, func: u32, args: Vec<Value>) -> Frame {
        Frame::new_pooled(prog, func, args, &mut Vec::new())
    }

    /// Builds an activation record, reusing a slot vector from `pool` when
    /// one is available (calls are the hottest allocation site in compiled
    /// code; recycling frames is the analog of the paper's custom
    /// free-list for fiber stacks, §5).
    fn new_pooled(
        prog: &CompiledProgram,
        func: u32,
        mut args: Vec<Value>,
        pool: &mut Vec<Vec<Value>>,
    ) -> Frame {
        Frame::new_from_buf(prog, func, &mut args, pool)
    }

    /// Like [`Frame::new_pooled`], but drains the arguments out of a caller
    /// owned buffer so the dispatch loop's argument vector is reused across
    /// calls instead of being reallocated per call.
    fn new_from_buf(
        prog: &CompiledProgram,
        func: u32,
        args: &mut Vec<Value>,
        pool: &mut Vec<Vec<Value>>,
    ) -> Frame {
        let cf = &prog.funcs[func as usize];
        let n = cf.n_slots as usize;
        let mut slots = match pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(n, Value::Null);
                v
            }
            None => vec![Value::Null; n],
        };
        for (i, a) in args.drain(..).enumerate().take(cf.n_params as usize) {
            slots[i] = a;
        }
        Frame {
            func,
            pc: 0,
            slots,
            handlers: Vec::new(),
            ret_slot: None,
            ret_global: None,
        }
    }
}

/// How an execution ended.
pub enum Outcome {
    /// The outermost function returned.
    Done(Value),
    /// Execution suspended (yield, or WouldBlock in resumable mode); the
    /// frames can be resumed later.
    Suspended(Vec<Frame>),
}

/// Executes `func` with `args` to completion (non-resumable).
pub fn call(
    prog: &CompiledProgram,
    ctx: &mut Context,
    func: &str,
    args: &[Value],
) -> RtResult<Value> {
    let fi = *prog
        .func_index
        .get(func)
        .ok_or_else(|| RtError::value(format!("unknown function {func}")))?;
    ctx.tier_note_call(prog.funcs.len(), fi, args);
    let frames = vec![Frame::new(prog, fi, args.to_vec())];
    let spent_before = ctx.fuel_spent;
    let result = run(prog, ctx, frames, false);
    ctx.telemetry_flush_run(spent_before);
    match result? {
        Outcome::Done(v) => Ok(v),
        Outcome::Suspended(_) => Err(RtError::runtime(format!(
            "{func} suspended outside a fiber"
        ))),
    }
}

/// Starts `func` resumably; see [`crate::fiber::Fiber`] for the wrapper.
pub fn start_resumable(
    prog: &CompiledProgram,
    ctx: &mut Context,
    func: &str,
    args: &[Value],
) -> RtResult<Outcome> {
    let fi = *prog
        .func_index
        .get(func)
        .ok_or_else(|| RtError::value(format!("unknown function {func}")))?;
    ctx.tier_note_call(prog.funcs.len(), fi, args);
    let frames = vec![Frame::new(prog, fi, args.to_vec())];
    let spent_before = ctx.fuel_spent;
    let result = run(prog, ctx, frames, true);
    ctx.telemetry_flush_run(spent_before);
    result
}

/// Resumes suspended frames.
pub fn resume(prog: &CompiledProgram, ctx: &mut Context, frames: Vec<Frame>) -> RtResult<Outcome> {
    let spent_before = ctx.fuel_spent;
    let result = run(prog, ctx, frames, true);
    ctx.telemetry_flush_run(spent_before);
    result
}

fn operand_value(ctx: &Context, frame: &Frame, op: &COperand) -> Value {
    match op {
        COperand::Slot(s) => frame.slots[*s as usize].clone(),
        COperand::Global(g) => ctx.globals[*g as usize].clone(),
        COperand::Value(v) => v.clone(),
    }
}

/// Reads a specialized integer operand without cloning. The slot is
/// statically typed int, but the value is still checked (locals start as
/// Null) so a mistyped read raises the same catchable TypeError as the
/// generic path.
#[inline(always)]
fn int_src(frame: &Frame, s: IntSrc) -> RtResult<i64> {
    match s {
        IntSrc::Imm(i) => Ok(i),
        IntSrc::Slot(s) => frame.slots[s as usize].as_int(),
    }
}

/// Lean operand reader for the threaded executor: the `Option` return
/// stays in registers, where the generic `RtResult` moves a formatted
/// error through memory on every call. `None` (wrong type, bad slot)
/// exits to the generic loop, which re-executes the op and owns the
/// error message.
#[inline(always)]
fn int_operand(frame: &Frame, s: IntSrc) -> Option<i64> {
    match s {
        IntSrc::Imm(i) => Some(i),
        IntSrc::Slot(s) => match frame.slots.get(s as usize) {
            Some(Value::Int(i)) => Some(*i),
            _ => None,
        },
    }
}

/// The main dispatch loop.
pub fn run(
    prog: &CompiledProgram,
    ctx: &mut Context,
    mut frames: Vec<Frame>,
    resumable: bool,
) -> RtResult<Outcome> {
    // Re-used argument buffer to avoid per-instruction allocation, and a
    // free list recycling frame slot vectors across calls.
    let mut argbuf: Vec<Value> = Vec::with_capacity(8);
    let mut frame_pool: Vec<Vec<Value>> = Vec::new();
    // One-shot escape hatch from the threaded executor: when it exits
    // `Stuck`, exactly one instruction runs on the generic path below
    // (charging, raising, or IC-resolving it) before re-entering.
    let mut skip_threaded = false;
    'dispatch: loop {
        let func = match frames.last() {
            Some(f) => f.func,
            None => return Ok(Outcome::Done(Value::Null)),
        };
        // Observational modes (trace/stats/profile, armed fault injection)
        // pin execution to the generic tier: the adaptive tier is skipped
        // entirely so every instruction is observed one by one and the
        // outputs stay comparable across builds.
        let observing = ctx.trace || ctx.stats || ctx.profile || ctx.fault_armed();
        // Adaptive tiering: one poll per dispatch iteration counts against
        // the current function's hotness budget; once it tiers up, the
        // re-lowered body (same pcs, same fuel costs — see `crate::tier`)
        // replaces the generic one from this iteration on.
        let tiered: Option<TierCode> = if observing {
            None
        } else {
            ctx.tier_poll(prog, func)
        };

        // Threaded tier: a function promoted under `--tiering=threaded`
        // runs its pre-bound ops in `run_threaded` until something needs
        // the generic loop (deopt site, IC miss, error, fuel window), then
        // resumes here at the exact same pc — the tiered bytecode below is
        // its deopt target, one op per pc.
        if !std::mem::take(&mut skip_threaded) {
            if let Some(tf) = tiered.as_ref().and_then(|tc| tc.threaded.clone()) {
                match run_threaded(prog, ctx, &mut frames, tf, &mut argbuf, &mut frame_pool) {
                    TExit::Frame => {}
                    TExit::Stuck => skip_threaded = true,
                }
                continue 'dispatch;
            }
        }

        let frame = frames.last_mut().expect("frame exists");
        let cf: &CFunc = match &tiered {
            Some(code) => &code.cfunc,
            None => &prog.funcs[frame.func as usize],
        };
        // When a threaded body exists, the specialized inner loop stays
        // off: the one generic instruction between executor sessions is
        // what guarantees a charge point (and watchdog clock read) every
        // `WATCHDOG_CHECK_UNITS`, and what resolves the op the executor
        // deopted on.
        let has_threaded = tiered.as_ref().is_some_and(|tc| tc.threaded.is_some());

        // Fast tier: consecutive specialized instructions execute in a
        // tight inner loop that keeps the frame borrow, skipping the
        // per-instruction re-dispatch overhead of the generic path
        // (trace/stats/profile builds skip this so every instruction is
        // still observed one by one; so do armed fault injections, which
        // must trigger at a deterministic charge point on the generic
        // path).
        // On a type error the loop breaks *without* advancing pc or
        // charging fuel; the generic body re-executes the pure instruction
        // and raises — or charges — through the one exception path. Fuel
        // lives in a local for the duration of the loop: each arm checks
        // *before* executing and decrements only on success, so the meter
        // can never be outrun and never double-charges.
        if !observing && !has_threaded {
            let fuel_start = ctx.fuel_left;
            // An armed watchdog needs periodic charge points: cap the
            // local countdown so the inner loop falls back to the generic
            // path (and its amortized clock check) within a bounded number
            // of instructions, even for loops the fast tier handles fully.
            let clamp = if ctx.deadline_armed() {
                fuel_start.min(WATCHDOG_CHECK_UNITS)
            } else {
                fuel_start
            };
            let mut fuel = clamp;
            while let Some(instr) = cf.code.get(frame.pc as usize) {
                match instr {
                    CInstr::AddInt { dst, a, b } => {
                        if fuel < 1 {
                            break;
                        }
                        match (int_src(frame, *a), int_src(frame, *b)) {
                            (Ok(x), Ok(y)) => {
                                frame.slots[*dst as usize] = Value::Int(x.wrapping_add(y));
                                frame.pc += 1;
                                fuel -= 1;
                            }
                            _ => break,
                        }
                    }
                    CInstr::SubInt { dst, a, b } => {
                        if fuel < 1 {
                            break;
                        }
                        match (int_src(frame, *a), int_src(frame, *b)) {
                            (Ok(x), Ok(y)) => {
                                frame.slots[*dst as usize] = Value::Int(x.wrapping_sub(y));
                                frame.pc += 1;
                                fuel -= 1;
                            }
                            _ => break,
                        }
                    }
                    CInstr::MulInt { dst, a, b } => {
                        if fuel < 1 {
                            break;
                        }
                        match (int_src(frame, *a), int_src(frame, *b)) {
                            (Ok(x), Ok(y)) => {
                                frame.slots[*dst as usize] = Value::Int(x.wrapping_mul(y));
                                frame.pc += 1;
                                fuel -= 1;
                            }
                            _ => break,
                        }
                    }
                    CInstr::BitInt { op, dst, a, b } => {
                        if fuel < 1 {
                            break;
                        }
                        match (int_src(frame, *a), int_src(frame, *b)) {
                            (Ok(x), Ok(y)) => {
                                frame.slots[*dst as usize] = Value::Int(op.apply(x, y));
                                frame.pc += 1;
                                fuel -= 1;
                            }
                            _ => break,
                        }
                    }
                    CInstr::CmpInt { cmp, dst, a, b } => {
                        if fuel < 1 {
                            break;
                        }
                        match (int_src(frame, *a), int_src(frame, *b)) {
                            (Ok(x), Ok(y)) => {
                                frame.slots[*dst as usize] = Value::Bool(cmp.apply(x, y));
                                frame.pc += 1;
                                fuel -= 1;
                            }
                            _ => break,
                        }
                    }
                    CInstr::BrIfInt {
                        cmp,
                        a,
                        b,
                        dst,
                        then_pc,
                        else_pc,
                    } => {
                        // Fused compare + branch: costs its two
                        // constituent instructions.
                        if fuel < 2 {
                            break;
                        }
                        match (int_src(frame, *a), int_src(frame, *b)) {
                            (Ok(x), Ok(y)) => {
                                let taken = cmp.apply(x, y);
                                frame.slots[*dst as usize] = Value::Bool(taken);
                                frame.pc = if taken { *then_pc } else { *else_pc };
                                fuel -= 2;
                            }
                            _ => break,
                        }
                    }
                    CInstr::MoveSlot { dst, src } => {
                        if fuel < 1 {
                            break;
                        }
                        frame.slots[*dst as usize] = frame.slots[*src as usize].clone();
                        frame.pc += 1;
                        fuel -= 1;
                    }
                    CInstr::LoadImm { dst, v } => {
                        if fuel < 1 {
                            break;
                        }
                        frame.slots[*dst as usize] = v.clone();
                        frame.pc += 1;
                        fuel -= 1;
                    }
                    CInstr::BrBool {
                        cond,
                        then_pc,
                        else_pc,
                    } => {
                        if fuel < 1 {
                            break;
                        }
                        match frame.slots[*cond as usize].as_bool() {
                            Ok(true) => {
                                frame.pc = *then_pc;
                                fuel -= 1;
                            }
                            Ok(false) => {
                                frame.pc = *else_pc;
                                fuel -= 1;
                            }
                            Err(_) => break,
                        }
                    }
                    CInstr::Jump(pc) => {
                        if fuel < 1 {
                            break;
                        }
                        frame.pc = *pc;
                        fuel -= 1;
                    }
                    _ => break,
                }
            }
            // The loop only ever decrements, so the delta is exact.
            let used = clamp - fuel;
            ctx.fuel_spent = ctx.fuel_spent.wrapping_add(used);
            ctx.fuel_left = fuel_start - used;
            if ctx.watchdog_at.is_some() {
                // Count the fast tier's work toward the next clock read;
                // the check itself happens at the next generic charge.
                ctx.watchdog_acc = ctx.watchdog_acc.saturating_add(used);
            }
            ctx.tier_retired.specialized += used;
        }

        let Some(instr) = cf.code.get(frame.pc as usize) else {
            return Err(RtError::runtime(format!(
                "{}: pc {} out of range",
                cf.name, frame.pc
            )));
        };

        if ctx.trace && ctx.trace_log.len() < TRACE_CAP {
            // Mnemonic-based rendering keeps traces diffable against an
            // unspecialized build. A fused compare-and-branch is traced as
            // its two constituent instructions for the same reason.
            if let CInstr::BrIfInt {
                cmp,
                a,
                b,
                dst,
                then_pc,
                else_pc,
            } = instr
            {
                ctx.trace_log.push(format!(
                    "{}@{}: s{dst} = {} {} {}",
                    cf.name,
                    frame.pc,
                    cmp.mnemonic(),
                    a.render(),
                    b.render()
                ));
                if ctx.trace_log.len() < TRACE_CAP {
                    ctx.trace_log.push(format!(
                        "{}@{}: if s{dst} goto @{then_pc} else @{else_pc}",
                        cf.name,
                        frame.pc + 1
                    ));
                }
            } else {
                ctx.trace_log
                    .push(format!("{}@{}: {}", cf.name, frame.pc, instr.render()));
            }
        }
        if ctx.stats {
            ctx.count_instr(instr.stat_name());
        }

        // Unwrap GlobalStore: execute the inner instruction; the global is
        // written either immediately (data ops) or on callee return.
        let (instr, store_global) = match instr {
            CInstr::GlobalStore { global, inner } => (&**inner, Some(*global)),
            other => (other, None),
        };

        macro_rules! raise {
            ($err:expr) => {{
                let err: RtError = $err;
                if resumable && err.kind == ExceptionKind::WouldBlock {
                    // Suspend *at* this instruction; resume retries it.
                    return Ok(Outcome::Suspended(frames));
                }
                match dispatch_exception(&mut frames, err)? {
                    () => continue 'dispatch,
                }
            }};
        }

        // Fuel parity with the tree-walking interpreter: one unit per IR
        // body instruction plus one per block terminator. Lowering emits
        // exactly one CInstr for each of those, so every instruction here
        // costs 1 — except the fused compare-and-branch, which covers a
        // body instruction *and* a terminator. Instructions that bailed
        // out of the fast tier above were not charged there, so this is
        // the single charge point.
        let fuel_cost = match instr {
            CInstr::BrIfInt { .. } => 2,
            _ => 1,
        };
        if let Err(e) = ctx.charge_fuel(fuel_cost) {
            raise!(e);
        }
        ctx.tier_retired.generic += fuel_cost;
        if ctx.profile {
            // Charged to the function retiring the instruction; the fused
            // compare-and-branch splits into its two constituent units so
            // specialized and interpreted class breakdowns agree.
            if matches!(instr, CInstr::BrIfInt { .. }) {
                ctx.profile_record(&cf.name, "int", 1);
                ctx.profile_record(&cf.name, "control", 1);
            } else {
                ctx.profile_record(&cf.name, cinstr_class(instr), 1);
            }
        }

        match instr {
            CInstr::Op {
                opcode,
                target,
                args,
                idents,
            } => {
                argbuf.clear();
                for a in args.iter() {
                    argbuf.push(operand_value(ctx, frame, a));
                }
                match ops::eval(*opcode, &argbuf, idents, ctx) {
                    Ok(evaluated) => {
                        let frame = frames.last_mut().expect("frame exists");
                        if let Some(t) = target {
                            frame.slots[*t as usize] = evaluated.value.clone();
                        }
                        if let Some(g) = store_global {
                            ctx.globals[g as usize] = evaluated.value;
                        }
                        frame.pc += 1;
                        // Fire timer callables synchronously (nested runs).
                        for fired in evaluated.fired {
                            run_callable(prog, ctx, &fired, &[])?;
                        }
                    }
                    Err(e) => raise!(e),
                }
            }
            CInstr::New { target, ty, args } => {
                argbuf.clear();
                for a in args.iter() {
                    argbuf.push(operand_value(ctx, frame, a));
                }
                match ops::instantiate(ty, &argbuf, ctx) {
                    Ok(v) => {
                        let frame = frames.last_mut().expect("frame exists");
                        frame.slots[*target as usize] = v.clone();
                        if let Some(g) = store_global {
                            ctx.globals[g as usize] = v;
                        }
                        frame.pc += 1;
                    }
                    Err(e) => raise!(e),
                }
            }
            CInstr::Call { target, func, args } => {
                if let Some(max) = ctx.limits.max_call_depth {
                    if frames.len() >= max as usize {
                        raise!(RtError::resource_exhausted("call depth limit exceeded"));
                    }
                }
                let frame = frames.last_mut().expect("frame exists");
                argbuf.clear();
                for a in args.iter() {
                    argbuf.push(operand_value(ctx, frame, a));
                }
                frame.pc += 1;
                ctx.tier_note_call(prog.funcs.len(), *func, &argbuf);
                let mut callee = Frame::new_from_buf(prog, *func, &mut argbuf, &mut frame_pool);
                callee.ret_slot = *target;
                callee.ret_global = store_global;
                frames.push(callee);
            }
            CInstr::CallHost { target, name, args } => {
                argbuf.clear();
                for a in args.iter() {
                    argbuf.push(operand_value(ctx, frame, a));
                }
                match call_host(prog, ctx, name, &argbuf) {
                    Ok(v) => {
                        let frame = frames.last_mut().expect("frame exists");
                        if let Some(t) = target {
                            frame.slots[*t as usize] = v.clone();
                        }
                        if let Some(g) = store_global {
                            ctx.globals[g as usize] = v;
                        }
                        frame.pc += 1;
                    }
                    Err(e) => raise!(e),
                }
            }
            CInstr::RunHook { hook, args } => {
                argbuf.clear();
                for a in args.iter() {
                    argbuf.push(operand_value(ctx, frame, a));
                }
                frame.pc += 1;
                let bodies = prog.hooks[*hook as usize].clone();
                let hook_args = std::mem::take(&mut argbuf);
                argbuf = Vec::with_capacity(8);
                for body in bodies {
                    // Hook bodies run synchronously, in priority order
                    // (nested execution; hooks do not suspend).
                    let sub = vec![Frame::new(prog, body, hook_args.clone())];
                    match run(prog, ctx, sub, false)? {
                        Outcome::Done(_) => {}
                        Outcome::Suspended(_) => unreachable!("non-resumable"),
                    }
                }
            }
            CInstr::CallCallable {
                target,
                callable,
                args,
            } => {
                if let Some(max) = ctx.limits.max_call_depth {
                    if frames.len() >= max as usize {
                        raise!(RtError::resource_exhausted("call depth limit exceeded"));
                    }
                }
                let frame = frames.last_mut().expect("frame exists");
                let cval = operand_value(ctx, frame, callable);
                let Value::Callable(c) = cval else {
                    raise!(RtError::type_error(format!(
                        "callable.call on {}",
                        cval.type_name()
                    )));
                };
                argbuf.clear();
                for a in args.iter() {
                    argbuf.push(operand_value(ctx, frame, a));
                }
                let Some(fi) = prog.func_index.get(&*c.func).copied() else {
                    // Host-function callable.
                    match call_host(prog, ctx, &c.func, &{
                        let mut full = c.bound.clone();
                        full.extend(argbuf.iter().cloned());
                        full
                    }) {
                        Ok(v) => {
                            let frame = frames.last_mut().expect("frame exists");
                            if let Some(t) = target {
                                frame.slots[*t as usize] = v.clone();
                            }
                            if let Some(g) = store_global {
                                ctx.globals[g as usize] = v;
                            }
                            frame.pc += 1;
                            continue 'dispatch;
                        }
                        Err(e) => raise!(e),
                    }
                };
                frame.pc += 1;
                let mut full_args = c.bound.clone();
                full_args.append(&mut argbuf);
                ctx.tier_note_call(prog.funcs.len(), fi, &full_args);
                let mut callee = Frame::new_pooled(prog, fi, full_args, &mut frame_pool);
                callee.ret_slot = *target;
                callee.ret_global = store_global;
                frames.push(callee);
            }
            // --- inline-cache tier: guard, generic fallback on miss -----
            // Semantics (including error kinds, messages, and evaluation
            // order) replicate the generic `ops::eval` arms exactly; only
            // the *resolution* — type-name → field index, overlay name →
            // descriptor, callee name → function index — is cached.
            CInstr::StructGetIC {
                target,
                obj,
                field,
                ic,
            } => {
                let v = operand_value(ctx, frame, obj);
                match struct_get_ic(ctx, &v, field, ic) {
                    Ok(val) => {
                        let frame = frames.last_mut().expect("frame exists");
                        if let Some(t) = target {
                            frame.slots[*t as usize] = val.clone();
                        }
                        if let Some(g) = store_global {
                            ctx.globals[g as usize] = val;
                        }
                        frame.pc += 1;
                    }
                    Err(e) => raise!(e),
                }
            }
            CInstr::StructSetIC {
                target,
                obj,
                value,
                field,
                ic,
            } => {
                let v = operand_value(ctx, frame, obj);
                let val = operand_value(ctx, frame, value);
                match struct_set_ic(ctx, &v, val, field, ic) {
                    Ok(()) => {
                        let frame = frames.last_mut().expect("frame exists");
                        // Generic struct.set evaluates to Null.
                        if let Some(t) = target {
                            frame.slots[*t as usize] = Value::Null;
                        }
                        if let Some(g) = store_global {
                            ctx.globals[g as usize] = Value::Null;
                        }
                        frame.pc += 1;
                    }
                    Err(e) => raise!(e),
                }
            }
            CInstr::OverlayGetIC {
                target,
                args,
                oname,
                field,
                ic,
            } => {
                argbuf.clear();
                for a in args.iter() {
                    argbuf.push(operand_value(ctx, frame, a));
                }
                match overlay_get_ic(ctx, &argbuf, oname, field, ic) {
                    Ok(val) => {
                        let frame = frames.last_mut().expect("frame exists");
                        if let Some(t) = target {
                            frame.slots[*t as usize] = val.clone();
                        }
                        if let Some(g) = store_global {
                            ctx.globals[g as usize] = val;
                        }
                        frame.pc += 1;
                    }
                    Err(e) => raise!(e),
                }
            }
            CInstr::CallCallableIC {
                target,
                callable,
                args,
                ic,
            } => {
                if let Some(max) = ctx.limits.max_call_depth {
                    if frames.len() >= max as usize {
                        raise!(RtError::resource_exhausted("call depth limit exceeded"));
                    }
                }
                let frame = frames.last_mut().expect("frame exists");
                let cval = operand_value(ctx, frame, callable);
                let Value::Callable(c) = cval else {
                    raise!(RtError::type_error(format!(
                        "callable.call on {}",
                        cval.type_name()
                    )));
                };
                argbuf.clear();
                for a in args.iter() {
                    argbuf.push(operand_value(ctx, frame, a));
                }
                let Some(fi) = callable_ic_resolve(ctx, prog, &c.func, ic) else {
                    // Host-function callable (or unknown name, which
                    // `call_host` reports exactly like the generic arm).
                    match call_host(prog, ctx, &c.func, &{
                        let mut full = c.bound.clone();
                        full.extend(argbuf.iter().cloned());
                        full
                    }) {
                        Ok(v) => {
                            let frame = frames.last_mut().expect("frame exists");
                            if let Some(t) = target {
                                frame.slots[*t as usize] = v.clone();
                            }
                            if let Some(g) = store_global {
                                ctx.globals[g as usize] = v;
                            }
                            frame.pc += 1;
                            continue 'dispatch;
                        }
                        Err(e) => raise!(e),
                    }
                };
                frame.pc += 1;
                let mut full_args = c.bound.clone();
                full_args.append(&mut argbuf);
                ctx.tier_note_call(prog.funcs.len(), fi, &full_args);
                let mut callee = Frame::new_pooled(prog, fi, full_args, &mut frame_pool);
                callee.ret_slot = *target;
                callee.ret_global = store_global;
                frames.push(callee);
            }
            // --- specialized tier: clone-free, inline on frame.slots ----
            CInstr::AddInt { dst, a, b } => match (int_src(frame, *a), int_src(frame, *b)) {
                (Ok(x), Ok(y)) => {
                    frame.slots[*dst as usize] = Value::Int(x.wrapping_add(y));
                    frame.pc += 1;
                }
                (Err(e), _) | (_, Err(e)) => raise!(e),
            },
            CInstr::SubInt { dst, a, b } => match (int_src(frame, *a), int_src(frame, *b)) {
                (Ok(x), Ok(y)) => {
                    frame.slots[*dst as usize] = Value::Int(x.wrapping_sub(y));
                    frame.pc += 1;
                }
                (Err(e), _) | (_, Err(e)) => raise!(e),
            },
            CInstr::MulInt { dst, a, b } => match (int_src(frame, *a), int_src(frame, *b)) {
                (Ok(x), Ok(y)) => {
                    frame.slots[*dst as usize] = Value::Int(x.wrapping_mul(y));
                    frame.pc += 1;
                }
                (Err(e), _) | (_, Err(e)) => raise!(e),
            },
            CInstr::BitInt { op, dst, a, b } => match (int_src(frame, *a), int_src(frame, *b)) {
                (Ok(x), Ok(y)) => {
                    frame.slots[*dst as usize] = Value::Int(op.apply(x, y));
                    frame.pc += 1;
                }
                (Err(e), _) | (_, Err(e)) => raise!(e),
            },
            CInstr::CmpInt { cmp, dst, a, b } => match (int_src(frame, *a), int_src(frame, *b)) {
                (Ok(x), Ok(y)) => {
                    frame.slots[*dst as usize] = Value::Bool(cmp.apply(x, y));
                    frame.pc += 1;
                }
                (Err(e), _) | (_, Err(e)) => raise!(e),
            },
            CInstr::BrIfInt {
                cmp,
                a,
                b,
                dst,
                then_pc,
                else_pc,
            } => {
                match (int_src(frame, *a), int_src(frame, *b)) {
                    (Ok(x), Ok(y)) => {
                        let taken = cmp.apply(x, y);
                        // The flag slot is still written: later reads of
                        // the comparison result stay valid.
                        frame.slots[*dst as usize] = Value::Bool(taken);
                        frame.pc = if taken { *then_pc } else { *else_pc };
                    }
                    (Err(e), _) | (_, Err(e)) => raise!(e),
                }
            }
            CInstr::MoveSlot { dst, src } => {
                frame.slots[*dst as usize] = frame.slots[*src as usize].clone();
                frame.pc += 1;
            }
            CInstr::LoadImm { dst, v } => {
                frame.slots[*dst as usize] = v.clone();
                frame.pc += 1;
            }
            CInstr::BrBool {
                cond,
                then_pc,
                else_pc,
            } => match frame.slots[*cond as usize].as_bool() {
                Ok(true) => frame.pc = *then_pc,
                Ok(false) => frame.pc = *else_pc,
                Err(e) => raise!(e),
            },
            CInstr::Jump(pc) => {
                frame.pc = *pc;
            }
            CInstr::Branch {
                cond,
                then_pc,
                else_pc,
            } => {
                let v = operand_value(ctx, frame, cond);
                match v.as_bool() {
                    Ok(true) => frame.pc = *then_pc,
                    Ok(false) => frame.pc = *else_pc,
                    Err(e) => raise!(e),
                }
            }
            CInstr::Return(v) => {
                let value = match v {
                    Some(op) => operand_value(ctx, frame, op),
                    None => Value::Null,
                };
                let mut finished = frames.pop().expect("frame exists");
                // Recycle the finished frame's slot storage (bounded).
                if frame_pool.len() < 64 {
                    let mut slots = std::mem::take(&mut finished.slots);
                    slots.clear();
                    frame_pool.push(slots);
                }
                match frames.last_mut() {
                    None => return Ok(Outcome::Done(value)),
                    Some(caller) => {
                        if let Some(t) = finished.ret_slot {
                            caller.slots[t as usize] = value.clone();
                        }
                        if let Some(g) = finished.ret_global {
                            ctx.globals[g as usize] = value;
                        }
                    }
                }
            }
            CInstr::PushHandler { pc, kind, binder } => {
                frame.handlers.push(Handler {
                    pc: *pc,
                    kind: kind.clone(),
                    binder: *binder,
                });
                frame.pc += 1;
            }
            CInstr::PopHandler => {
                frame.handlers.pop();
                frame.pc += 1;
            }
            CInstr::Yield => {
                frame.pc += 1;
                if resumable {
                    return Ok(Outcome::Suspended(frames));
                }
                // Outside a fiber, yield is a no-op scheduling point.
            }
            CInstr::GlobalStore { .. } => unreachable!("unwrapped above"),
        }
    }
}

/// Why the threaded executor handed control back to the generic loop.
enum TExit {
    /// The top frame changed to one without a threaded body — a call into
    /// cold code, or a return past this session's entry frame. Re-poll and
    /// continue wherever the new top frame is.
    Frame,
    /// The op at the current pc needs the generic path: a deopt site, a
    /// type error, an IC miss, an over-limit call, or the local fuel
    /// window running dry. Nothing was charged for that op; the generic
    /// loop executes exactly one instruction (charging, raising, tracing
    /// and counting it through the usual single path) before re-entering.
    Stuck,
}

/// The direct-threaded executor (see `crate::threaded`): runs pre-bound
/// ops for the top frame — and chains into hot callees without leaving the
/// loop — until something needs the generic dispatch path.
///
/// Fuel mirrors the specialized fast loop exactly: a local countdown,
/// checked before each op and decremented on success, clamped to one
/// watchdog window while a delivery deadline is armed, and booked back in
/// a single batch on exit. Ops that would raise exit `Stuck` *without*
/// advancing pc or charging, so the generic re-execution charges once and
/// raises through the one exception path — byte-identical governance.
fn run_threaded(
    prog: &CompiledProgram,
    ctx: &mut Context,
    frames: &mut Vec<Frame>,
    entry: Rc<ThreadedFunc>,
    argbuf: &mut Vec<Value>,
    frame_pool: &mut Vec<Vec<Value>>,
) -> TExit {
    let fuel_start = ctx.fuel_left;
    let clamp = if ctx.deadline_armed() {
        fuel_start.min(WATCHDOG_CHECK_UNITS)
    } else {
        fuel_start
    };
    let mut fuel = clamp;
    let mut code = entry;
    // Threaded bodies of callers suspended by in-loop calls this session;
    // popping one resumes the caller without re-polling.
    let mut callers: Vec<Rc<ThreadedFunc>> = Vec::new();
    // The executor *owns* the top frame for the session: calls push the
    // suspended caller onto `frames` and swap the callee in, returns swap
    // the caller back — so the hot loop never re-borrows the frame stack.
    // Every exit path re-pushes `cur`, restoring the `run` invariant that
    // the executing frame is `frames.last()`.
    let mut cur = match frames.pop() {
        Some(f) => f,
        None => return TExit::Stuck,
    };

    /// Reads a pre-bound operand into an owned value.
    macro_rules! tsrc {
        ($a:expr) => {
            match $a {
                TSrc::Slot(s) => cur.slots[*s as usize].clone(),
                TSrc::Global(g) => ctx.globals[*g as usize].clone(),
                TSrc::Value(v) => v.clone(),
            }
        };
    }

    let exit = loop {
        let Some(op) = code.ops.get(cur.pc as usize) else {
            // Out-of-range pc: the generic loop owns the error.
            break TExit::Stuck;
        };
        match op {
            TOp::AddInt { dst, a, b } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                match (int_operand(&cur, *a), int_operand(&cur, *b)) {
                    (Some(x), Some(y)) => {
                        cur.slots[*dst as usize] = Value::Int(x.wrapping_add(y));
                        cur.pc += 1;
                        fuel -= 1;
                    }
                    _ => break TExit::Stuck,
                }
            }
            TOp::SubInt { dst, a, b } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                match (int_operand(&cur, *a), int_operand(&cur, *b)) {
                    (Some(x), Some(y)) => {
                        cur.slots[*dst as usize] = Value::Int(x.wrapping_sub(y));
                        cur.pc += 1;
                        fuel -= 1;
                    }
                    _ => break TExit::Stuck,
                }
            }
            TOp::MulInt { dst, a, b } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                match (int_operand(&cur, *a), int_operand(&cur, *b)) {
                    (Some(x), Some(y)) => {
                        cur.slots[*dst as usize] = Value::Int(x.wrapping_mul(y));
                        cur.pc += 1;
                        fuel -= 1;
                    }
                    _ => break TExit::Stuck,
                }
            }
            TOp::BitInt { op, dst, a, b } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                match (int_operand(&cur, *a), int_operand(&cur, *b)) {
                    (Some(x), Some(y)) => {
                        cur.slots[*dst as usize] = Value::Int(op.apply(x, y));
                        cur.pc += 1;
                        fuel -= 1;
                    }
                    _ => break TExit::Stuck,
                }
            }
            TOp::CmpInt { cmp, dst, a, b } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                match (int_operand(&cur, *a), int_operand(&cur, *b)) {
                    (Some(x), Some(y)) => {
                        cur.slots[*dst as usize] = Value::Bool(cmp.apply(x, y));
                        cur.pc += 1;
                        fuel -= 1;
                    }
                    _ => break TExit::Stuck,
                }
            }
            TOp::BrIfInt {
                cmp,
                a,
                b,
                dst,
                then_pc,
                else_pc,
            } => {
                // Fused compare + branch: costs its two constituents.
                if fuel < 2 {
                    break TExit::Stuck;
                }
                match (int_operand(&cur, *a), int_operand(&cur, *b)) {
                    (Some(x), Some(y)) => {
                        let taken = cmp.apply(x, y);
                        cur.slots[*dst as usize] = Value::Bool(taken);
                        cur.pc = if taken { *then_pc } else { *else_pc };
                        fuel -= 2;
                    }
                    _ => break TExit::Stuck,
                }
            }
            TOp::MoveSlot { dst, src } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                cur.slots[*dst as usize] = cur.slots[*src as usize].clone();
                cur.pc += 1;
                fuel -= 1;
            }
            TOp::LoadImm { dst, v } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                cur.slots[*dst as usize] = v.clone();
                cur.pc += 1;
                fuel -= 1;
            }
            TOp::BrBool {
                cond,
                then_pc,
                else_pc,
            } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                match cur.slots.get(*cond as usize) {
                    Some(Value::Bool(b)) => {
                        cur.pc = if *b { *then_pc } else { *else_pc };
                        fuel -= 1;
                    }
                    _ => break TExit::Stuck,
                }
            }
            TOp::Jump(pc) => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                cur.pc = *pc;
                fuel -= 1;
            }
            TOp::Branch {
                cond,
                then_pc,
                else_pc,
            } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                let condv = match cond {
                    TSrc::Slot(s) => cur.slots.get(*s as usize),
                    TSrc::Global(g) => ctx.globals.get(*g as usize),
                    TSrc::Value(v) => Some(v),
                };
                match condv {
                    Some(Value::Bool(b)) => {
                        cur.pc = if *b { *then_pc } else { *else_pc };
                        fuel -= 1;
                    }
                    _ => break TExit::Stuck,
                }
            }
            TOp::PushHandler { pc, kind, binder } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                cur.handlers.push(Handler {
                    pc: *pc,
                    kind: Rc::clone(kind),
                    binder: *binder,
                });
                cur.pc += 1;
                fuel -= 1;
            }
            TOp::PopHandler => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                cur.handlers.pop();
                cur.pc += 1;
                fuel -= 1;
            }
            TOp::StructGetIC { target, obj, ic } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                // Hit path only. Any miss, type error, or unset field
                // deopts *before* touching the counters; the generic IC
                // arm then re-executes the op, owning resolution, refill,
                // hit/miss accounting and error semantics — so counters
                // never double-book.
                let objv = match obj {
                    TSrc::Slot(s) => &cur.slots[*s as usize],
                    TSrc::Global(g) => &ctx.globals[*g as usize],
                    TSrc::Value(v) => v,
                };
                let Value::Struct(s) = objv else {
                    break TExit::Stuck;
                };
                let s = Rc::clone(s);
                let val = {
                    let sb = s.borrow();
                    let tn: &str = &sb.type_name;
                    let site = ic.borrow();
                    let idx = if site.deopt {
                        None
                    } else {
                        site.entries.iter().find_map(|e| match e {
                            IcEntry::Struct {
                                type_name,
                                field_idx,
                            } if &**type_name == tn => Some(*field_idx as usize),
                            _ => None,
                        })
                    };
                    let Some(idx) = idx else {
                        break TExit::Stuck;
                    };
                    sb.fields[idx].clone()
                };
                if matches!(val, Value::Null) {
                    break TExit::Stuck;
                }
                ic.borrow_mut().hits += 1;
                ctx.ic_hit();
                if let Some(t) = target {
                    cur.slots[*t as usize] = val;
                }
                cur.pc += 1;
                fuel -= 1;
            }
            TOp::StructSetIC {
                target,
                obj,
                value,
                ic,
            } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                let objv = match obj {
                    TSrc::Slot(s) => &cur.slots[*s as usize],
                    TSrc::Global(g) => &ctx.globals[*g as usize],
                    TSrc::Value(v) => v,
                };
                let Value::Struct(s) = objv else {
                    break TExit::Stuck;
                };
                let s = Rc::clone(s);
                let idx = {
                    let sb = s.borrow();
                    let tn: &str = &sb.type_name;
                    let site = ic.borrow();
                    if site.deopt {
                        None
                    } else {
                        site.entries.iter().find_map(|e| match e {
                            IcEntry::Struct {
                                type_name,
                                field_idx,
                            } if &**type_name == tn => Some(*field_idx as usize),
                            _ => None,
                        })
                    }
                };
                let Some(idx) = idx else {
                    break TExit::Stuck;
                };
                let val = tsrc!(value);
                s.borrow_mut().fields[idx] = val;
                ic.borrow_mut().hits += 1;
                ctx.ic_hit();
                if let Some(t) = target {
                    // Generic struct.set evaluates to Null.
                    cur.slots[*t as usize] = Value::Null;
                }
                cur.pc += 1;
                fuel -= 1;
            }
            TOp::Return(src) => {
                // The outermost return must produce `Outcome::Done` on the
                // generic path: never unwind past the stack's last frame.
                if fuel < 1 || frames.is_empty() {
                    break TExit::Stuck;
                }
                let value = match src {
                    None => Value::Null,
                    Some(s) => tsrc!(s),
                };
                fuel -= 1;
                let mut finished =
                    std::mem::replace(&mut cur, frames.pop().expect("non-empty checked"));
                // Recycle the finished frame's slot storage (bounded).
                if frame_pool.len() < 64 {
                    // Parked uncleared: stale values are dropped in one
                    // pass when the storage is reused (generic consumers
                    // `clear` + `resize`, which handles this too).
                    frame_pool.push(std::mem::take(&mut finished.slots));
                }
                match (finished.ret_slot, finished.ret_global) {
                    (Some(t), None) => cur.slots[t as usize] = value,
                    (None, Some(g)) => ctx.globals[g as usize] = value,
                    (Some(t), Some(g)) => {
                        cur.slots[t as usize] = value.clone();
                        ctx.globals[g as usize] = value;
                    }
                    (None, None) => {}
                }
                match callers.pop() {
                    Some(c) => code = c,
                    // Returned past the session's entry frame: the caller
                    // may be anything — re-poll from the dispatch loop.
                    None => break TExit::Frame,
                }
            }
            TOp::Call {
                func,
                args,
                ret_slot,
                ret_global,
            } => {
                if fuel < 1 {
                    break TExit::Stuck;
                }
                if let Some(max) = ctx.limits.max_call_depth {
                    // Over the limit the generic arm charges and then
                    // raises; deopt pre-charge so it does exactly that.
                    if frames.len() + 1 >= max as usize {
                        break TExit::Stuck;
                    }
                }
                // Self-recursion (the dominant hot-call shape) reuses the
                // current body without consulting the tier engine; tiered
                // code is installed once and never replaced, so this is
                // exactly what the lookup would return.
                let hot = if *func == cur.func {
                    Some(Rc::clone(&code))
                } else {
                    ctx.tier_threaded(*func)
                };
                match hot {
                    Some(tf) => {
                        // Hot-to-hot: build the callee frame directly from
                        // the caller's slots — no argument buffer round
                        // trip. (`note_call` is skipped: for a function
                        // with installed code it is a no-op by
                        // construction.)
                        let callee_cf = &prog.funcs[*func as usize];
                        let n = callee_cf.n_slots as usize;
                        // Recycled frames keep their stale values (the
                        // return path skips `clear`); one fused pass here
                        // drops them and null-initializes — much cheaper
                        // than `clear` + `resize`, whose separate drop and
                        // extend loops dominate the call cost for 48-byte
                        // values.
                        let mut slots = match frame_pool.pop() {
                            Some(mut v) => {
                                if v.len() == n {
                                    for s in v.iter_mut() {
                                        *s = Value::Null;
                                    }
                                } else {
                                    v.clear();
                                    v.resize(n, Value::Null);
                                }
                                v
                            }
                            None => vec![Value::Null; n],
                        };
                        for (i, a) in args.iter().enumerate().take(callee_cf.n_params as usize) {
                            slots[i] = tsrc!(a);
                        }
                        cur.pc += 1;
                        fuel -= 1;
                        let callee = Frame {
                            func: *func,
                            pc: 0,
                            slots,
                            handlers: Vec::new(),
                            ret_slot: *ret_slot,
                            ret_global: *ret_global,
                        };
                        frames.push(std::mem::replace(&mut cur, callee));
                        callers.push(std::mem::replace(&mut code, tf));
                    }
                    None => {
                        // Cold callee: replicate the generic Call arm
                        // exactly — argument buffer, invocation edge to
                        // the tier engine, pooled frame — then hand the
                        // new top frame back to the dispatch loop.
                        argbuf.clear();
                        for a in args.iter() {
                            argbuf.push(tsrc!(a));
                        }
                        cur.pc += 1;
                        fuel -= 1;
                        ctx.tier_note_call(prog.funcs.len(), *func, argbuf);
                        let mut callee = Frame::new_from_buf(prog, *func, argbuf, frame_pool);
                        callee.ret_slot = *ret_slot;
                        callee.ret_global = *ret_global;
                        frames.push(std::mem::replace(&mut cur, callee));
                        break TExit::Frame;
                    }
                }
            }
            TOp::Deopt => break TExit::Stuck,
        }
    };
    // Restore the `run` invariant: the executing frame tops the stack.
    frames.push(cur);
    // The loop only ever decrements, so the delta is exact; book it back
    // in one batch, exactly like the specialized fast loop.
    let used = clamp - fuel;
    ctx.fuel_spent = ctx.fuel_spent.wrapping_add(used);
    ctx.fuel_left = fuel_start - used;
    if ctx.watchdog_at.is_some() {
        ctx.watchdog_acc = ctx.watchdog_acc.saturating_add(used);
    }
    ctx.tier_retired.threaded += used;
    exit
}

/// Runs a callable value synchronously (used for fired timers).
pub fn run_callable(
    prog: &CompiledProgram,
    ctx: &mut Context,
    c: &CallableVal,
    extra: &[Value],
) -> RtResult<Value> {
    let mut args = c.bound.clone();
    args.extend(extra.iter().cloned());
    if let Some(fi) = prog.func_index.get(&*c.func).copied() {
        ctx.tier_note_call(prog.funcs.len(), fi, &args);
        let frames = vec![Frame::new(prog, fi, args)];
        match run(prog, ctx, frames, false)? {
            Outcome::Done(v) => Ok(v),
            Outcome::Suspended(_) => unreachable!("non-resumable"),
        }
    } else {
        call_host(prog, ctx, &c.func, &args)
    }
}

// --- inline-cache resolution -----------------------------------------------
// Shared by the IC dispatch arms. Each helper replicates the generic
// `ops::eval` semantics byte for byte (error kinds, messages, evaluation
// order); the cache only short-circuits the *resolution* step. A miss falls
// back to the generic lookup and refills the site — until `IcSite::cap`
// distinct entries have been seen, at which point the site de-optimizes and
// resolves generically forever.

/// Resolves a struct field index through the site cache, keyed on the
/// struct's type name.
fn struct_ic_index(
    ctx: &Context,
    ic: &RefCell<IcSite>,
    type_name: &str,
    field: &str,
) -> RtResult<usize> {
    let mut site = ic.borrow_mut();
    if !site.deopt {
        let cached = site.entries.iter().find_map(|e| match e {
            IcEntry::Struct {
                type_name: t,
                field_idx,
            } if &**t == type_name => Some(*field_idx as usize),
            _ => None,
        });
        if let Some(idx) = cached {
            site.hits += 1;
            ctx.ic_hit();
            return Ok(idx);
        }
    }
    site.misses += 1;
    ctx.ic_miss();
    // Generic resolution — identical to `ops::struct_field_index`, minus
    // the per-access `Vec<String>` clone the `ExecCtx` interface forces.
    let fields = ctx
        .struct_fields
        .get(type_name)
        .ok_or_else(|| RtError::type_error(format!("unknown struct type {type_name}")))?;
    let idx = fields
        .iter()
        .position(|f| f == field)
        .ok_or_else(|| RtError::index(format!("struct {type_name} has no field {field}")))?;
    site.refill(IcEntry::Struct {
        type_name: Rc::from(type_name),
        field_idx: idx as u32,
    });
    Ok(idx)
}

/// `struct.get` through the site cache.
fn struct_get_ic(ctx: &Context, v: &Value, field: &str, ic: &RefCell<IcSite>) -> RtResult<Value> {
    let Value::Struct(s) = v else {
        return Err(RtError::type_error(format!(
            "expected struct, got {}",
            v.type_name()
        )));
    };
    let sb = s.borrow();
    let idx = struct_ic_index(ctx, ic, &sb.type_name, field)?;
    let val = sb.fields[idx].clone();
    if matches!(val, Value::Null) {
        return Err(RtError::new(
            ExceptionKind::IndexError,
            format!("field {field} is unset"),
        ));
    }
    Ok(val)
}

/// `struct.set` through the site cache.
fn struct_set_ic(
    ctx: &Context,
    v: &Value,
    val: Value,
    field: &str,
    ic: &RefCell<IcSite>,
) -> RtResult<()> {
    let Value::Struct(s) = v else {
        return Err(RtError::type_error(format!(
            "expected struct, got {}",
            v.type_name()
        )));
    };
    let idx = {
        let sb = s.borrow();
        struct_ic_index(ctx, ic, &sb.type_name, field)?
    };
    s.borrow_mut().fields[idx] = val;
    Ok(())
}

/// `overlay.get` with the resolved overlay descriptor cached. The site is
/// keyed by the (site-static) overlay name, so it is trivially monomorphic;
/// the win is skipping the name → descriptor map lookup and `Rc` clone.
fn overlay_get_ic(
    ctx: &Context,
    args: &[Value],
    oname: &str,
    field: &str,
    ic: &RefCell<IcSite>,
) -> RtResult<Value> {
    let overlay = {
        let mut site = ic.borrow_mut();
        let cached = if site.deopt {
            None
        } else {
            site.entries.iter().find_map(|e| match e {
                IcEntry::Overlay { overlay } => Some(Rc::clone(overlay)),
                _ => None,
            })
        };
        match cached {
            Some(o) => {
                site.hits += 1;
                ctx.ic_hit();
                o
            }
            None => {
                site.misses += 1;
                ctx.ic_miss();
                let o = ctx
                    .overlays
                    .get(oname)
                    .cloned()
                    .ok_or_else(|| RtError::type_error(format!("unknown overlay {oname}")))?;
                site.refill(IcEntry::Overlay {
                    overlay: Rc::clone(&o),
                });
                o
            }
        }
    };
    // Same evaluation order as the generic arm: overlay resolution first,
    // then the base offset, then the bytes access.
    let base = match args.get(1) {
        Some(v) => v.as_int()?.max(0) as u64,
        None => args[0].as_bytes()?.begin_offset(),
    };
    let unpacked = overlay.get(args[0].as_bytes()?, base, field)?;
    Ok(match unpacked {
        Unpacked::UInt(u) => Value::Int(u as i64),
        Unpacked::Addr(a) => Value::Addr(a),
        Unpacked::Bytes(b) => Value::Bytes(Bytes::frozen_from_slice(&b)),
    })
}

/// Resolves a callable's target through the site cache: `Some(idx)` for a
/// HILTI function, `None` for the host-function path (including unknown
/// names, which `call_host` reports exactly like the generic arm). The
/// fast path compares the interned callee name by pointer first.
fn callable_ic_resolve(
    ctx: &Context,
    prog: &CompiledProgram,
    name: &Rc<str>,
    ic: &RefCell<IcSite>,
) -> Option<u32> {
    let mut site = ic.borrow_mut();
    if !site.deopt {
        let cached = site.entries.iter().find_map(|e| match e {
            IcEntry::Callee { name: n, func } if Rc::ptr_eq(n, name) || **n == **name => {
                Some(*func)
            }
            _ => None,
        });
        if let Some(func) = cached {
            site.hits += 1;
            ctx.ic_hit();
            return func;
        }
    }
    site.misses += 1;
    ctx.ic_miss();
    let func = prog.func_index.get(&**name).copied();
    site.refill(IcEntry::Callee {
        name: Rc::clone(name),
        func,
    });
    func
}

/// Calls a host-registered or builtin function.
fn call_host(
    _prog: &CompiledProgram,
    ctx: &mut Context,
    name: &str,
    args: &[Value],
) -> RtResult<Value> {
    // Builtins.
    if name == "Hilti::print" {
        let line = args
            .iter()
            .map(Value::render)
            .collect::<Vec<_>>()
            .join(", ");
        ctx.output(line);
        return Ok(Value::Null);
    }
    let Some(f) = ctx.host_fns.get(name).cloned() else {
        return Err(RtError::value(format!("unknown function {name}")));
    };
    let mut f = f.borrow_mut();
    f(args)
}

/// Finds and dispatches to the innermost matching handler, unwinding
/// frames as needed; errors if nothing catches.
fn dispatch_exception(frames: &mut Vec<Frame>, err: RtError) -> RtResult<()> {
    loop {
        let Some(frame) = frames.last_mut() else {
            return Err(err);
        };
        // Innermost handler first.
        while let Some(h) = frame.handlers.pop() {
            let matches = &*h.kind == "*" || ops::exception_kind_from_name(&h.kind) == err.kind;
            if matches {
                if let Some(b) = h.binder {
                    frame.slots[b as usize] = ops::exception_value(&err);
                }
                frame.pc = h.pc;
                return Ok(());
            }
        }
        frames.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Program;

    fn program(src: &str) -> Program {
        Program::from_source(src).expect("test program compiles")
    }

    #[test]
    fn global_store_wraps_data_ops() {
        let mut p = program(
            r#"
module M
global int<64> g = 10
void bump() {
    g = int.add g 5
}
int<64> get() {
    return g
}
"#,
        );
        p.run_void("M::bump", &[]).unwrap();
        p.run_void("M::bump", &[]).unwrap();
        assert!(p.run("M::get", &[]).unwrap().equals(&Value::Int(20)));
    }

    #[test]
    fn global_store_wraps_call_returns() {
        // `g = call f(...)`: the callee's return value must land in the
        // global through the GlobalStore/ret_global path.
        let mut p = program(
            r#"
module M
global int<64> g = 0
int<64> produce(int<64> x) {
    local int<64> y
    y = int.mul x 3
    return y
}
void set_it() {
    g = call produce (14)
}
int<64> get() {
    return g
}
"#,
        );
        p.run_void("M::set_it", &[]).unwrap();
        assert!(p.run("M::get", &[]).unwrap().equals(&Value::Int(42)));
    }

    #[test]
    fn exceptions_unwind_across_frames() {
        // The thrower has no handler; the caller's caller catches.
        let mut p = program(
            r#"
module M
void boom() {
    exception.throw Hilti::IndexError "deep"
}
void middle() {
    call boom ()
}
string top() {
    try {
        call middle ()
    } catch ( ref<Hilti::IndexError> e ) {
        local string m
        m = exception.message e
        return m
    }
    return "no exception"
}
"#,
        );
        let v = p.run("M::top", &[]).unwrap();
        assert_eq!(v.render(), "deep");
    }

    #[test]
    fn handler_kinds_filter_during_unwind() {
        let mut p = program(
            r#"
module M
void boom() {
    exception.throw Hilti::ValueError "v"
}
string top() {
    try {
        try {
            call boom ()
        } catch ( ref<Hilti::IndexError> e ) {
            return "wrong handler"
        }
    } catch ( ref<Hilti::ValueError> e2 ) {
        return "right handler"
    }
    return "none"
}
"#,
        );
        assert_eq!(p.run("M::top", &[]).unwrap().render(), "right handler");
    }

    #[test]
    fn int_fast_path_type_errors_are_catchable() {
        // An `any`-typed operand stays on the generic path (the
        // specializer must not touch it), and a non-int value raises a
        // TypeError that handlers can catch.
        let mut p = program(
            r#"
module M
int<64> f(any x) {
    local int<64> y
    try {
        y = int.add x 1
    } catch ( exception e ) {
        return -1
    }
    return y
}
"#,
        );
        assert!(p
            .run("M::f", &[Value::Int(41)])
            .unwrap()
            .equals(&Value::Int(42)));
        assert!(p
            .run("M::f", &[Value::str("nope")])
            .unwrap()
            .equals(&Value::Int(-1)));
    }

    #[test]
    fn yield_outside_fiber_is_noop() {
        let mut p = program(
            r#"
module M
int<64> f() {
    yield
    yield
    return 7
}
"#,
        );
        assert!(p.run("M::f", &[]).unwrap().equals(&Value::Int(7)));
    }

    #[test]
    fn deep_call_stack_via_explicit_frames() {
        // The VM's heap frames allow recursion far past Rust's stack
        // limits for an equivalent native recursion in debug builds.
        let mut p = program(
            r#"
module M
int<64> down(int<64> n) {
    local bool base
    local int<64> r
    base = int.leq n 0
    if.else base stop rec
stop:
    return 0
rec:
    r = int.sub n 1
    r = call down (r)
    r = int.add r 1
    return r
}
"#,
        );
        let v = p.run("M::down", &[Value::Int(50_000)]).unwrap();
        assert!(v.equals(&Value::Int(50_000)));
    }

    #[test]
    fn uncaught_exception_reports_kind() {
        let mut p =
            program("module M\nvoid f() {\n    exception.throw Hilti::PatternError \"bad\"\n}\n");
        let e = p.run_void("M::f", &[]).unwrap_err();
        assert_eq!(e.kind, hilti_rt::error::ExceptionKind::PatternError);
        assert_eq!(e.message, "bad");
    }

    #[test]
    fn context_profiler_spans() {
        let prog = crate::bytecode::compile(
            &crate::linker::link_with_priorities(vec![crate::parser::parse_module(
                "module M\nvoid f() {\n    profiler.start p1\n    profiler.stop p1\n    profiler.count c1 3\n}\n",
            )
            .unwrap()])
            .unwrap(),
        )
        .unwrap();
        let mut ctx = Context::for_program(&prog);
        call(&prog, &mut ctx, "M::f", &[]).unwrap();
        assert_eq!(ctx.profile_counter("c1"), 3);
    }

    #[test]
    fn channels_between_contexts() {
        // A channel value created in one program context and read through
        // HILTI instructions.
        let mut p = program(
            r#"
module M
int<64> roundtrip(int<64> x) {
    local ref<channel<int<64>>> ch
    local int<64> got
    ch = new channel<int<64>>
    channel.write ch x
    channel.write ch 99
    got = channel.read ch
    return got
}
"#,
        );
        assert!(p
            .run("M::roundtrip", &[Value::Int(5)])
            .unwrap()
            .equals(&Value::Int(5)));
    }

    #[test]
    fn iosrc_reads_host_supplied_packets() {
        let mut p = program(
            r#"
module M
int<64> drain(ref<iosrc> src) {
    local any pkt
    local bool ok
    local int<64> n
    n = assign 0
loop:
    pkt = iosrc.read src
    ok = tuple.get pkt 0
    if.else ok count done
count:
    n = int.add n 1
    jump loop
done:
    return n
}
"#,
        );
        // Install a source yielding three packets.
        p.context_mut().register_iosrc("trace", || {
            let mut k = 0;
            let src = crate::value::IoSource {
                name: "trace".into(),
                producer: Box::new(move || {
                    k += 1;
                    if k <= 3 {
                        Some((hilti_rt::time::Time::from_secs(k), vec![0u8; 10]))
                    } else {
                        None
                    }
                }),
            };
            // producer closure state resets per open; fine for this test
            Ok(Value::IOSrc(std::rc::Rc::new(RefCell::new(src))))
        });
        let opened = {
            let prog = p.compiled().clone();
            let mut ctx_src = crate::ops::ExecCtx::open_iosrc(p.context_mut(), "trace").unwrap();
            let _ = &prog;
            std::mem::replace(&mut ctx_src, Value::Null)
        };
        let v = p.run("M::drain", &[opened]).unwrap();
        assert!(v.equals(&Value::Int(3)));
    }
}
