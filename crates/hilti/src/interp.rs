//! The tree-walking IR interpreter — the *interpreted* baseline engine.
//!
//! This engine executes linked IR directly, the way Bro's script
//! interpreter executes its AST (§6.5): variables live in per-call hash
//! maps, every block transfer searches for its label, constants are
//! re-materialized (and regexp literals re-compiled) at each use, and
//! function calls recurse through the host stack. None of that is
//! accidental sloppiness — it is the faithful cost model of an interpreter,
//! and the performance gap between this engine and the bytecode VM is the
//! compiled-vs-interpreted effect the evaluation measures (experiments E7
//! and E8).
//!
//! Semantics are identical to the VM (shared `ops::eval`); differential
//! tests in `tests/` assert observable equivalence. Fibers are not
//! supported here — suspension requires the VM's explicit frame stack.

use std::collections::HashMap;

use hilti_rt::error::{RtError, RtResult};

use crate::bytecode::const_value;
use crate::ir::{Const, Function, Instr, Opcode, Operand, Terminator};
use crate::linker::Linked;
use crate::ops::{self, ExecCtx};
use crate::value::Value;
use crate::vm::Context;

/// Maximum interpreter call depth (fail-safe recursion guard).
const MAX_DEPTH: usize = 150;

/// Calls `func` with `args` under the interpreter.
pub fn call(linked: &Linked, ctx: &mut Context, func: &str, args: &[Value]) -> RtResult<Value> {
    let global_index: HashMap<&str, usize> = linked
        .global_index
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    let spent_before = ctx.fuel_spent();
    let mut interp = Interp {
        linked,
        ctx,
        global_index,
        depth: 0,
    };
    let result = interp.call_function(func, args);
    ctx.telemetry_flush_run(spent_before);
    result
}

struct Interp<'a> {
    linked: &'a Linked,
    ctx: &'a mut Context,
    global_index: HashMap<&'a str, usize>,
    depth: usize,
}

struct HandlerRec {
    kind: String,
    label: String,
    binder: Option<String>,
}

enum Next {
    Goto(String),
    Return(Value),
}

impl<'a> Interp<'a> {
    fn call_function(&mut self, name: &str, args: &[Value]) -> RtResult<Value> {
        if name == "Hilti::print" {
            let line = args
                .iter()
                .map(Value::render)
                .collect::<Vec<_>>()
                .join(", ");
            self.ctx.output(line);
            return Ok(Value::Null);
        }
        let Some(func) = self.linked.functions.get(name) else {
            // Host function?
            return self.call_host(name, args);
        };
        self.run_body(func, args)
    }

    fn call_host(&mut self, name: &str, args: &[Value]) -> RtResult<Value> {
        // Reach through the context's host-function table.
        let Some(f) = self.ctx.host_fn(name) else {
            return Err(RtError::value(format!("unknown function {name}")));
        };
        let mut f = f.borrow_mut();
        f(args)
    }

    fn run_hook(&mut self, name: &str, args: &[Value]) -> RtResult<()> {
        if let Some(bodies) = self.linked.hooks.get(name) {
            let bodies: Vec<Function> = bodies.clone();
            for body in &bodies {
                self.run_body(body, args)?;
            }
        }
        Ok(())
    }

    fn run_body(&mut self, func: &Function, args: &[Value]) -> RtResult<Value> {
        self.depth += 1;
        // Configured limit first (catchable resource governance), then the
        // engine's own fail-safe recursion guard.
        if let Some(max) = self.ctx.limits().max_call_depth {
            if self.depth > max as usize {
                self.depth -= 1;
                return Err(RtError::resource_exhausted("call depth limit exceeded"));
            }
        }
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(RtError::runtime("interpreter recursion limit exceeded"));
        }
        let result = self.run_body_inner(func, args);
        self.depth -= 1;
        result
    }

    fn run_body_inner(&mut self, func: &Function, args: &[Value]) -> RtResult<Value> {
        if args.len() != func.params.len() {
            return Err(RtError::type_error(format!(
                "{}: expected {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut locals: HashMap<String, Value> = HashMap::new();
        for ((pname, _), v) in func.params.iter().zip(args) {
            locals.insert(pname.clone(), v.clone());
        }
        for (lname, _) in &func.locals {
            locals.entry(lname.clone()).or_insert(Value::Null);
        }
        let mut handlers: Vec<HandlerRec> = Vec::new();

        let mut label = func
            .blocks
            .first()
            .map(|b| b.label.clone())
            .ok_or_else(|| RtError::runtime(format!("{}: empty function", func.name)))?;
        loop {
            // Label search on every transfer — interpreter cost model.
            let block = func
                .block(&label)
                .ok_or_else(|| RtError::runtime(format!("{}: no block {label}", func.name)))?;
            match self.run_block(func, block, &mut locals, &mut handlers) {
                Ok(Next::Goto(l)) => label = l,
                Ok(Next::Return(v)) => return Ok(v),
                Err(e) => {
                    // Dispatch to the innermost matching handler.
                    let mut handled = None;
                    while let Some(h) = handlers.pop() {
                        let matches =
                            h.kind == "*" || ops::exception_kind_from_name(&h.kind) == e.kind;
                        if matches {
                            if let Some(b) = &h.binder {
                                locals.insert(b.clone(), ops::exception_value(&e));
                            }
                            handled = Some(h.label);
                            break;
                        }
                    }
                    match handled {
                        Some(l) => label = l,
                        None => return Err(e),
                    }
                }
            }
        }
    }

    fn run_block(
        &mut self,
        func: &Function,
        block: &crate::ir::Block,
        locals: &mut HashMap<String, Value>,
        handlers: &mut Vec<HandlerRec>,
    ) -> RtResult<Next> {
        for instr in &block.instrs {
            if self.ctx.trace && self.ctx.trace_log.len() < crate::vm::TRACE_CAP {
                self.ctx
                    .trace_log
                    .push(format!("{}::{}: {:?}", func.name, block.label, instr));
            }
            self.run_instr(func, instr, locals, handlers)?;
        }
        // Block terminators cost one fuel unit, exactly like the VM's
        // terminator instructions — without this, an empty self-looping
        // block would spin forever under a fuel limit.
        self.ctx.charge_fuel(1)?;
        if self.ctx.profile {
            self.ctx.profile_record(&func.name, "control", 1);
        }
        match &block.term {
            Terminator::Jump(l) => Ok(Next::Goto(l.clone())),
            Terminator::IfElse(cond, l1, l2) => {
                let v = self.operand(cond, locals)?;
                Ok(Next::Goto(if v.as_bool()? {
                    l1.clone()
                } else {
                    l2.clone()
                }))
            }
            Terminator::Return(v) => {
                let value = match v {
                    Some(op) => self.operand(op, locals)?,
                    None => Value::Null,
                };
                Ok(Next::Return(value))
            }
        }
    }

    fn operand(&self, op: &Operand, locals: &HashMap<String, Value>) -> RtResult<Value> {
        match op {
            Operand::Const(c) => const_value(c),
            Operand::Var(name) => {
                if let Some(v) = locals.get(name) {
                    Ok(v.clone())
                } else if let Some(idx) = self.global_index.get(name.as_str()) {
                    Ok(self.ctx.globals[*idx].clone())
                } else {
                    Err(RtError::value(format!("undefined variable {name}")))
                }
            }
        }
    }

    fn store(
        &mut self,
        target: &str,
        value: Value,
        locals: &mut HashMap<String, Value>,
    ) -> RtResult<()> {
        if locals.contains_key(target) {
            locals.insert(target.to_owned(), value);
        } else if let Some(idx) = self.global_index.get(target) {
            self.ctx.globals[*idx] = value;
        } else {
            // First write to an undeclared temp: treat as a local (the
            // parser's desugared temporaries).
            locals.insert(target.to_owned(), value);
        }
        Ok(())
    }

    fn run_instr(
        &mut self,
        func: &Function,
        instr: &Instr,
        locals: &mut HashMap<String, Value>,
        handlers: &mut Vec<HandlerRec>,
    ) -> RtResult<()> {
        use Opcode::*;

        // One fuel unit per IR body instruction — the same charging scheme
        // as the VM, which lowers each IR instruction to one CInstr.
        self.ctx.charge_fuel(1)?;
        if self.ctx.profile {
            self.ctx.profile_record(
                &func.name,
                crate::vm::opcode_class(instr.opcode.mnemonic()),
                1,
            );
        }

        // Split constants: identifiers/patterns go to idents, the rest are
        // evaluated to values.
        let mut idents: Vec<String> = Vec::new();
        let mut labels: Vec<String> = Vec::new();
        let mut values: Vec<Value> = Vec::new();
        let mut type_ref: Option<crate::types::Type> = None;
        for a in &instr.args {
            match a {
                Operand::Const(Const::Ident(i)) => idents.push(i.clone()),
                Operand::Const(Const::Label(l)) => labels.push(l.clone()),
                Operand::Const(Const::Patterns(ps)) => idents.extend(ps.iter().cloned()),
                Operand::Const(Const::TypeRef(t)) => type_ref = Some(t.clone()),
                other => values.push(self.operand(other, locals)?),
            }
        }

        match instr.opcode {
            Call | CallVoid | CallC => {
                let callee = idents
                    .first()
                    .ok_or_else(|| RtError::value("call without callee"))?
                    .clone();
                let result = self.call_function(&callee, &values)?;
                if let Some(t) = &instr.target {
                    self.store(t, result, locals)?;
                }
            }
            HookRun | HookRunVoid => {
                let hook = idents
                    .first()
                    .ok_or_else(|| RtError::value("hook.run without name"))?
                    .clone();
                self.run_hook(&hook, &values)?;
            }
            CallableCall | CallableCallVoid => {
                let Some(Value::Callable(c)) = values.first().cloned() else {
                    return Err(RtError::type_error("callable.call needs a callable"));
                };
                let mut full = c.bound.clone();
                full.extend(values[1..].iter().cloned());
                let result = self.call_function(&c.func, &full)?;
                if let Some(t) = &instr.target {
                    self.store(t, result, locals)?;
                }
            }
            New => {
                let ty = type_ref.ok_or_else(|| RtError::value("new without type"))?;
                let v = ops::instantiate(&ty, &values, self.ctx)?;
                let t = instr
                    .target
                    .as_ref()
                    .ok_or_else(|| RtError::value("new without target"))?;
                self.store(t, v, locals)?;
            }
            PushHandler => {
                let label = labels
                    .first()
                    .ok_or_else(|| RtError::value("push_handler without label"))?
                    .clone();
                if func.block(&label).is_none() {
                    return Err(RtError::value(format!("unknown handler label {label}")));
                }
                let kind = idents.first().cloned().unwrap_or_else(|| "*".into());
                let binder = idents.get(1).filter(|b| !b.is_empty()).cloned();
                handlers.push(HandlerRec {
                    kind,
                    label,
                    binder,
                });
            }
            PopHandler => {
                handlers.pop();
            }
            Yield => {
                // The interpreter has no fibers; yield is a no-op.
            }
            _ => {
                let evaluated = ops::eval(instr.opcode, &values, &idents, self.ctx)?;
                if let Some(t) = &instr.target {
                    self.store(t, evaluated.value, locals)?;
                }
                for fired in evaluated.fired {
                    let mut full = fired.bound.clone();
                    let name = fired.func.to_string();
                    let result = self.call_function(&name, &std::mem::take(&mut full));
                    result?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::link_with_priorities;
    use crate::parser::parse_module;

    fn run(src: &str, func: &str, args: &[Value]) -> (RtResult<Value>, Vec<String>) {
        let m = parse_module(src).unwrap();
        let linked = link_with_priorities(vec![m]).unwrap();
        let prog = crate::bytecode::compile(&linked).unwrap();
        let mut ctx = Context::for_program(&prog);
        let r = call(&linked, &mut ctx, func, args);
        let out = ctx.take_output();
        (r, out)
    }

    #[test]
    fn hello_world() {
        let (r, out) = run(
            "module Main\nvoid run() {\n  call Hilti::print \"Hello, World!\"\n}\n",
            "Main::run",
            &[],
        );
        r.unwrap();
        assert_eq!(out, vec!["Hello, World!"]);
    }

    #[test]
    fn arithmetic_and_branches() {
        let src = r#"
module M
int<64> max(int<64> a, int<64> b) {
    local bool c
    c = int.gt a b
    if.else c ret_a ret_b
ret_a:
    return a
ret_b:
    return b
}
"#;
        let (r, _) = run(src, "M::max", &[Value::Int(3), Value::Int(9)]);
        assert!(r.unwrap().equals(&Value::Int(9)));
        let (r, _) = run(src, "M::max", &[Value::Int(13), Value::Int(9)]);
        assert!(r.unwrap().equals(&Value::Int(13)));
    }

    #[test]
    fn recursion_fibonacci() {
        let src = r#"
module M
int<64> fib(int<64> n) {
    local bool base
    local int<64> a
    local int<64> b
    base = int.lt n 2
    if.else base ret rec
ret:
    return n
rec:
    a = int.sub n 1
    a = call fib (a)
    b = int.sub n 2
    b = call fib (b)
    a = int.add a b
    return a
}
"#;
        let (r, _) = run(src, "M::fib", &[Value::Int(15)]);
        assert!(r.unwrap().equals(&Value::Int(610)));
    }

    #[test]
    fn try_catch_dispatch() {
        let src = r#"
module M
int<64> f(int<64> d) {
    local int<64> x
    try {
        x = int.div 100 d
    } catch ( ref<Hilti::ArithmeticError> e ) {
        return -1
    }
    return x
}
"#;
        let (r, _) = run(src, "M::f", &[Value::Int(5)]);
        assert!(r.unwrap().equals(&Value::Int(20)));
        let (r, _) = run(src, "M::f", &[Value::Int(0)]);
        assert!(r.unwrap().equals(&Value::Int(-1)));
    }

    #[test]
    fn uncaught_exception_propagates() {
        let (r, _) = run(
            "module M\nint<64> f() {\n  local int<64> x\n  x = int.div 1 0\n  return x\n}\n",
            "M::f",
            &[],
        );
        assert!(r.is_err());
    }

    #[test]
    fn wrong_kind_not_caught() {
        let src = r#"
module M
int<64> f() {
    local int<64> x
    try {
        x = int.div 1 0
    } catch ( ref<Hilti::IndexError> e ) {
        return -1
    }
    return x
}
"#;
        let (r, _) = run(src, "M::f", &[]);
        assert!(r.is_err());
    }

    #[test]
    fn globals_persist_across_calls() {
        let src = r#"
module M
global int<64> counter = 0
void bump() {
    counter = int.add counter 1
}
int<64> get() {
    return counter
}
"#;
        let m = parse_module(src).unwrap();
        let linked = link_with_priorities(vec![m]).unwrap();
        let prog = crate::bytecode::compile(&linked).unwrap();
        let mut ctx = Context::for_program(&prog);
        for _ in 0..5 {
            call(&linked, &mut ctx, "M::bump", &[]).unwrap();
        }
        let v = call(&linked, &mut ctx, "M::get", &[]).unwrap();
        assert!(v.equals(&Value::Int(5)));
    }

    #[test]
    fn hooks_run_all_bodies_in_priority_order() {
        let src = r#"
module M
hook void h(int<64> x) {
    call Hilti::print "body-default"
}
hook void h(int<64> x) &priority = 5 {
    call Hilti::print "body-high"
}
void f() {
    hook.run h 1
}
"#;
        let (r, out) = run(src, "M::f", &[]);
        r.unwrap();
        assert_eq!(out, vec!["body-high", "body-default"]);
    }

    #[test]
    fn containers_and_state() {
        let src = r#"
module M
int<64> f() {
    local ref<set<addr>> s
    local bool e
    local int<64> n
    s = new set<addr>
    set.insert s 10.0.0.1
    set.insert s 10.0.0.2
    set.insert s 10.0.0.1
    n = set.size s
    return n
}
"#;
        let (r, _) = run(src, "M::f", &[]);
        assert!(r.unwrap().equals(&Value::Int(2)));
    }

    #[test]
    fn recursion_limit_guards() {
        let src = r#"
module M
void f() {
    call f ()
}
"#;
        let (r, _) = run(src, "M::f", &[]);
        let e = r.unwrap_err();
        assert!(e.message.contains("recursion limit"), "{e}");
    }
}
