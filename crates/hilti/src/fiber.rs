//! Fibers: suspendable computations for incremental processing (§3.2).
//!
//! A fiber captures a paused execution — the frame stack of a bytecode-VM
//! computation — so the host can multiplex many in-flight analyses inside
//! one hardware thread. The canonical use is protocol parsing: the host
//! feeds a chunk of payload, the parser runs until it needs data that has
//! not arrived (`Hilti::WouldBlock`), suspends, and later resumes exactly
//! where it stopped once the host appends more input. "Compared to
//! traditional implementations—which typically maintain per-session state
//! machines manually—this model remains transparent to the analysis code."
//!
//! Where the paper's runtime freezes real stacks with `setcontext` over
//! mmap-backed segments, our frames are already heap values, so suspension
//! is detaching a `Vec<Frame>` — the Rust-safe equivalent with the same
//! semantics (and the property benchmarked in §5's fiber micro-benchmark,
//! reproduced as experiment E1).

use hilti_rt::error::{RtError, RtResult};

use crate::bytecode::CompiledProgram;
use crate::value::Value;
use crate::vm::{self, Context, Frame, Outcome};

/// Execution state of a fiber.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum FiberState {
    /// Created but not started.
    Fresh,
    /// Suspended mid-execution; resumable.
    Suspended,
    /// Ran to completion.
    Done,
    /// Terminated with an uncaught exception.
    Failed,
}

/// What a fiber run step produced.
#[derive(Debug)]
pub enum Step {
    /// The computation finished with this value.
    Finished(Value),
    /// The computation suspended (yield or missing input).
    Suspended,
}

/// A suspendable computation over a compiled program.
pub struct Fiber {
    func: String,
    args: Vec<Value>,
    frames: Option<Vec<Frame>>,
    state: FiberState,
    result: Option<Value>,
}

impl Fiber {
    /// Creates a fiber that will execute `func(args)` when first resumed.
    pub fn new(func: &str, args: Vec<Value>) -> Fiber {
        Fiber {
            func: func.to_owned(),
            args,
            frames: None,
            state: FiberState::Fresh,
            result: None,
        }
    }

    pub fn state(&self) -> FiberState {
        self.state
    }

    /// The final value, once [`FiberState::Done`].
    pub fn result(&self) -> Option<&Value> {
        self.result.as_ref()
    }

    /// Runs the fiber until it finishes or suspends.
    ///
    /// On an uncaught exception the fiber transitions to
    /// [`FiberState::Failed`] and the error is returned; a failed fiber
    /// cannot be resumed.
    pub fn resume(&mut self, prog: &CompiledProgram, ctx: &mut Context) -> RtResult<Step> {
        if let Some(sink) = ctx.telemetry_sink() {
            sink.emit(
                "fiber_resume",
                vec![("function", self.func.as_str().into())],
            );
        }
        let outcome = match self.state {
            FiberState::Fresh => {
                self.state = FiberState::Failed; // until proven otherwise
                vm::start_resumable(prog, ctx, &self.func, &std::mem::take(&mut self.args))
            }
            FiberState::Suspended => {
                let frames = self.frames.take().expect("suspended fiber has frames");
                self.state = FiberState::Failed;
                vm::resume(prog, ctx, frames)
            }
            FiberState::Done => {
                return Err(RtError::runtime("resume of finished fiber"));
            }
            FiberState::Failed => {
                return Err(RtError::runtime("resume of failed fiber"));
            }
        };
        match outcome {
            Ok(Outcome::Done(v)) => {
                self.state = FiberState::Done;
                self.result = Some(v.clone());
                Ok(Step::Finished(v))
            }
            Ok(Outcome::Suspended(frames)) => {
                self.frames = Some(frames);
                self.state = FiberState::Suspended;
                if let Some(sink) = ctx.telemetry_sink() {
                    sink.emit(
                        "fiber_suspend",
                        vec![("function", self.func.as_str().into())],
                    );
                }
                Ok(Step::Suspended)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::linker::link_with_priorities;
    use crate::parser::parse_module;

    fn program(src: &str) -> (CompiledProgram, Context) {
        let m = parse_module(src).unwrap();
        let linked = link_with_priorities(vec![m]).unwrap();
        crate::check::check(&linked).unwrap();
        let prog = compile(&linked).unwrap();
        let ctx = Context::for_program(&prog);
        (prog, ctx)
    }

    #[test]
    fn fiber_completes_without_suspension() {
        let (prog, mut ctx) = program(
            "module M\nint<64> f(int<64> x) {\n  local int<64> y\n  y = int.add x 1\n  return y\n}\n",
        );
        let mut fiber = Fiber::new("M::f", vec![Value::Int(41)]);
        match fiber.resume(&prog, &mut ctx).unwrap() {
            Step::Finished(Value::Int(42)) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(fiber.state(), FiberState::Done);
        assert!(fiber.resume(&prog, &mut ctx).is_err());
    }

    #[test]
    fn yield_suspends_and_resumes() {
        let (prog, mut ctx) = program(
            r#"
module M
int<64> f() {
    local int<64> x
    x = assign 1
    yield
    x = int.add x 1
    yield
    x = int.add x 1
    return x
}
"#,
        );
        let mut fiber = Fiber::new("M::f", vec![]);
        assert!(matches!(
            fiber.resume(&prog, &mut ctx).unwrap(),
            Step::Suspended
        ));
        assert_eq!(fiber.state(), FiberState::Suspended);
        assert!(matches!(
            fiber.resume(&prog, &mut ctx).unwrap(),
            Step::Suspended
        ));
        match fiber.resume(&prog, &mut ctx).unwrap() {
            Step::Finished(Value::Int(3)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn would_block_suspends_and_retries() {
        // The incremental-parsing pattern: read one byte past the frontier,
        // suspend, host appends data, resume picks up transparently.
        let (prog, mut ctx) = program(
            r#"
module M
int<64> read_two(ref<bytes> data) {
    local iterator<bytes> it
    local int<64> a
    local int<64> b
    it = bytes.begin data
    a = iterator.deref it
    it = iterator.incr it 1
    b = iterator.deref it
    a = int.mul a 256
    a = int.add a b
    return a
}
"#,
        );
        let data = hilti_rt::Bytes::new();
        let mut fiber = Fiber::new("M::read_two", vec![Value::Bytes(data.clone())]);
        // No data yet: suspends at the first deref.
        assert!(matches!(
            fiber.resume(&prog, &mut ctx).unwrap(),
            Step::Suspended
        ));
        data.append(&[0x01]).unwrap();
        // One byte: gets past the first deref, suspends at the second.
        assert!(matches!(
            fiber.resume(&prog, &mut ctx).unwrap(),
            Step::Suspended
        ));
        data.append(&[0x02]).unwrap();
        match fiber.resume(&prog, &mut ctx).unwrap() {
            Step::Finished(Value::Int(0x0102)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_fiber_stays_failed() {
        let (prog, mut ctx) = program(
            "module M\nint<64> f() {\n  local int<64> x\n  x = int.div 1 0\n  return x\n}\n",
        );
        let mut fiber = Fiber::new("M::f", vec![]);
        assert!(fiber.resume(&prog, &mut ctx).is_err());
        assert_eq!(fiber.state(), FiberState::Failed);
        assert!(fiber.resume(&prog, &mut ctx).is_err());
    }

    #[test]
    fn many_interleaved_fibers() {
        // Multiplexing: many sessions in flight inside one thread, each
        // suspended at a different point (the paper's core use case).
        let (prog, mut ctx) = program(
            r#"
module M
int<64> sum3(ref<bytes> data) {
    local iterator<bytes> it
    local int<64> total
    local int<64> b
    local int<64> i
    it = bytes.begin data
    total = assign 0
    i = assign 0
loop:
    b = iterator.deref it
    it = iterator.incr it 1
    total = int.add total b
    i = int.add i 1
    local bool done
    done = int.geq i 3
    if.else done out loop
out:
    return total
}
"#,
        );
        let n = 50;
        let mut sessions: Vec<(hilti_rt::Bytes, Fiber)> = (0..n)
            .map(|_| {
                let b = hilti_rt::Bytes::new();
                let f = Fiber::new("M::sum3", vec![Value::Bytes(b.clone())]);
                (b, f)
            })
            .collect();
        // Feed one byte per round, interleaved across all sessions.
        for round in 0..3 {
            for (i, (bytes, fiber)) in sessions.iter_mut().enumerate() {
                bytes.append(&[(round * 10 + (i % 5)) as u8]).unwrap();
                let step = fiber.resume(&prog, &mut ctx).unwrap();
                if round < 2 {
                    assert!(matches!(step, Step::Suspended), "round {round} session {i}");
                }
            }
        }
        for (i, (_, fiber)) in sessions.iter().enumerate() {
            assert_eq!(fiber.state(), FiberState::Done, "session {i}");
            let expected = (10 + 20) + 3 * (i % 5) as i64;
            assert!(
                fiber.result().unwrap().equals(&Value::Int(expected)),
                "session {i}"
            );
        }
    }
}
