//! The host-application API (§3.4).
//!
//! This is the analog of the paper's generated C stubs plus the C++ AST
//! interface: a host application either parses textual HILTI source or
//! builds [`crate::ir::Module`]s programmatically, then obtains a
//! [`Program`] — parsed, linked, checked, optimized, and lowered to
//! bytecode ("all the way from user-level specification to native code on
//! the fly"). The program exposes function calls in both directions,
//! fibers for incremental processing, and access to output, logs, and
//! profiling.

use hilti_rt::error::{RtError, RtResult};

use crate::bytecode::{compile, CompiledProgram};
use crate::check;
use crate::fiber::Fiber;
use crate::ir::Module;
use crate::linker::{link_with_priorities, Linked};
use crate::passes::{optimize_linked, OptLevel, PassStats};
use crate::specialize::SpecStats;
use crate::value::Value;
use crate::vm::{self, Context};

/// Build-time options beyond the optimization level.
#[derive(Clone, Debug)]
pub struct BuildOptions {
    /// Insert per-function profiling spans (§3.3).
    pub instrument: bool,
    /// When set, prune functions unreachable from these roots (and from
    /// hooks) — §7's link-time elimination of code "statically determined
    /// as unreachable with the host application's parameterization".
    pub prune_roots: Option<Vec<String>>,
    /// Run the bytecode specialization pass (`crate::specialize`): typed
    /// fast-path instructions and fused compare-and-branch. On by default;
    /// switch off to ablate the tier (see `bench/benches/dispatch.rs`).
    pub specialize: bool,
    /// Profile-guided adaptive tiering (see `crate::tier`). `None` (the
    /// default) keeps the static behaviour: specialize everything at build
    /// time per `specialize`. `Some(mode)` switches to runtime feedback:
    /// the static pass is skipped, every function starts generic, and the
    /// context's tier engine re-lowers hot functions with observed types
    /// and inline caches (`off` never tiers — the measurement baseline;
    /// `threaded` additionally compiles promoted functions into
    /// direct-threaded ops, the top rung of the tier ladder).
    pub tiering: Option<crate::tier::TieringMode>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            instrument: false,
            prune_roots: None,
            specialize: true,
            tiering: None,
        }
    }
}

/// The `Send` front-end half of a build: linked, checked, optimized IR
/// waiting for per-thread bytecode lowering. Produced by
/// [`Program::front_end`], consumed by [`Program::from_ir`].
#[derive(Clone)]
pub struct ProgramIr {
    linked: Linked,
    pass_stats: PassStats,
    warnings: Vec<check::Diagnostic>,
    options: BuildOptions,
}

/// A ready-to-run HILTI program: linked IR plus compiled bytecode plus the
/// execution context (thread-local state of virtual thread 0).
pub struct Program {
    linked: Linked,
    compiled: CompiledProgram,
    ctx: Context,
    pass_stats: PassStats,
    spec_stats: SpecStats,
    warnings: Vec<check::Diagnostic>,
}

impl Program {
    /// Builds a program from one textual source unit with full optimization.
    pub fn from_source(src: &str) -> RtResult<Program> {
        Self::from_sources(&[src], OptLevel::Full)
    }

    /// Builds a program from several textual units.
    pub fn from_sources(srcs: &[&str], opt: OptLevel) -> RtResult<Program> {
        let modules = srcs
            .iter()
            .map(|s| crate::parser::parse_module(s))
            .collect::<RtResult<Vec<_>>>()?;
        Self::from_modules(modules, opt)
    }

    /// Builds a program from textual units with explicit build options
    /// (e.g. `specialize: false` for the dispatch-tier ablation).
    pub fn from_sources_opts(
        srcs: &[&str],
        opt: OptLevel,
        options: BuildOptions,
    ) -> RtResult<Program> {
        let modules = srcs
            .iter()
            .map(|s| crate::parser::parse_module(s))
            .collect::<RtResult<Vec<_>>>()?;
        Self::build(modules, opt, options)
    }

    /// Builds with per-function profiling instrumentation (§3.3): every
    /// function's execution time accumulates under `fn:<name>` spans in
    /// the context's profiler.
    pub fn from_sources_instrumented(srcs: &[&str], opt: OptLevel) -> RtResult<Program> {
        let modules = srcs
            .iter()
            .map(|s| crate::parser::parse_module(s))
            .collect::<RtResult<Vec<_>>>()?;
        Self::from_modules_opts(modules, opt, true)
    }

    /// Builds a program from in-memory modules (the AST-API path host
    /// compilers use).
    pub fn from_modules(modules: Vec<Module>, opt: OptLevel) -> RtResult<Program> {
        Self::from_modules_opts(modules, opt, false)
    }

    /// Like [`Program::from_modules`], optionally inserting
    /// function-granularity profiling instrumentation (§3.3).
    pub fn from_modules_opts(
        modules: Vec<Module>,
        opt: OptLevel,
        instrument: bool,
    ) -> RtResult<Program> {
        Self::build(
            modules,
            opt,
            BuildOptions {
                instrument,
                ..Default::default()
            },
        )
    }

    /// The full build pipeline with all options.
    pub fn build(modules: Vec<Module>, opt: OptLevel, options: BuildOptions) -> RtResult<Program> {
        Self::from_ir(Self::front_end_modules(modules, opt, options)?)
    }

    /// The front half of [`Program::build`]: parse → link → check →
    /// prune → optimize → instrument, stopping before bytecode. The
    /// result is `Clone + Send`, so a dispatcher can run the expensive
    /// front end **once** and every worker thread materializes its own
    /// [`Program`] from a clone with [`Program::from_ir`] — bytecode and
    /// execution context stay thread-private (inline-cache sites are
    /// `Rc`-based and must never be shared across threads).
    pub fn front_end(srcs: &[&str], opt: OptLevel, options: BuildOptions) -> RtResult<ProgramIr> {
        let modules = srcs
            .iter()
            .map(|s| crate::parser::parse_module(s))
            .collect::<RtResult<Vec<_>>>()?;
        Self::front_end_modules(modules, opt, options)
    }

    /// Like [`Program::front_end`], from in-memory modules.
    pub fn front_end_modules(
        modules: Vec<Module>,
        opt: OptLevel,
        options: BuildOptions,
    ) -> RtResult<ProgramIr> {
        let mut linked = link_with_priorities(modules)?;
        let warnings = check::check(&linked)?;
        if let Some(roots) = &options.prune_roots {
            let refs: Vec<&str> = roots.iter().map(String::as_str).collect();
            crate::linker::prune_unreachable(&mut linked, &refs);
        }
        let pass_stats = optimize_linked(&mut linked, opt);
        if options.instrument {
            crate::passes::instrument_functions(&mut linked);
        }
        Ok(ProgramIr {
            linked,
            pass_stats,
            warnings,
            options,
        })
    }

    /// The back half of [`Program::build`]: lower the optimized IR to
    /// bytecode, run static specialization, and wire a fresh execution
    /// context. Cheap relative to the front end — this is the per-thread
    /// share of a build.
    pub fn from_ir(ir: ProgramIr) -> RtResult<Program> {
        let ProgramIr {
            linked,
            pass_stats,
            warnings,
            options,
        } = ir;
        let mut compiled = compile(&linked)?;
        // Adaptive tiering replaces the static pass entirely: all functions
        // start generic and hot ones re-specialize with runtime feedback.
        let spec_stats = if options.specialize && options.tiering.is_none() {
            crate::specialize::specialize_program(&mut compiled)
        } else {
            SpecStats::default()
        };
        let mut ctx = Context::for_program(&compiled);
        if let Some(mode) = options.tiering {
            ctx.set_tiering(mode);
        }
        Ok(Program {
            linked,
            compiled,
            ctx,
            pass_stats,
            spec_stats,
            warnings,
        })
    }

    /// Static-checker warnings collected at build time.
    pub fn warnings(&self) -> &[check::Diagnostic] {
        &self.warnings
    }

    /// Optimization statistics from the build.
    pub fn pass_stats(&self) -> PassStats {
        self.pass_stats
    }

    /// Bytecode-specialization statistics (zero when built with
    /// `specialize: false`).
    pub fn spec_stats(&self) -> SpecStats {
        self.spec_stats
    }

    /// The linked IR (for inspection or the interpreter baseline).
    pub fn linked(&self) -> &Linked {
        &self.linked
    }

    /// The compiled bytecode.
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The execution context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    pub fn context_mut(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// Installs resource limits (fuel, heap budget, call depth) on the
    /// execution context; both engines enforce them from the next run.
    pub fn set_limits(&mut self, limits: hilti_rt::limits::ResourceLimits) {
        self.ctx.set_limits(limits);
    }

    /// Calls a HILTI function on the compiled engine and returns its value.
    pub fn run(&mut self, func: &str, args: &[Value]) -> RtResult<Value> {
        vm::call(&self.compiled, &mut self.ctx, func, args)
    }

    /// Calls a void HILTI function on the compiled engine.
    pub fn run_void(&mut self, func: &str, args: &[Value]) -> RtResult<()> {
        self.run(func, args).map(|_| ())
    }

    /// Calls a HILTI function on the interpreter baseline.
    pub fn run_interpreted(&mut self, func: &str, args: &[Value]) -> RtResult<Value> {
        crate::interp::call(&self.linked, &mut self.ctx, func, args)
    }

    /// Runs all bodies of a hook (host-driven callbacks, §3.2).
    pub fn run_hook(&mut self, hook: &str, args: &[Value]) -> RtResult<()> {
        let Some(hi) = self.compiled.hook_index.get(hook).copied() else {
            return Ok(()); // a hook with no bodies does nothing
        };
        let bodies = self.compiled.hooks[hi as usize].clone();
        for body in bodies {
            let frames = vec![vm::Frame::new_public(&self.compiled, body, args.to_vec())];
            match vm::run(&self.compiled, &mut self.ctx, frames, false)? {
                vm::Outcome::Done(_) => {}
                vm::Outcome::Suspended(_) => return Err(RtError::runtime("hook body suspended")),
            }
        }
        Ok(())
    }

    /// Creates a fiber for an incremental computation.
    pub fn fiber(&self, func: &str, args: Vec<Value>) -> Fiber {
        Fiber::new(func, args)
    }

    /// Resumes a fiber against this program.
    pub fn resume(&mut self, fiber: &mut Fiber) -> RtResult<crate::fiber::Step> {
        fiber.resume(&self.compiled, &mut self.ctx)
    }

    /// Registers a host function callable from HILTI code (`call.c`).
    pub fn register_host_fn(
        &mut self,
        name: &str,
        f: impl FnMut(&[Value]) -> RtResult<Value> + 'static,
    ) {
        self.ctx.register_host_fn(name, f);
    }

    /// Takes accumulated `Hilti::print` output.
    pub fn take_output(&mut self) -> Vec<String> {
        self.ctx.take_output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_hello_world() {
        // Figure 3 of the paper, minus the shell.
        let mut p = Program::from_source(
            r#"
module Main
import Hilti

void run() {
    call Hilti::print "Hello, World!"
}
"#,
        )
        .unwrap();
        p.run_void("Main::run", &[]).unwrap();
        assert_eq!(p.take_output(), vec!["Hello, World!"]);
    }

    #[test]
    fn vm_and_interpreter_agree() {
        let src = r#"
module M
int<64> fib(int<64> n) {
    local bool base
    local int<64> a
    local int<64> b
    base = int.lt n 2
    if.else base ret rec
ret:
    return n
rec:
    a = int.sub n 1
    a = call fib (a)
    b = int.sub n 2
    b = call fib (b)
    a = int.add a b
    return a
}
"#;
        let mut p = Program::from_source(src).unwrap();
        let compiled = p.run("M::fib", &[Value::Int(18)]).unwrap();
        let interpreted = p.run_interpreted("M::fib", &[Value::Int(18)]).unwrap();
        assert!(compiled.equals(&interpreted));
        assert!(compiled.equals(&Value::Int(2584)));
    }

    /// The deterministic execution profiler must agree across engines: the
    /// fuel-parity cost model means the VM and the interpreter retire the
    /// same instructions, attributed to the same functions and classes.
    #[test]
    fn execution_profile_matches_across_engines() {
        let src = r#"
module M
int<64> fib(int<64> n) {
    local bool base
    local int<64> a
    local int<64> b
    base = int.lt n 2
    if.else base ret rec
ret:
    return n
rec:
    a = int.sub n 1
    a = call fib (a)
    b = int.sub n 2
    b = call fib (b)
    a = int.add a b
    return a
}
"#;
        let mut p = Program::from_source(src).unwrap();
        p.context_mut().profile = true;
        p.run("M::fib", &[Value::Int(12)]).unwrap();
        let vm_profile = p.context_mut().take_exec_profile();
        p.run_interpreted("M::fib", &[Value::Int(12)]).unwrap();
        let interp_profile = p.context_mut().take_exec_profile();

        assert!(!vm_profile.is_empty());
        assert_eq!(vm_profile.total(), interp_profile.total());
        assert_eq!(vm_profile.functions(), interp_profile.functions());
        assert_eq!(vm_profile.classes(), interp_profile.classes());
        // And the profile is itself the fuel ledger: per-function units sum
        // to the fuel the run charged.
        let retired: u64 = vm_profile.functions().iter().map(|(_, n)| n).sum();
        assert_eq!(retired, vm_profile.total());
    }

    /// Profiling must not change what executes — results and retired
    /// totals agree with a non-profiled run's fuel accounting.
    #[test]
    fn execution_profile_is_deterministic() {
        let src = "module M\nint<64> f(int<64> n) {\n  local int<64> r\n  r = int.mul n 3\n  return r\n}\n";
        let run_once = || {
            let mut p = Program::from_source(src).unwrap();
            p.context_mut().profile = true;
            p.run("M::f", &[Value::Int(5)]).unwrap();
            let prof = p.context_mut().take_exec_profile();
            (prof.functions(), prof.classes(), prof.total())
        };
        assert_eq!(run_once(), run_once());
    }

    /// Engine-level telemetry: retired instructions flushed per run, and
    /// fuel exhaustion leaves a resource_limit event in the sink.
    #[test]
    fn telemetry_counts_runs_and_resource_trips() {
        use hilti_rt::telemetry::Telemetry;

        let src = "module M\nint<64> f(int<64> n) {\n  local int<64> r\n  r = int.add n 1\n  return r\n}\n";
        let mut p = Program::from_source(src).unwrap();
        let tel = Telemetry::new();
        p.context_mut().set_telemetry(&tel);
        p.run("M::f", &[Value::Int(1)]).unwrap();
        p.run_interpreted("M::f", &[Value::Int(1)]).unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.counter("engine.runs"), 2);
        // Both engines charge the same fuel, so the flushed total is even.
        let retired = snap.counter("engine.instructions_retired");
        assert!(
            retired > 0 && retired.is_multiple_of(2),
            "retired={retired}"
        );

        // Now starve a run and expect a resource_limit event.
        p.set_limits(hilti_rt::ResourceLimits {
            fuel: Some(1),
            ..Default::default()
        });
        assert!(p.run("M::f", &[Value::Int(1)]).is_err());
        let trips = tel.snapshot();
        assert_eq!(trips.events_of_kind("resource_limit"), 1);
    }

    #[test]
    fn host_function_roundtrip() {
        let mut p = Program::from_source(
            r#"
module M
int<64> f(int<64> x) {
    local int<64> y
    y = call host_double (x)
    y = int.add y 1
    return y
}
"#,
        )
        .unwrap();
        p.register_host_fn("host_double", |args| Ok(Value::Int(args[0].as_int()? * 2)));
        let v = p.run("M::f", &[Value::Int(21)]).unwrap();
        assert!(v.equals(&Value::Int(43)));
    }

    #[test]
    fn unknown_host_function_errors() {
        let mut p =
            Program::from_source("module M\nvoid f() {\n  call no_such_fn ()\n}\n").unwrap();
        assert!(p.run_void("M::f", &[]).is_err());
        // And the checker warned about it at build time.
        assert!(p
            .warnings()
            .iter()
            .any(|w| w.message.contains("no_such_fn")));
    }

    #[test]
    fn host_driven_hooks() {
        let mut p = Program::from_source(
            r#"
module M
hook void on_banner(string sw) {
    call Hilti::print sw
}
"#,
        )
        .unwrap();
        p.run_hook("M::on_banner", &[Value::str("OpenSSH_3.9p1")])
            .unwrap();
        p.run_hook("M::nonexistent", &[]).unwrap(); // no bodies: no-op
        assert_eq!(p.take_output(), vec!["OpenSSH_3.9p1"]);
    }

    #[test]
    fn optimization_reported() {
        let p = Program::from_sources(
            &["module M\nint<64> f() {\n  local int<64> x\n  x = int.add 40 2\n  return x\n}\n"],
            OptLevel::Full,
        )
        .unwrap();
        assert!(p.pass_stats().constants_folded >= 1);
        let p0 = Program::from_sources(
            &["module M\nint<64> f() {\n  local int<64> x\n  x = int.add 40 2\n  return x\n}\n"],
            OptLevel::None,
        )
        .unwrap();
        assert_eq!(p0.pass_stats().total(), 0);
    }

    #[test]
    fn multi_unit_program() {
        let mut p = Program::from_sources(
            &[
                r#"
module Lib
int<64> triple(int<64> x) {
    local int<64> y
    y = int.mul x 3
    return y
}
"#,
                r#"
module App
int<64> main(int<64> x) {
    local int<64> y
    y = call Lib::triple (x)
    return y
}
"#,
            ],
            OptLevel::Full,
        )
        .unwrap();
        let v = p.run("App::main", &[Value::Int(14)]).unwrap();
        assert!(v.equals(&Value::Int(42)));
    }

    #[test]
    fn link_time_pruning_with_roots() {
        // §7: the linker removes code unreachable from the host's
        // parameterization — unused functions vanish from the binary.
        let src = r#"
module M
void used_helper() {
}
void entry() {
    call used_helper ()
}
void never_called() {
    call also_dead ()
}
void also_dead() {
}
"#;
        let modules = vec![crate::parser::parse_module(src).unwrap()];
        let mut p = Program::build(
            modules,
            OptLevel::Full,
            BuildOptions {
                prune_roots: Some(vec!["M::entry".to_owned()]),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(p.linked().function("M::entry").is_some());
        assert!(p.linked().function("M::used_helper").is_some());
        assert!(p.linked().function("M::never_called").is_none());
        assert!(p.linked().function("M::also_dead").is_none());
        // The kept entry still runs.
        p.run_void("M::entry", &[]).unwrap();
        // The pruned function is gone from the compiled image too.
        assert!(p.run_void("M::never_called", &[]).is_err());
    }

    #[test]
    fn function_granularity_profiling() {
        // §3.3: instrumentation inserted by the compiler reports per-
        // function time through the context profiler.
        let src = r#"
module M
int<64> busy(int<64> n) {
    local int<64> i
    local int<64> acc
    local bool more
    i = assign 0
    acc = assign 0
loop:
    acc = int.add acc i
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
int<64> outer(int<64> n) {
    local int<64> r
    r = call busy (n)
    return r
}
"#;
        let mut p = Program::from_sources_instrumented(&[src], OptLevel::Full).unwrap();
        p.run("M::outer", &[Value::Int(50_000)]).unwrap();
        let busy_ns = p.context().profile_ns("fn:M::busy");
        let outer_ns = p.context().profile_ns("fn:M::outer");
        assert!(busy_ns > 0, "busy must be charged");
        // Spans are inclusive (outer includes its callees), the standard
        // function-profiling convention; outer must cover busy.
        assert!(
            outer_ns >= busy_ns,
            "outer ({outer_ns}ns) must include busy ({busy_ns}ns)"
        );
    }

    #[test]
    fn timers_fire_through_callables() {
        let mut p = Program::from_source(
            r#"
module M
global int<64> fired = 0

void on_timer(int<64> k) {
    fired = int.add fired k
}

void schedule_and_advance() {
    local ref<timer_mgr> mgr
    local callable c
    local int<64> id
    mgr = new timer_mgr
    c = callable.bind on_timer (7)
    id = timer_mgr.schedule mgr time(10.0) c
    timer_mgr.advance mgr time(5.0)
    timer_mgr.advance mgr time(10.0)
}

int<64> get() {
    return fired
}
"#,
        )
        .unwrap();
        p.run_void("M::schedule_and_advance", &[]).unwrap();
        let v = p.run("M::get", &[]).unwrap();
        assert!(v.equals(&Value::Int(7)), "{v:?}");
    }

    const SUM_LOOP: &str = r#"
module M
int<64> sum(int<64> n) {
    local int<64> i
    local int<64> acc
    local bool more
    i = assign 0
    acc = assign 0
loop:
    acc = int.add acc i
    i = int.add i 1
    more = int.lt i n
    if.else more loop done
done:
    return acc
}
"#;

    #[test]
    fn specializer_preserves_behaviour_and_traces() {
        let mut on = Program::from_sources(&[SUM_LOOP], OptLevel::None).unwrap();
        let mut off = Program::from_sources_opts(
            &[SUM_LOOP],
            OptLevel::None,
            BuildOptions {
                specialize: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(on.spec_stats().total() > 0, "{:?}", on.spec_stats());
        assert_eq!(off.spec_stats().total(), 0);

        on.context_mut().trace = true;
        off.context_mut().trace = true;
        let v_on = on.run("M::sum", &[Value::Int(10)]).unwrap();
        let v_off = off.run("M::sum", &[Value::Int(10)]).unwrap();
        assert!(v_on.equals(&v_off));
        assert!(v_on.equals(&Value::Int(45)));
        // Tracing parity: the specialized VM's trace is line-for-line
        // identical to the unspecialized one (fused instructions emit
        // their two constituent lines).
        assert_eq!(
            on.context_mut().take_trace(),
            off.context_mut().take_trace()
        );
    }

    #[test]
    fn instruction_mix_histogram() {
        let mut p = Program::from_source(SUM_LOOP).unwrap();
        // Off by default.
        p.run("M::sum", &[Value::Int(50)]).unwrap();
        assert!(p.context_mut().take_instr_mix().is_empty());

        p.context_mut().stats = true;
        p.run("M::sum", &[Value::Int(50)]).unwrap();
        let mix = p.context_mut().take_instr_mix();
        let total: u64 = mix.iter().map(|(_, c)| *c).sum();
        assert!(total > 100, "{mix:?}");
        // The hot loop runs on the specialized tier.
        assert!(
            mix.iter().any(|(n, c)| n.starts_with("spec.") && *c >= 50),
            "{mix:?}"
        );
        // Sorted by descending count, and drained by take.
        assert!(mix.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(p.context_mut().take_instr_mix().is_empty());
    }

    #[test]
    fn specialized_type_error_is_catchable() {
        // A statically int slot read before initialization holds Null; the
        // specialized instruction must raise the same catchable TypeError
        // as the generic path.
        let src = r#"
module M
int<64> f() {
    local int<64> u
    local int<64> y
    try {
        y = int.add u 1
    } catch ( exception e ) {
        return -1
    }
    return y
}
"#;
        for specialize in [true, false] {
            let mut p = Program::from_sources_opts(
                &[src],
                OptLevel::None,
                BuildOptions {
                    specialize,
                    ..Default::default()
                },
            )
            .unwrap();
            let v = p.run("M::f", &[]).unwrap();
            assert!(v.equals(&Value::Int(-1)), "specialize={specialize}: {v:?}");
        }
    }

    #[test]
    fn execution_trace_capture() {
        let mut p = Program::from_source(
            "module M\nint<64> twice(int<64> x) {\n    x = int.add x x\n    return x\n}\n",
        )
        .unwrap();

        // Off by default: nothing is recorded.
        p.run("M::twice", &[Value::Int(3)]).unwrap();
        assert!(p.context_mut().take_trace().is_empty());

        // On: one line per executed instruction, engine-tagged by function.
        p.context_mut().trace = true;
        p.run("M::twice", &[Value::Int(3)]).unwrap();
        let vm_trace = p.context_mut().take_trace();
        assert!(!vm_trace.is_empty());
        assert!(
            vm_trace.iter().all(|l| l.starts_with("M::twice@")),
            "{vm_trace:?}"
        );
        // take_trace drains.
        assert!(p.context_mut().take_trace().is_empty());

        // The interpreter records through the same channel.
        p.run_interpreted("M::twice", &[Value::Int(3)]).unwrap();
        let interp_trace = p.context_mut().take_trace();
        assert!(!interp_trace.is_empty());
        assert!(
            interp_trace.iter().all(|l| l.starts_with("M::twice::")),
            "{interp_trace:?}"
        );
    }
}
