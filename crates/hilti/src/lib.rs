//! # hilti — the HILTI abstract machine
//!
//! This crate implements the paper's primary contribution (§3): an abstract
//! machine model tailored to deep, stateful network traffic analysis, plus
//! the compiler toolchain around it.
//!
//! * [`types`] — the static type system: domain types (addr, net, port,
//!   time, interval), containers, references, tuples, structs, …
//! * [`value`] — runtime values and the hashable key subset.
//! * [`ir`] — the intermediate representation: modules, functions, hooks,
//!   thread-local globals, blocks, and the ~200-mnemonic instruction set of
//!   Table 1.
//! * [`ops`] — the shared operational semantics of data instructions; both
//!   execution engines delegate here, like the paper's generated code calls
//!   into one runtime library.
//! * [`parser`] — the textual `.hlt` syntax (Figures 3–5 of the paper).
//! * [`check`] — the static validator/type checker.
//! * [`passes`] — IR optimizations: constant folding, copy propagation,
//!   common-subexpression elimination, dead-code elimination, jump
//!   threading (§6.6 names these as the missing optimizations; here they
//!   are implemented and benchmarked as ablations).
//! * [`linker`] — merges compilation units: thread-local global layout and
//!   cross-unit hook merging (§5 "Linker").
//! * [`interp`] — the tree-walking IR interpreter (the *interpreted*
//!   baseline of §6.5).
//! * [`bytecode`] + [`vm`] — lowering to flat register bytecode and the
//!   fiber-capable virtual machine (the *compiled* engine; see DESIGN.md
//!   for the LLVM substitution rationale).
//! * [`specialize`] — the typed bytecode fast tier: rewrites generic
//!   instructions into direct typed variants and fused compare-and-branch
//!   superinstructions the VM executes clone-free.
//! * [`tier`] — profile-guided adaptive tiering: hot functions
//!   re-specialize against observed types with inline caches, and (under
//!   `--tiering=threaded`) compile further into direct-threaded ops with
//!   operands and branch targets pre-bound at tier-up.
//! * [`fiber`] — suspendable computations for transparent incremental
//!   processing (§3.2).
//! * [`threads`] — the Erlang-style virtual-thread scheduler with
//!   hash-based placement and deep-copy message passing.
//! * [`host`] — the host-application API (the analog of the generated C
//!   stubs): build programs, register host functions, call HILTI functions,
//!   drive fibers.
//!
//! ## Quick example
//!
//! ```
//! use hilti::host::Program;
//!
//! let src = r#"
//! module Main
//! void run() {
//!     call Hilti::print "Hello, World!"
//! }
//! "#;
//! let mut prog = Program::from_source(src).unwrap();
//! prog.run_void("Main::run", &[]).unwrap();
//! assert_eq!(prog.take_output(), vec!["Hello, World!"]);
//! ```

pub mod bytecode;
pub mod check;
pub mod fiber;
pub mod host;
pub mod interp;
pub mod ir;
pub mod linker;
pub mod ops;
pub mod parser;
pub mod passes;
pub mod specialize;
pub(crate) mod threaded;
pub mod threads;
pub mod tier;
pub mod types;
pub mod value;
pub mod vm;

pub use host::Program;
pub use types::Type;
pub use value::Value;
