//! Static validation of linked programs.
//!
//! HILTI is "a contained, well-defined, and statically typed environment"
//! (§2): before anything executes, the checker verifies structural
//! well-formedness — labels resolve, variables are declared, call targets
//! exist, identifier operands appear where the instruction set expects
//! them — and performs local type checking where operand types are
//! statically known. Diagnostics carry the function and block they were
//! found in.

use std::collections::{HashMap, HashSet};

use hilti_rt::error::{RtError, RtResult};

use crate::ir::{Const, Function, Opcode, Operand, Terminator};
use crate::linker::Linked;
use crate::types::Type;

/// One diagnostic.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    pub function: String,
    pub block: String,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.function, self.block, self.message)
    }
}

/// Checks a linked program; `Err` carries the first error, `Ok` the full
/// (possibly empty) list of warnings.
pub fn check(linked: &Linked) -> RtResult<Vec<Diagnostic>> {
    let mut warnings = Vec::new();
    let all_bodies: Vec<&Function> = linked
        .functions
        .values()
        .chain(linked.hooks.values().flatten())
        .collect();
    for func in &all_bodies {
        check_function(func, linked, &mut warnings)?;
    }
    Ok(warnings)
}

fn err(func: &Function, block: &str, msg: String) -> RtError {
    RtError::value(format!("{} [{}]: {}", func.name, block, msg))
}

fn check_function(
    func: &Function,
    linked: &Linked,
    warnings: &mut Vec<Diagnostic>,
) -> RtResult<()> {
    if func.blocks.is_empty() {
        return Err(RtError::value(format!("{}: no blocks", func.name)));
    }

    // Unique labels.
    let mut labels = HashSet::new();
    for b in &func.blocks {
        if !labels.insert(b.label.as_str()) {
            return Err(err(func, &b.label, "duplicate block label".into()));
        }
    }

    // Declared names.
    let mut names: HashSet<&str> = HashSet::new();
    for (n, _) in &func.params {
        if !names.insert(n) {
            return Err(RtError::value(format!(
                "{}: duplicate parameter {n}",
                func.name
            )));
        }
    }
    for (n, _) in &func.locals {
        // Locals may repeat (block-scoped shadowing collapses); warn only.
        if !names.insert(n) {
            warnings.push(Diagnostic {
                function: func.name.clone(),
                block: String::new(),
                message: format!("local {n} declared more than once"),
            });
        }
    }

    let var_ok =
        |name: &str| -> bool { names.contains(name) || linked.global_index.contains_key(name) };

    // Static types of every variable whose declaration pins one down
    // (parameters, typed locals, globals). `any` stays unchecked.
    let mut var_types: HashMap<&str, Type> = HashMap::new();
    for (n, t) in func.params.iter().chain(func.locals.iter()) {
        var_types.insert(n.as_str(), t.clone());
    }
    for (n, t, _) in &linked.globals {
        var_types.entry(n.as_str()).or_insert_with(|| t.clone());
    }

    for block in &func.blocks {
        for instr in &block.instrs {
            // Variable references resolve.
            for arg in &instr.args {
                if let Operand::Var(v) = arg {
                    if !var_ok(v) {
                        return Err(err(
                            func,
                            &block.label,
                            format!("undeclared variable {v} in {}", instr.opcode.mnemonic()),
                        ));
                    }
                }
            }
            if let Some(t) = &instr.target {
                if !var_ok(t) {
                    return Err(err(
                        func,
                        &block.label,
                        format!("undeclared target {t} in {}", instr.opcode.mnemonic()),
                    ));
                }
            }
            check_instr_shape(func, &block.label, instr, linked, warnings)?;
            check_instr_types(func, &block.label, instr, &var_types)?;
        }
        // Terminators target existing labels.
        match &block.term {
            Terminator::Jump(l) => {
                if !labels.contains(l.as_str()) {
                    return Err(err(
                        func,
                        &block.label,
                        format!("jump to unknown label {l}"),
                    ));
                }
            }
            Terminator::IfElse(cond, l1, l2) => {
                if let Operand::Var(v) = cond {
                    if !var_ok(v) {
                        return Err(err(
                            func,
                            &block.label,
                            format!("undeclared condition variable {v}"),
                        ));
                    }
                }
                for l in [l1, l2] {
                    if !labels.contains(l.as_str()) {
                        return Err(err(
                            func,
                            &block.label,
                            format!("branch to unknown label {l}"),
                        ));
                    }
                }
            }
            Terminator::Return(Some(Operand::Var(v))) => {
                if !var_ok(v) {
                    return Err(err(
                        func,
                        &block.label,
                        format!("undeclared return variable {v}"),
                    ));
                }
            }
            Terminator::Return(_) => {}
        }
    }
    Ok(())
}

fn check_instr_shape(
    func: &Function,
    block: &str,
    instr: &crate::ir::Instr,
    linked: &Linked,
    warnings: &mut Vec<Diagnostic>,
) -> RtResult<()> {
    use Opcode::*;
    match instr.opcode {
        Call | CallVoid => {
            let Some(Operand::Const(Const::Ident(name))) = instr.args.first() else {
                return Err(err(func, block, "call needs a function identifier".into()));
            };
            match linked.functions.get(name) {
                Some(callee) => {
                    let given = instr.args.len() - 1;
                    if given != callee.params.len() {
                        return Err(err(
                            func,
                            block,
                            format!(
                                "call to {name}: {} arguments given, {} expected",
                                given,
                                callee.params.len()
                            ),
                        ));
                    }
                }
                None if name.starts_with("Hilti::") => {
                    // Builtin (print, ...) — resolved at runtime.
                }
                None => {
                    // Host functions are registered at runtime; warn only.
                    warnings.push(Diagnostic {
                        function: func.name.clone(),
                        block: block.to_owned(),
                        message: format!("call target {name} not defined at link time"),
                    });
                }
            }
        }
        HookRun | HookRunVoid => {
            let Some(Operand::Const(Const::Ident(name))) = instr.args.first() else {
                return Err(err(func, block, "hook.run needs a hook identifier".into()));
            };
            if !linked.hooks.contains_key(name) {
                // A hook without bodies is legal: it simply does nothing.
                warnings.push(Diagnostic {
                    function: func.name.clone(),
                    block: block.to_owned(),
                    message: format!("hook {name} has no bodies"),
                });
            }
        }
        CallableBind if !matches!(instr.args.first(), Some(Operand::Const(Const::Ident(_)))) => {
            return Err(err(
                func,
                block,
                "callable.bind needs a function identifier".into(),
            ));
        }
        New if !matches!(instr.args.first(), Some(Operand::Const(Const::TypeRef(_)))) => {
            return Err(err(func, block, "new needs a type operand".into()));
        }
        StructGet | StructSet | StructIsSet | StructUnset
            if !matches!(instr.args.get(1), Some(Operand::Const(Const::Ident(_)))) =>
        {
            return Err(err(
                func,
                block,
                format!("{} needs a field identifier", instr.opcode.mnemonic()),
            ));
        }
        OverlayGet => {
            let Some(Operand::Const(Const::Ident(oname))) = instr.args.first() else {
                return Err(err(
                    func,
                    block,
                    "overlay.get needs a type identifier".into(),
                ));
            };
            if !linked.types.contains_key(oname) {
                return Err(err(func, block, format!("unknown overlay type {oname}")));
            }
        }
        PushHandler => {
            let Some(Operand::Const(Const::Label(l))) = instr.args.first() else {
                return Err(err(func, block, "push_handler needs a label".into()));
            };
            if func.block(l).is_none() {
                return Err(err(func, block, format!("handler label {l} unknown")));
            }
        }
        _ => {}
    }
    // Pure instructions without a target are dead on arrival; warn.
    if instr.opcode.is_pure() && instr.target.is_none() {
        warnings.push(Diagnostic {
            function: func.name.clone(),
            block: block.to_owned(),
            message: format!("{} result discarded", instr.opcode.mnemonic()),
        });
    }
    Ok(())
}

/// The statically known type of an operand, if any.
fn operand_type(op: &Operand, var_types: &HashMap<&str, Type>) -> Option<Type> {
    match op {
        Operand::Var(v) => {
            let t = var_types.get(v.as_str())?.strip_ref().clone();
            if t == Type::Any {
                None
            } else {
                Some(t)
            }
        }
        Operand::Const(c) => Some(match c {
            Const::Bool(_) => Type::Bool,
            Const::Int(_) => Type::Int(64),
            Const::Double(_) => Type::Double,
            Const::Str(_) => Type::String,
            Const::BytesLit(_) => Type::Bytes,
            Const::Addr(_) => Type::Addr,
            Const::Net(_) => Type::Net,
            Const::Port(_) => Type::Port,
            Const::Time(_) => Type::Time,
            Const::Interval(_) => Type::Interval,
            Const::Patterns(_) => Type::Regexp,
            _ => return None,
        }),
    }
}

/// Expected value-operand types and result type per opcode, for the
/// statically checkable subset. `Any` slots are unchecked; opcodes absent
/// from this table are checked structurally only.
fn signature(op: Opcode) -> Option<(&'static [Type], Type)> {
    use Opcode::*;
    const I: Type = Type::Int(64);
    const B: Type = Type::Bool;
    const D: Type = Type::Double;
    const S: Type = Type::String;
    const BY: Type = Type::Bytes;
    const IT: Type = Type::BytesIter;
    const A: Type = Type::Any;
    Some(match op {
        IntAdd | IntSub | IntMul | IntDiv | IntMod | IntMin | IntMax | IntAnd | IntOr | IntXor
        | IntShl | IntShr => (&[I, I], I),
        IntNeg | IntAbs => (&[I], I),
        IntEq | IntLt | IntGt | IntLeq | IntGeq => (&[I, I], B),
        IntToDouble => (&[I], D),
        IntToString => (&[I], S),
        BoolAnd | BoolOr | BoolXor => (&[B, B], B),
        BoolNot => (&[B], B),
        DoubleAdd | DoubleSub | DoubleMul | DoubleDiv => (&[D, D], D),
        DoubleLt | DoubleGt | DoubleLeq | DoubleGeq => (&[D, D], B),
        DoubleAbs => (&[D], D),
        DoubleToInt => (&[D], I),
        StringConcat => (&[S, S], S),
        StringLength => (&[S], I),
        StringFind => (&[S, S], I),
        StringSubstr => (&[S, I, I], S),
        StringToBytes => (&[S], BY),
        StringToInt => (&[S], I),
        StringUpper | StringLower => (&[S], S),
        StringStartsWith => (&[S, S], B),
        BytesLength => (&[BY], I),
        BytesToString => (&[BY], S),
        BytesToInt => (&[BY, I], I),
        BytesBegin | BytesEnd => (&[BY], IT),
        BytesAt => (&[BY, I], IT),
        BytesSub => (&[IT, IT], BY),
        BytesTrim => (&[BY, IT], Type::Void),
        IterIncr => (&[IT, I], IT),
        IterDeref => (&[IT], I),
        IterOffset => (&[IT], I),
        IterDiff => (&[IT, IT], I),
        IterAtFrozenEnd | IterWouldBlock => (&[IT], B),
        AddrFamily => (&[Type::Addr], I),
        AddrMask => (&[Type::Addr, I], Type::Addr),
        NetContains => (&[Type::Net, Type::Addr], B),
        NetFamily | NetLength => (&[Type::Net], I),
        NetPrefix => (&[Type::Net], Type::Addr),
        PortNumber => (&[Type::Port], I),
        PortProtocol => (&[Type::Port], S),
        TimeAdd => (&[Type::Time, Type::Interval], Type::Time),
        TimeSubTime => (&[Type::Time, Type::Time], Type::Interval),
        TimeSubInterval => (&[Type::Time, Type::Interval], Type::Time),
        TimeLt | TimeGt => (&[Type::Time, Type::Time], B),
        TimeToDouble => (&[Type::Time], D),
        TimeFromDouble => (&[D], Type::Time),
        TimeNsecs => (&[Type::Time], I),
        IntervalAdd | IntervalSub => (&[Type::Interval, Type::Interval], Type::Interval),
        IntervalLt | IntervalGt => (&[Type::Interval, Type::Interval], B),
        IntervalToDouble => (&[Type::Interval], D),
        IntervalFromDouble => (&[D], Type::Interval),
        IntervalNsecs => (&[Type::Interval], I),
        Equal | Unequal => (&[A, A], B),
        RegexpMatchPrefix => (&[Type::Regexp, BY], I),
        _ => return None,
    })
}

/// Local type checking where operand types are statically pinned down.
fn check_instr_types(
    func: &Function,
    block: &str,
    instr: &crate::ir::Instr,
    var_types: &HashMap<&str, Type>,
) -> RtResult<()> {
    let Some((params, result)) = signature(instr.opcode) else {
        return Ok(());
    };
    // Value operands only (idents/labels/types are structural).
    let values: Vec<&Operand> = instr
        .args
        .iter()
        .filter(|a| {
            !matches!(
                a,
                Operand::Const(Const::Ident(_))
                    | Operand::Const(Const::Label(_))
                    | Operand::Const(Const::TypeRef(_))
            )
        })
        .collect();
    if values.len() != params.len() {
        return Err(err(
            func,
            block,
            format!(
                "{} expects {} operands, got {}",
                instr.opcode.mnemonic(),
                params.len(),
                values.len()
            ),
        ));
    }
    for (i, (op, want)) in values.iter().zip(params.iter()).enumerate() {
        if *want == Type::Any {
            continue;
        }
        if let Some(have) = operand_type(op, var_types) {
            if !have.compatible(want) {
                return Err(err(
                    func,
                    block,
                    format!(
                        "{} operand {}: expected {want}, got {have}",
                        instr.opcode.mnemonic(),
                        i + 1
                    ),
                ));
            }
        }
    }
    // Target type, when declared.
    if result != Type::Any && result != Type::Void {
        if let Some(t) = &instr.target {
            if let Some(declared) = var_types.get(t.as_str()) {
                let declared = declared.strip_ref();
                if *declared != Type::Any && !declared.compatible(&result) {
                    return Err(err(
                        func,
                        block,
                        format!(
                            "{}: target {t} declared {declared}, result is {result}",
                            instr.opcode.mnemonic()
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::link_with_priorities;
    use crate::parser::parse_module;

    fn linked(src: &str) -> RtResult<Vec<Diagnostic>> {
        let m = parse_module(src)?;
        let l = link_with_priorities(vec![m])?;
        check(&l)
    }

    #[test]
    fn valid_program_checks() {
        let w = linked(
            r#"
module M
int<64> f(int<64> x) {
    local int<64> y
    y = int.add x 1
    return y
}
"#,
        )
        .unwrap();
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn undeclared_variable_rejected() {
        let e = linked("module M\nvoid f() {\n  local int<64> y\n  y = int.add nope 1\n}\n")
            .unwrap_err();
        assert!(e.message.contains("undeclared variable nope"), "{e}");
    }

    #[test]
    fn undeclared_target_rejected() {
        let e = linked("module M\nvoid f() {\n  nope = int.add 1 1\n}\n").unwrap_err();
        assert!(e.message.contains("undeclared target"), "{e}");
    }

    #[test]
    fn unknown_jump_label_rejected() {
        let e = linked("module M\nvoid f() {\n  jump nowhere\n}\n").unwrap_err();
        assert!(e.message.contains("unknown label"), "{e}");
    }

    #[test]
    fn call_arity_enforced() {
        let e = linked(
            r#"
module M
void g(int<64> a, int<64> b) {
}
void f() {
    call g (1)
}
"#,
        )
        .unwrap_err();
        assert!(e.message.contains("1 arguments given, 2 expected"), "{e}");
    }

    #[test]
    fn unknown_call_target_is_warning() {
        let w = linked("module M\nvoid f() {\n  call some_host_fn (1)\n}\n").unwrap();
        assert!(w.iter().any(|d| d.message.contains("not defined")));
    }

    #[test]
    fn hilti_builtins_allowed() {
        let w = linked("module M\nvoid f() {\n  call Hilti::print \"x\"\n}\n").unwrap();
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn discarded_pure_result_is_warning() {
        let w = linked("module M\nvoid f() {\n  local int<64> x = 1\n  int.add x 1\n}\n").unwrap();
        assert!(w.iter().any(|d| d.message.contains("result discarded")));
    }

    #[test]
    fn unknown_overlay_rejected() {
        let e = linked(
            "module M\nvoid f(ref<bytes> p) {\n  local addr a\n  a = overlay.get NoSuch src p\n}\n",
        )
        .unwrap_err();
        assert!(e.message.contains("unknown overlay"), "{e}");
    }

    #[test]
    fn static_type_mismatch_rejected() {
        let e = linked("module M\nvoid f() {\n  local int<64> x\n  x = int.add \"oops\" 1\n}\n")
            .unwrap_err();
        assert!(e.message.contains("expected int<64>, got string"), "{e}");
    }

    #[test]
    fn declared_local_types_propagate() {
        let e = linked(
            "module M\nvoid f() {\n  local string s\n  local int<64> x\n  s = assign \"hi\"\n  x = string.length 5\n}\n",
        )
        .unwrap_err();
        assert!(e.message.contains("expected string"), "{e}");
    }

    #[test]
    fn target_type_mismatch_rejected() {
        let e =
            linked("module M\nvoid f() {\n  local string s\n  s = int.add 1 2\n}\n").unwrap_err();
        assert!(e.message.contains("declared string"), "{e}");
    }

    #[test]
    fn any_typed_operands_not_flagged() {
        let w = linked(
            "module M\nint<64> f(any x) {\n  local int<64> y\n  y = int.add x 1\n  return y\n}\n",
        )
        .unwrap();
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn domain_type_signatures_checked() {
        let e =
            linked("module M\nvoid f(addr a) {\n  local bool b\n  b = network.contains a a\n}\n")
                .unwrap_err();
        assert!(e.message.contains("expected net"), "{e}");
    }

    #[test]
    fn global_references_check() {
        let w = linked(
            r#"
module M
global int<64> counter = 0
void f() {
    counter = int.add counter 1
}
"#,
        )
        .unwrap();
        assert!(w.is_empty(), "{w:?}");
    }
}
