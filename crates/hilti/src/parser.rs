//! Parser for HILTI's textual syntax.
//!
//! The surface form mirrors the paper's listings (Figures 3–5): a module
//! header, type definitions, thread-local globals, and functions whose
//! bodies are line-oriented register instructions
//! `<target> = <mnemonic> <op1> <op2> <op3>` plus labels, `jump`,
//! `if.else`, `return`, and a `try { } catch ( ) { }` sugar that lowers to
//! handler push/pop instructions.
//!
//! Host applications usually construct IR through the builder API instead
//! (the analog of the paper's in-memory C++ AST interface); the textual
//! form exists for human-written programs, tests, and the `hiltic`-style
//! examples.

use std::collections::HashMap;

use hilti_rt::error::{RtError, RtResult};
use hilti_rt::overlay::{OverlayType, UnpackFormat};

use crate::ir::{
    Block, Const, Function, HookBody, Instr, Module, Opcode, Operand, Terminator, TypeDef,
};
use crate::types::Type;

/// Parses one module from source text.
pub fn parse_module(src: &str) -> RtResult<Module> {
    Parser::new(src).parse_module()
}

// ---------------------------------------------------------------------------
// Lexer

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    /// Identifier-ish atom: may contain `::`, `.`, `/`, `-` (literals are
    /// classified later, in context).
    Atom(String),
    Str(String),
    BytesLit(Vec<u8>),
    /// `/regexp/` literal.
    Pattern(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LAngle,
    RAngle,
    Comma,
    Eq,
    Colon,
    Newline,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: &str) -> RtError {
        RtError::value(format!("parse error at line {}: {msg}", self.line))
    }

    fn tokens(mut self) -> RtResult<Vec<(Tok, u32)>> {
        let mut out: Vec<(Tok, u32)> = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    // Collapse repeated newlines.
                    if !matches!(out.last(), Some((Tok::Newline, _)) | None) {
                        out.push((Tok::Newline, self.line));
                    }
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'#' => {
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'{' => {
                    out.push((Tok::LBrace, self.line));
                    self.pos += 1;
                }
                b'}' => {
                    out.push((Tok::RBrace, self.line));
                    self.pos += 1;
                }
                b'(' => {
                    out.push((Tok::LParen, self.line));
                    self.pos += 1;
                }
                b')' => {
                    out.push((Tok::RParen, self.line));
                    self.pos += 1;
                }
                b'<' => {
                    out.push((Tok::LAngle, self.line));
                    self.pos += 1;
                }
                b'>' => {
                    out.push((Tok::RAngle, self.line));
                    self.pos += 1;
                }
                b',' => {
                    out.push((Tok::Comma, self.line));
                    self.pos += 1;
                }
                b'=' => {
                    out.push((Tok::Eq, self.line));
                    self.pos += 1;
                }
                b'"' => {
                    let s = self.string_body()?;
                    out.push((Tok::Str(s), self.line));
                }
                b'b' if self.src.get(self.pos + 1) == Some(&b'"') => {
                    self.pos += 1;
                    let s = self.string_body()?;
                    out.push((Tok::BytesLit(s.into_bytes()), self.line));
                }
                b'/' if self.regex_position(&out) => {
                    // A `/.../' pattern literal (only where an operand may
                    // start, so `10.0.5.0/24` stays an atom).
                    self.pos += 1;
                    let start = self.pos;
                    let mut pat = String::new();
                    loop {
                        if self.pos >= self.src.len() || self.src[self.pos] == b'\n' {
                            return Err(self.err("unterminated /pattern/"));
                        }
                        let b = self.src[self.pos];
                        if b == b'\\' && self.pos + 1 < self.src.len() {
                            pat.push(self.src[self.pos] as char);
                            pat.push(self.src[self.pos + 1] as char);
                            self.pos += 2;
                            continue;
                        }
                        if b == b'/' {
                            self.pos += 1;
                            break;
                        }
                        pat.push(b as char);
                        self.pos += 1;
                    }
                    let _ = start;
                    out.push((Tok::Pattern(pat), self.line));
                }
                b':' if self.src.get(self.pos + 1) != Some(&b':') => {
                    out.push((Tok::Colon, self.line));
                    self.pos += 1;
                }
                _ => {
                    let start = self.pos;
                    while self.pos < self.src.len() {
                        let b = self.src[self.pos];
                        let ok = b.is_ascii_alphanumeric()
                            || matches!(b, b'_' | b'.' | b'/' | b'-' | b'*' | b'%' | b'&' | b'@')
                            || (b == b':' && self.src.get(self.pos + 1) == Some(&b':'))
                            || (b == b':' && self.pos > start && self.src[self.pos - 1] == b':');
                        if !ok {
                            break;
                        }
                        // Consume `::` as a pair.
                        if b == b':' {
                            self.pos += 2;
                        } else {
                            self.pos += 1;
                        }
                    }
                    if self.pos == start {
                        return Err(self.err(&format!("unexpected character {:?}", c as char)));
                    }
                    let atom = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    out.push((Tok::Atom(atom), self.line));
                }
            }
        }
        out.push((Tok::Newline, self.line));
        Ok(out)
    }

    /// A `/` starts a regex literal only right after a token that cannot
    /// end an expression atom — i.e. at operand start.
    fn regex_position(&self, out: &[(Tok, u32)]) -> bool {
        matches!(
            out.last(),
            None | Some((Tok::Newline, _))
                | Some((Tok::Eq, _))
                | Some((Tok::Comma, _))
                | Some((Tok::LParen, _))
                | Some((Tok::Colon, _))
                | Some((Tok::Pattern(_), _))
        ) || matches!(out.last(), Some((Tok::Atom(a), _)) if a == "regexp.new")
    }

    fn string_body(&mut self) -> RtResult<String> {
        debug_assert_eq!(self.src[self.pos], b'"');
        self.pos += 1;
        let mut s = String::new();
        loop {
            if self.pos >= self.src.len() {
                return Err(self.err("unterminated string"));
            }
            match self.src[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = *self
                        .src
                        .get(self.pos + 1)
                        .ok_or_else(|| self.err("dangling escape"))?;
                    s.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => other as char,
                    });
                    self.pos += 2;
                }
                b'\n' => return Err(self.err("newline in string")),
                other => {
                    s.push(other as char);
                    self.pos += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
    module: Module,
    /// Enum type name → labels (for `Type::Label` operand resolution).
    enums: HashMap<String, Vec<String>>,
    label_counter: u32,
}

impl Parser {
    fn new(src: &str) -> Self {
        Parser {
            toks: Lexer::new(src).tokens().unwrap_or_default(),
            pos: 0,
            module: Module::default(),
            enums: HashMap::new(),
            label_counter: 0,
        }
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn err(&self, msg: &str) -> RtError {
        RtError::value(format!("parse error at line {}: {msg}", self.line()))
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> RtResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&Tok::Newline) {}
    }

    fn expect_atom(&mut self, what: &str) -> RtResult<String> {
        match self.bump() {
            Some(Tok::Atom(a)) => Ok(a),
            other => Err(self.err(&format!("expected {what}, found {other:?}"))),
        }
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("@{stem}_{}", self.label_counter)
    }

    fn parse_module(mut self) -> RtResult<Module> {
        self.skip_newlines();
        let kw = self.expect_atom("'module'")?;
        if kw != "module" {
            return Err(self.err("file must start with 'module <Name>'"));
        }
        self.module.name = self.expect_atom("module name")?;
        self.skip_newlines();
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Atom(a) => match a.as_str() {
                    "import" => {
                        self.bump();
                        let _ = self.expect_atom("module name")?;
                    }
                    "type" => {
                        self.bump();
                        self.parse_typedef()?;
                    }
                    "global" => {
                        self.bump();
                        self.parse_global()?;
                    }
                    "hook" => {
                        self.bump();
                        self.parse_function(true)?;
                    }
                    _ => {
                        self.parse_function(false)?;
                    }
                },
                Tok::Newline => {
                    self.bump();
                }
                other => return Err(self.err(&format!("unexpected {other:?} at top level"))),
            }
        }
        Ok(self.module)
    }

    // -- types --------------------------------------------------------------

    fn parse_typedef(&mut self) -> RtResult<()> {
        let name = self.expect_atom("type name")?;
        self.expect(&Tok::Eq, "'='")?;
        let kind = self.expect_atom("'struct', 'enum', 'bitset' or 'overlay'")?;
        match kind.as_str() {
            "struct" => {
                self.expect(&Tok::LBrace, "'{'")?;
                let mut fields = Vec::new();
                loop {
                    self.skip_newlines();
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    let ty = self.parse_type()?;
                    let fname = self.expect_atom("field name")?;
                    fields.push((fname, ty));
                    self.eat(&Tok::Comma);
                }
                self.module.types.insert(name, TypeDef::Struct(fields));
            }
            "enum" => {
                self.expect(&Tok::LBrace, "'{'")?;
                let mut labels = Vec::new();
                loop {
                    self.skip_newlines();
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    labels.push(self.expect_atom("enum label")?);
                    self.eat(&Tok::Comma);
                }
                self.enums.insert(name.clone(), labels.clone());
                self.module.types.insert(name, TypeDef::Enum(labels));
            }
            "bitset" => {
                self.expect(&Tok::LBrace, "'{'")?;
                let mut labels = Vec::new();
                loop {
                    self.skip_newlines();
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    labels.push(self.expect_atom("bitset label")?);
                    self.eat(&Tok::Comma);
                }
                self.module.types.insert(name, TypeDef::Bitset(labels));
            }
            "overlay" => {
                self.expect(&Tok::LBrace, "'{'")?;
                let mut overlay = OverlayType::new(name.clone());
                loop {
                    self.skip_newlines();
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    // <name>: <type> at <offset> unpack <Format>[(args)]
                    let fname = self.expect_atom("overlay field name")?;
                    self.expect(&Tok::Colon, "':'")?;
                    let _fty = self.parse_type()?;
                    let at = self.expect_atom("'at'")?;
                    if at != "at" {
                        return Err(self.err("expected 'at <offset>'"));
                    }
                    let off: u64 = self
                        .expect_atom("offset")?
                        .parse()
                        .map_err(|_| self.err("bad overlay offset"))?;
                    let unpack_kw = self.expect_atom("'unpack'")?;
                    if unpack_kw != "unpack" {
                        return Err(self.err("expected 'unpack <format>'"));
                    }
                    let fmt_name = self.expect_atom("unpack format")?;
                    let mut fmt_args = Vec::new();
                    if self.eat(&Tok::LParen) {
                        loop {
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            let n: u32 = self
                                .expect_atom("format argument")?
                                .parse()
                                .map_err(|_| self.err("bad format argument"))?;
                            fmt_args.push(n);
                            self.eat(&Tok::Comma);
                        }
                    }
                    let fmt = unpack_format(&fmt_name, &fmt_args)
                        .ok_or_else(|| self.err(&format!("unknown unpack format {fmt_name}")))?;
                    overlay = overlay
                        .field(fname, off, fmt)
                        .map_err(|e| self.err(&e.message))?;
                    self.eat(&Tok::Comma);
                }
                self.module.types.insert(name, TypeDef::Overlay(overlay));
            }
            other => return Err(self.err(&format!("unknown type kind {other}"))),
        }
        Ok(())
    }

    fn parse_type(&mut self) -> RtResult<Type> {
        let head = self.expect_atom("type")?;
        Ok(match head.as_str() {
            "void" => Type::Void,
            "bool" => Type::Bool,
            "int" => {
                if self.eat(&Tok::LAngle) {
                    let w: u8 = self
                        .expect_atom("int width")?
                        .parse()
                        .map_err(|_| self.err("bad int width"))?;
                    self.expect(&Tok::RAngle, "'>'")?;
                    Type::Int(w)
                } else {
                    Type::Int(64)
                }
            }
            "double" => Type::Double,
            "string" => Type::String,
            "bytes" => Type::Bytes,
            "addr" => Type::Addr,
            "net" => Type::Net,
            "port" => Type::Port,
            "time" => Type::Time,
            "interval" => Type::Interval,
            "any" => Type::Any,
            "regexp" => Type::Regexp,
            "callable" => Type::Callable(
                std::sync::Arc::new(Vec::new()),
                std::sync::Arc::new(Type::Any),
            ),
            "matcher" => Type::Matcher,
            "timer_mgr" => Type::TimerMgr,
            "file" => Type::File,
            "iosrc" => Type::IOSrc,
            "exception" => Type::Exception,
            "iterator" => {
                self.expect(&Tok::LAngle, "'<'")?;
                let inner = self.parse_type()?;
                self.expect(&Tok::RAngle, "'>'")?;
                if inner != Type::Bytes {
                    return Err(self.err("only iterator<bytes> is supported"));
                }
                Type::BytesIter
            }
            "ref" => {
                self.expect(&Tok::LAngle, "'<'")?;
                let inner = self.parse_type()?;
                self.expect(&Tok::RAngle, "'>'")?;
                Type::reference(inner)
            }
            "list" | "vector" | "set" | "channel" => {
                self.expect(&Tok::LAngle, "'<'")?;
                let inner = self.parse_type()?;
                self.expect(&Tok::RAngle, "'>'")?;
                match head.as_str() {
                    "list" => Type::list(inner),
                    "vector" => Type::vector(inner),
                    "set" => Type::set(inner),
                    _ => Type::Channel(std::sync::Arc::new(inner)),
                }
            }
            "map" | "classifier" => {
                self.expect(&Tok::LAngle, "'<'")?;
                let k = self.parse_type()?;
                self.expect(&Tok::Comma, "','")?;
                let v = self.parse_type()?;
                self.expect(&Tok::RAngle, "'>'")?;
                if head == "map" {
                    Type::map(k, v)
                } else {
                    Type::Classifier(std::sync::Arc::new(k), std::sync::Arc::new(v))
                }
            }
            "tuple" => {
                self.expect(&Tok::LAngle, "'<'")?;
                let mut parts = Vec::new();
                loop {
                    parts.push(self.parse_type()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RAngle, "'>'")?;
                Type::tuple(parts)
            }
            other => {
                // A user-defined type: struct/enum/overlay reference.
                match self.module.types.get(other) {
                    Some(TypeDef::Struct(_)) => Type::Struct(std::sync::Arc::from(other)),
                    Some(TypeDef::Enum(_)) => Type::Enum(std::sync::Arc::from(other)),
                    Some(TypeDef::Bitset(_)) => Type::Bitset(std::sync::Arc::from(other)),
                    Some(TypeDef::Overlay(_)) => Type::Overlay(std::sync::Arc::from(other)),
                    // Forward references resolve to struct (the common case,
                    // e.g. `ref<connection>` used before its definition).
                    None => Type::Struct(std::sync::Arc::from(other)),
                }
            }
        })
    }

    // -- globals -------------------------------------------------------------

    fn parse_global(&mut self) -> RtResult<()> {
        let ty = self.parse_type()?;
        let name = self.expect_atom("global name")?;
        let init = if self.eat(&Tok::Eq) {
            // Const initializer or `<type>()` constructor call.
            Some(self.parse_const_initializer()?)
        } else {
            None
        };
        self.module.globals.push((name, ty, init));
        Ok(())
    }

    fn parse_const_initializer(&mut self) -> RtResult<Const> {
        // Accept simple constants or `set<addr>()`-style empty constructors
        // (which lower to "instantiate fresh at startup").
        let save = self.pos;
        match self.parse_operand()? {
            Operand::Const(c) => Ok(c),
            Operand::Var(_) => {
                // Re-parse as a type constructor, e.g. `set<addr>()`.
                self.pos = save;
                let ty = self.parse_type()?;
                if self.eat(&Tok::LParen) {
                    self.expect(&Tok::RParen, "')'")?;
                }
                Ok(Const::TypeRef(ty))
            }
        }
    }

    // -- functions -------------------------------------------------------------

    fn parse_function(&mut self, is_hook: bool) -> RtResult<()> {
        let ret = self.parse_type()?;
        let bare = self.expect_atom("function name")?;
        let name = self.module.qualify(&bare);
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        loop {
            self.skip_newlines();
            if self.eat(&Tok::RParen) {
                break;
            }
            let pty = self.parse_type()?;
            let pname = self.expect_atom("parameter name")?;
            params.push((pname, pty));
            self.eat(&Tok::Comma);
        }
        // Optional `&priority = N` attribute for hooks.
        let mut priority = 0i64;
        if matches!(self.peek(), Some(Tok::Atom(a)) if a == "&priority") {
            self.bump();
            self.expect(&Tok::Eq, "'=' after &priority")?;
            priority = self
                .expect_atom("priority value")?
                .parse()
                .map_err(|_| self.err("bad priority value"))?;
        }
        self.skip_newlines();
        self.expect(&Tok::LBrace, "'{'")?;
        let mut body = FnBody::new(self);
        body.parse_until_rbrace()?;
        let FnBody { locals, blocks, .. } = body;
        let func = Function {
            name: name.clone(),
            params,
            ret,
            locals,
            blocks,
        };
        if is_hook {
            self.module
                .hooks
                .entry(name)
                .or_default()
                .push(HookBody { priority, func });
        } else {
            self.module.functions.push(func);
        }
        Ok(())
    }

    // -- operands -------------------------------------------------------------

    /// Parses one operand. Tuples `(a, b)` of constants become constant
    /// tuples; tuples containing variables are returned as
    /// `Const::Tuple`-shaped markers the statement parser desugars via
    /// `tuple.pack`.
    fn parse_operand(&mut self) -> RtResult<Operand> {
        match self.bump() {
            Some(Tok::Str(s)) => Ok(Operand::Const(Const::Str(s))),
            Some(Tok::BytesLit(b)) => Ok(Operand::Const(Const::BytesLit(b))),
            Some(Tok::Pattern(p)) => Ok(Operand::Const(Const::Patterns(vec![p]))),
            Some(Tok::LParen) => {
                // Tuple operand.
                let mut elems = Vec::new();
                loop {
                    self.skip_newlines();
                    if self.eat(&Tok::RParen) {
                        break;
                    }
                    elems.push(self.parse_operand()?);
                    self.eat(&Tok::Comma);
                }
                // All-constant tuples collapse to a constant.
                if elems.iter().all(|e| matches!(e, Operand::Const(_))) {
                    let consts = elems
                        .into_iter()
                        .map(|e| match e {
                            Operand::Const(c) => c,
                            _ => unreachable!(),
                        })
                        .collect();
                    Ok(Operand::Const(Const::Tuple(consts)))
                } else {
                    // Marker: the caller must desugar via tuple.pack.
                    Err(self.err("non-constant tuple operands must be desugared by the caller"))
                }
            }
            Some(Tok::Atom(a)) => self.classify_atom(a),
            other => Err(self.err(&format!("expected operand, found {other:?}"))),
        }
    }

    /// Parses one operand, desugaring non-constant tuples into a fresh
    /// temporary via `tuple.pack` (emitted into `pre`).
    fn parse_operand_desugared(
        &mut self,
        pre: &mut Vec<Instr>,
        locals: &mut Vec<(String, Type)>,
    ) -> RtResult<Operand> {
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            let mut elems = Vec::new();
            loop {
                self.skip_newlines();
                if self.eat(&Tok::RParen) {
                    break;
                }
                elems.push(self.parse_operand_desugared(pre, locals)?);
                self.eat(&Tok::Comma);
            }
            if elems.iter().all(|e| matches!(e, Operand::Const(_))) {
                let consts = elems
                    .into_iter()
                    .map(|e| match e {
                        Operand::Const(c) => c,
                        _ => unreachable!(),
                    })
                    .collect();
                return Ok(Operand::Const(Const::Tuple(consts)));
            }
            let tmp = format!("@tuple_{}", pre.len() + locals.len());
            locals.push((tmp.clone(), Type::Any));
            pre.push(Instr::new(Some(&tmp), Opcode::TuplePack, elems));
            return Ok(Operand::Var(tmp));
        }
        self.parse_operand()
    }

    /// Classifies a bare atom into a literal or variable reference.
    fn classify_atom(&mut self, a: String) -> RtResult<Operand> {
        // Constructor-style constants: interval(300), time(1.5), port(80),
        // and addr("2001:db8::1") / net("2001:db8::/32") for the IPv6
        // literal forms the bare-atom lexer cannot express.
        if self.peek() == Some(&Tok::LParen) && matches!(a.as_str(), "addr" | "net") {
            self.bump();
            let lit = match self.bump() {
                Some(Tok::Str(s)) => s,
                Some(Tok::Atom(s)) => s,
                other => return Err(self.err(&format!("bad {a} literal {other:?}"))),
            };
            self.expect(&Tok::RParen, "')'")?;
            return Ok(Operand::Const(if a == "addr" {
                Const::Addr(
                    lit.parse()
                        .map_err(|e: hilti_rt::error::RtError| self.err(&e.message))?,
                )
            } else {
                Const::Net(
                    lit.parse()
                        .map_err(|e: hilti_rt::error::RtError| self.err(&e.message))?,
                )
            }));
        }
        if self.peek() == Some(&Tok::LParen) && matches!(a.as_str(), "interval" | "time" | "double")
        {
            self.bump();
            let arg = self.expect_atom("constructor argument")?;
            self.expect(&Tok::RParen, "')'")?;
            let v: f64 = arg
                .parse()
                .map_err(|_| self.err("bad numeric constructor argument"))?;
            return Ok(Operand::Const(match a.as_str() {
                "interval" => Const::Interval(hilti_rt::time::Interval::from_secs_f64(v)),
                "time" => Const::Time(hilti_rt::time::Time::from_secs_f64(v)),
                _ => Const::Double(v),
            }));
        }
        Ok(Operand::Const(match a.as_str() {
            "True" => Const::Bool(true),
            "False" => Const::Bool(false),
            "Null" | "*" => Const::Null,
            _ => {
                // Enum reference `Type::Label`?
                if let Some((tname, label)) = a.rsplit_once("::") {
                    if tname == "ExpireStrategy" {
                        return Ok(Operand::Const(Const::Int(match label {
                            "Create" => 0,
                            _ => 1,
                        })));
                    }
                    if let Some(labels) = self.enums.get(tname) {
                        if let Some(idx) = labels.iter().position(|l| l == label) {
                            return Ok(Operand::Const(Const::EnumLit(
                                tname.to_owned(),
                                idx as i64,
                            )));
                        }
                    }
                }
                let c0 = a.chars().next().unwrap_or('x');
                if c0.is_ascii_digit() || (c0 == '-' && a.len() > 1) {
                    return Ok(Operand::Const(
                        parse_numeric_literal(&a).map_err(|m| self.err(&m))?,
                    ));
                }
                return Ok(Operand::Var(a));
            }
        }))
    }
}

/// Classifies numeric-looking atoms: int, double, addr, net, port.
fn parse_numeric_literal(a: &str) -> Result<Const, String> {
    if let Some((num, proto)) = a.split_once('/') {
        if matches!(proto, "tcp" | "udp" | "icmp") {
            let port: hilti_rt::addr::Port = format!("{num}/{proto}")
                .parse()
                .map_err(|e: RtError| e.message)?;
            return Ok(Const::Port(port));
        }
        // CIDR network.
        let net: hilti_rt::addr::Network = a.parse().map_err(|e: RtError| e.message)?;
        return Ok(Const::Net(net));
    }
    if a.contains(':') {
        let addr: hilti_rt::addr::Addr = a.parse().map_err(|e: RtError| e.message)?;
        return Ok(Const::Addr(addr));
    }
    let dots = a.bytes().filter(|b| *b == b'.').count();
    if dots == 3 {
        let addr: hilti_rt::addr::Addr = a.parse().map_err(|e: RtError| e.message)?;
        return Ok(Const::Addr(addr));
    }
    if dots == 1 {
        let d: f64 = a.parse().map_err(|_| format!("bad double literal {a}"))?;
        return Ok(Const::Double(d));
    }
    let i: i64 = a.parse().map_err(|_| format!("bad int literal {a}"))?;
    Ok(Const::Int(i))
}

/// Maps textual unpack-format names to [`UnpackFormat`].
fn unpack_format(name: &str, args: &[u32]) -> Option<UnpackFormat> {
    Some(match (name, args) {
        ("UInt8BigEndian" | "UInt8InBigEndian" | "UInt8", []) => UnpackFormat::UIntBE(1),
        ("UInt16BigEndian" | "UInt16InBigEndian" | "UInt16", []) => UnpackFormat::UIntBE(2),
        ("UInt32BigEndian" | "UInt32InBigEndian" | "UInt32", []) => UnpackFormat::UIntBE(4),
        ("UInt64BigEndian" | "UInt64InBigEndian" | "UInt64", []) => UnpackFormat::UIntBE(8),
        ("UInt8LittleEndian", []) => UnpackFormat::UIntLE(1),
        ("UInt16LittleEndian", []) => UnpackFormat::UIntLE(2),
        ("UInt32LittleEndian", []) => UnpackFormat::UIntLE(4),
        ("UInt64LittleEndian", []) => UnpackFormat::UIntLE(8),
        ("UInt8BigEndian" | "UInt8InBigEndian" | "UInt8", [lo, hi]) => UnpackFormat::BitsBE {
            bytes: 1,
            lo: *lo as u8,
            hi: *hi as u8,
        },
        ("UInt16BigEndian" | "UInt16InBigEndian" | "UInt16", [lo, hi]) => UnpackFormat::BitsBE {
            bytes: 2,
            lo: *lo as u8,
            hi: *hi as u8,
        },
        ("IPv4InNetworkOrder" | "IPv4", []) => UnpackFormat::IPv4,
        ("IPv6InNetworkOrder" | "IPv6", []) => UnpackFormat::IPv6,
        ("BytesRun" | "Bytes", [n]) => UnpackFormat::BytesRun(*n),
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Function-body parser

/// Positions of operands that are identifiers (not values) per opcode.
fn ident_positions(op: Opcode) -> &'static [usize] {
    use Opcode::*;
    match op {
        Call | CallVoid | CallC | HookRun | HookRunVoid | CallableBind => &[0],
        StructGet | StructSet | StructIsSet | StructUnset => &[1],
        OverlayGet => &[0, 1],
        EnumFromInt => &[1],
        ExceptionThrow => &[0],
        ProfilerStart | ProfilerStop | ProfilerCount | ProfilerTime => &[0],
        _ => &[],
    }
}

struct FnBody<'p> {
    parser: &'p mut Parser,
    locals: Vec<(String, Type)>,
    blocks: Vec<Block>,
    cur_label: String,
    cur_instrs: Vec<Instr>,
}

impl<'p> FnBody<'p> {
    fn new(parser: &'p mut Parser) -> Self {
        FnBody {
            parser,
            locals: Vec::new(),
            blocks: Vec::new(),
            cur_label: "@entry".to_owned(),
            cur_instrs: Vec::new(),
        }
    }

    fn finish_block(&mut self, term: Terminator, next_label: String) {
        let instrs = std::mem::take(&mut self.cur_instrs);
        self.blocks.push(Block {
            label: std::mem::replace(&mut self.cur_label, next_label),
            instrs,
            term,
        });
    }

    fn parse_until_rbrace(&mut self) -> RtResult<()> {
        loop {
            self.parser.skip_newlines();
            if self.parser.eat(&Tok::RBrace) {
                break;
            }
            if self.parser.peek().is_none() {
                return Err(self.parser.err("unexpected end of input in function body"));
            }
            self.parse_statement()?;
        }
        // Implicit return for a fall-through end.
        let label = self.fresh_after();
        self.finish_block(Terminator::Return(None), label);
        Ok(())
    }

    fn fresh_after(&mut self) -> String {
        self.parser.fresh_label("after")
    }

    fn parse_statement(&mut self) -> RtResult<()> {
        // Label?  `name:` (atom followed by colon).
        let is_label = matches!(
            (
                self.parser.toks.get(self.parser.pos),
                self.parser.toks.get(self.parser.pos + 1)
            ),
            (Some((Tok::Atom(_), _)), Some((Tok::Colon, _)))
        );
        if is_label {
            let label = self.parser.expect_atom("label")?;
            self.parser.bump(); // ':'
                                // Close the current block with a fall-through jump.
            self.finish_block(Terminator::Jump(label.clone()), label);
            return Ok(());
        }

        let first = self.parser.expect_atom("statement")?;
        match first.as_str() {
            "local" => {
                let ty = self.parser.parse_type()?;
                let name = self.parser.expect_atom("local name")?;
                self.locals.push((name.clone(), ty));
                if self.parser.eat(&Tok::Eq) {
                    let mut pre = Vec::new();
                    let op = self
                        .parser
                        .parse_operand_desugared(&mut pre, &mut self.locals)?;
                    self.cur_instrs.extend(pre);
                    self.cur_instrs
                        .push(Instr::new(Some(&name), Opcode::Assign, vec![op]));
                }
                Ok(())
            }
            "return" => {
                let val = if self.parser.peek() == Some(&Tok::Newline) {
                    None
                } else {
                    let mut pre = Vec::new();
                    let op = self
                        .parser
                        .parse_operand_desugared(&mut pre, &mut self.locals)?;
                    self.cur_instrs.extend(pre);
                    Some(op)
                };
                let next = self.fresh_after();
                self.finish_block(Terminator::Return(val), next);
                Ok(())
            }
            "jump" => {
                let label = self.parser.expect_atom("jump target")?;
                let next = self.fresh_after();
                self.finish_block(Terminator::Jump(label), next);
                Ok(())
            }
            "if.else" => {
                let mut pre = Vec::new();
                let cond = self
                    .parser
                    .parse_operand_desugared(&mut pre, &mut self.locals)?;
                self.cur_instrs.extend(pre);
                let then_l = self.parser.expect_atom("then label")?;
                let else_l = self.parser.expect_atom("else label")?;
                let next = self.fresh_after();
                self.finish_block(Terminator::IfElse(cond, then_l, else_l), next);
                Ok(())
            }
            "try" => self.parse_try(),
            _ => self.parse_instr_statement(first),
        }
    }

    fn parse_try(&mut self) -> RtResult<()> {
        self.parser.expect(&Tok::LBrace, "'{' after try")?;
        let catch_label = self.parser.fresh_label("catch");
        let after_label = self.parser.fresh_label("try_after");

        // We don't know the catch binder/kind yet; patch afterwards. The
        // instruction may end up in a block closed by a terminator inside
        // the try body, so remember both coordinates.
        let push_block = self.blocks.len();
        let push_idx = self.cur_instrs.len();
        self.cur_instrs.push(Instr::new(
            None,
            Opcode::PushHandler,
            vec![
                Operand::label(&catch_label),
                Operand::ident("*"),
                Operand::ident(""),
            ],
        ));

        // Try body.
        loop {
            self.parser.skip_newlines();
            if self.parser.eat(&Tok::RBrace) {
                break;
            }
            self.parse_statement()?;
        }
        self.cur_instrs
            .push(Instr::new(None, Opcode::PopHandler, vec![]));
        self.finish_block(Terminator::Jump(after_label.clone()), catch_label.clone());

        // catch ( ref<Kind> binder ) {
        self.parser.skip_newlines();
        let kw = self.parser.expect_atom("'catch'")?;
        if kw != "catch" {
            return Err(self.parser.err("expected 'catch' after try block"));
        }
        self.parser.expect(&Tok::LParen, "'('")?;
        let kind_ty = self.parser.parse_type()?;
        let kind_name = match kind_ty.strip_ref() {
            Type::Struct(n) => n.to_string(),
            Type::Exception => "*".to_owned(),
            other => other.to_string(),
        };
        let binder = self.parser.expect_atom("exception binder")?;
        self.parser.expect(&Tok::RParen, "')'")?;
        self.parser.skip_newlines();
        self.parser.expect(&Tok::LBrace, "'{'")?;
        self.locals.push((binder.clone(), Type::Exception));

        // Patch the handler with the real kind/binder. The instruction sits
        // in the first block closed after the `try` opened (terminators
        // inside the try body may have closed blocks before parse_try's own
        // finish_block did).
        if let Some(block) = self.blocks.get_mut(push_block) {
            if let Some(instr) = block.instrs.get_mut(push_idx) {
                debug_assert_eq!(instr.opcode, Opcode::PushHandler);
                instr.args[1] = Operand::ident(&kind_name);
                instr.args[2] = Operand::ident(&binder);
            }
        }

        // Catch body (runs in its own block).
        loop {
            self.parser.skip_newlines();
            if self.parser.eat(&Tok::RBrace) {
                break;
            }
            self.parse_statement()?;
        }
        self.finish_block(Terminator::Jump(after_label.clone()), after_label);
        Ok(())
    }

    /// `target = mnemonic ops...` / `mnemonic ops...` / function-call sugar.
    fn parse_instr_statement(&mut self, first: String) -> RtResult<()> {
        // Assignment?
        let (target, mnemonic) = if self.parser.peek() == Some(&Tok::Eq) {
            self.parser.bump();
            let m = match self.parser.bump() {
                Some(Tok::Atom(m)) => m,
                Some(Tok::Str(s)) => {
                    // `x = "literal"` assignment sugar.
                    self.cur_instrs.push(Instr::new(
                        Some(&first),
                        Opcode::Assign,
                        vec![Operand::Const(Const::Str(s))],
                    ));
                    return Ok(());
                }
                Some(Tok::LParen) => {
                    // `x = (a, b)` tuple assignment sugar.
                    self.parser.pos -= 1;
                    let mut pre = Vec::new();
                    let op = self
                        .parser
                        .parse_operand_desugared(&mut pre, &mut self.locals)?;
                    self.cur_instrs.extend(pre);
                    self.cur_instrs
                        .push(Instr::new(Some(&first), Opcode::Assign, vec![op]));
                    return Ok(());
                }
                Some(Tok::Pattern(p)) => {
                    self.cur_instrs.push(Instr::new(
                        Some(&first),
                        Opcode::RegexpNew,
                        vec![Operand::Const(Const::Patterns(vec![p]))],
                    ));
                    return Ok(());
                }
                other => {
                    return Err(self
                        .parser
                        .err(&format!("expected mnemonic, found {other:?}")))
                }
            };
            (Some(first), m)
        } else {
            (None, first)
        };

        // Mnemonic aliases from the paper's listings.
        let mnemonic = match mnemonic.as_str() {
            "or" => "bool.or".to_owned(),
            "and" => "bool.and".to_owned(),
            "not" => "bool.not".to_owned(),
            "add" => "int.add".to_owned(),
            "sub" => "int.sub".to_owned(),
            m => m.to_owned(),
        };

        // `x = foo 1 2` where foo is not a mnemonic: could be a plain
        // variable copy `x = y` or a literal assignment.
        let Some(opcode) = Opcode::from_mnemonic(&mnemonic) else {
            // Assignment from operand (variable or literal).
            let op = self.parser.classify_atom(mnemonic)?;
            if let Some(t) = target {
                self.cur_instrs
                    .push(Instr::new(Some(&t), Opcode::Assign, vec![op]));
                return Ok(());
            }
            return Err(self.parser.err("expected an instruction mnemonic"));
        };

        // `new` takes a type operand.
        if opcode == Opcode::New {
            let ty = self.parser.parse_type()?;
            let mut args = vec![Operand::Const(Const::TypeRef(ty))];
            while self.parser.peek() != Some(&Tok::Newline) {
                let mut pre = Vec::new();
                args.push(
                    self.parser
                        .parse_operand_desugared(&mut pre, &mut self.locals)?,
                );
                self.cur_instrs.extend(pre);
            }
            self.cur_instrs
                .push(Instr::new(target.as_deref(), opcode, args));
            return Ok(());
        }

        // Remaining operands until end of line.
        let mut args: Vec<Operand> = Vec::new();
        while self.parser.peek() != Some(&Tok::Newline) && self.parser.peek() != Some(&Tok::RBrace)
        {
            // Function-call sugar: `call f (a, b)` — parenthesized args
            // after the callee expand to individual operands.
            if self.parser.peek() == Some(&Tok::LParen)
                && matches!(
                    opcode,
                    Opcode::Call
                        | Opcode::CallVoid
                        | Opcode::CallC
                        | Opcode::HookRun
                        | Opcode::HookRunVoid
                        | Opcode::CallableBind
                )
                && args.len() == 1
            {
                self.parser.bump();
                loop {
                    self.parser.skip_newlines();
                    if self.parser.eat(&Tok::RParen) {
                        break;
                    }
                    let mut pre = Vec::new();
                    let op = self
                        .parser
                        .parse_operand_desugared(&mut pre, &mut self.locals)?;
                    self.cur_instrs.extend(pre);
                    args.push(op);
                    self.parser.eat(&Tok::Comma);
                }
                continue;
            }
            let mut pre = Vec::new();
            let op = self
                .parser
                .parse_operand_desugared(&mut pre, &mut self.locals)?;
            self.cur_instrs.extend(pre);
            args.push(op);
        }

        // Convert Var → Ident at identifier positions.
        for &idx in ident_positions(opcode) {
            if let Some(slot) = args.get_mut(idx) {
                if let Operand::Var(name) = slot {
                    let name = name.clone();
                    *slot = Operand::ident(&name);
                }
            }
        }

        // Merge multiple pattern literals for regexp.new.
        if opcode == Opcode::RegexpNew {
            let mut pats = Vec::new();
            for a in &args {
                match a {
                    Operand::Const(Const::Patterns(ps)) => pats.extend(ps.clone()),
                    Operand::Const(Const::Str(s)) => pats.push(s.clone()),
                    other => {
                        return Err(self.parser.err(&format!(
                            "regexp.new takes pattern literals, found {other:?}"
                        )))
                    }
                }
            }
            args = vec![Operand::Const(Const::Patterns(pats))];
        }

        self.cur_instrs
            .push(Instr::new(target.as_deref(), opcode, args));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_world_parses() {
        let m = parse_module(
            r#"
module Main
import Hilti

void run() {
    call Hilti::print "Hello, World!"
}
"#,
        )
        .unwrap();
        assert_eq!(m.name, "Main");
        let f = m.function("Main::run").unwrap();
        assert_eq!(f.blocks[0].instrs.len(), 1);
        assert_eq!(f.blocks[0].instrs[0].opcode, Opcode::Call);
        assert_eq!(
            f.blocks[0].instrs[0].args[0],
            Operand::ident("Hilti::print")
        );
    }

    #[test]
    fn figure4_bpf_filter_parses() {
        let m = parse_module(
            r#"
module Bpf

type IP::Header = overlay {
    version: int<8> at 0 unpack UInt8InBigEndian(4, 7),
    hdr_len: int<8> at 0 unpack UInt8InBigEndian(0, 3),
    src: addr at 12 unpack IPv4InNetworkOrder,
    dst: addr at 16 unpack IPv4InNetworkOrder
}

bool filter(ref<bytes> packet) {
    local addr a1
    local addr a2
    local bool b1
    local bool b2
    local bool b3

    a1 = overlay.get IP::Header src packet
    b1 = equal a1 192.168.1.1
    a2 = overlay.get IP::Header dst packet
    b2 = equal a2 192.168.1.1
    b1 = or b1 b2
    b2 = equal 10.0.5.0/24 a1
    b3 = or b1 b2
    return b3
}
"#,
        )
        .unwrap();
        assert!(matches!(
            m.types.get("IP::Header"),
            Some(TypeDef::Overlay(_))
        ));
        let f = m.function("Bpf::filter").unwrap();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.ret, Type::Bool);
        assert_eq!(f.locals.len(), 5);
        let entry = &f.blocks[0];
        assert_eq!(entry.instrs[0].opcode, Opcode::OverlayGet);
        // overlay.get's type and field became idents.
        assert_eq!(entry.instrs[0].args[0], Operand::ident("IP::Header"));
        assert_eq!(entry.instrs[0].args[1], Operand::ident("src"));
        // The alias `or` resolved to bool.or.
        assert!(entry.instrs.iter().any(|i| i.opcode == Opcode::BoolOr));
        assert!(matches!(entry.term, Terminator::Return(Some(_))));
    }

    #[test]
    fn labels_and_branches() {
        let m = parse_module(
            r#"
module M
int<64> f(bool b) {
    if.else b yes no
yes:
    return 1
no:
    return 2
}
"#,
        )
        .unwrap();
        let f = m.function("M::f").unwrap();
        assert!(f.block("yes").is_some());
        assert!(f.block("no").is_some());
        assert!(matches!(
            f.blocks[0].term,
            Terminator::IfElse(Operand::Var(_), _, _)
        ));
    }

    #[test]
    fn try_catch_lowered() {
        let m = parse_module(
            r#"
module M
bool f() {
    local bool b
    try {
        b = assign True
    } catch ( ref<Hilti::IndexError> e ) {
        b = assign False
    }
    return b
}
"#,
        )
        .unwrap();
        let f = m.function("M::f").unwrap();
        let all: Vec<&Instr> = f.blocks.iter().flat_map(|b| b.instrs.iter()).collect();
        assert!(all.iter().any(|i| i.opcode == Opcode::PushHandler));
        assert!(all.iter().any(|i| i.opcode == Opcode::PopHandler));
        let push = all
            .iter()
            .find(|i| i.opcode == Opcode::PushHandler)
            .unwrap();
        assert_eq!(push.args[1], Operand::ident("Hilti::IndexError"));
        assert_eq!(push.args[2], Operand::ident("e"));
    }

    #[test]
    fn globals_and_types() {
        let m = parse_module(
            r#"
module FW
type Rule = struct { net src, net dst }
global ref<classifier<Rule, bool>> rules
global int<64> counter = 0
void noop() {
}
"#,
        )
        .unwrap();
        assert_eq!(m.globals.len(), 2);
        assert!(matches!(m.types.get("Rule"), Some(TypeDef::Struct(f)) if f.len() == 2));
        assert_eq!(m.globals[1].2, Some(Const::Int(0)));
    }

    #[test]
    fn literals_classified() {
        let m = parse_module(
            r#"
module L
void f() {
    local addr a = 10.0.0.1
    local net n = 10.0.0.0/8
    local port p = 80/tcp
    local int<64> i = 42
    local double d = 1.5
    local interval iv = interval(300)
    local bool t = True
    local string s = "hi"
    local bytes b = b"raw"
}
"#,
        )
        .unwrap();
        let f = m.function("L::f").unwrap();
        let inits: Vec<&Const> = f.blocks[0]
            .instrs
            .iter()
            .filter_map(|i| match &i.args[0] {
                Operand::Const(c) => Some(c),
                _ => None,
            })
            .collect();
        assert!(matches!(inits[0], Const::Addr(_)));
        assert!(matches!(inits[1], Const::Net(_)));
        assert!(matches!(inits[2], Const::Port(_)));
        assert!(matches!(inits[3], Const::Int(42)));
        assert!(matches!(inits[4], Const::Double(_)));
        assert!(matches!(inits[5], Const::Interval(_)));
        assert!(matches!(inits[6], Const::Bool(true)));
        assert!(matches!(inits[7], Const::Str(_)));
        assert!(matches!(inits[8], Const::BytesLit(_)));
    }

    #[test]
    fn hooks_with_priority() {
        let m = parse_module(
            r#"
module H
hook void on_event(int<64> x) {
    call Hilti::print x
}
hook void on_event(int<64> x) &priority=5 {
    call Hilti::print "first"
}
"#,
        )
        .unwrap();
        let bodies = m.hooks.get("H::on_event").unwrap();
        assert_eq!(bodies.len(), 2);
        assert_eq!(bodies[0].priority, 0);
        assert_eq!(bodies[1].priority, 5);
    }

    #[test]
    fn enum_definitions_and_refs() {
        let m = parse_module(
            r#"
module E
type Color = enum { Red, Green, Blue }
void f() {
    local Color c = Color::Green
}
"#,
        )
        .unwrap();
        let f = m.function("E::f").unwrap();
        match &f.blocks[0].instrs[0].args[0] {
            Operand::Const(Const::EnumLit(name, idx)) => {
                assert_eq!(name, "Color");
                assert_eq!(*idx, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn regexp_literal() {
        let m = parse_module(
            r#"
module R
void f() {
    local regexp re
    re = regexp.new /[a-z]+/
}
"#,
        )
        .unwrap();
        let f = m.function("R::f").unwrap();
        match &f.blocks[0].instrs[0].args[0] {
            Operand::Const(Const::Patterns(p)) => assert_eq!(p[0], "[a-z]+"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn figure5_firewall_shape_parses() {
        let m = parse_module(
            r#"
module FW

type Rule = struct { net src, net dst }

global ref<classifier<Rule, bool>> rules
global ref<set<tuple<addr, addr>>> dyn

void init_rules(ref<classifier<Rule, bool>> r) {
    classifier.add r (10.3.2.1/32, 10.1.0.0/16) True
    classifier.add r (10.12.0.0/16, 10.1.0.0/16) False
    classifier.add r (10.1.6.0/24, *) True
}

void init_classifier() {
    rules = new classifier<Rule, bool>
    call init_rules (rules)
    classifier.compile rules
    dyn = new set<tuple<addr, addr>>
    set.timeout dyn ExpireStrategy::Access interval(300)
}

bool match_packet(time t, addr src, addr dst) {
    local bool b
    timer_mgr.advance_global t
    b = set.exists dyn (src, dst)
    if.else b return_action lookup

lookup:
    try {
        b = classifier.get rules (src, dst)
    } catch ( ref<Hilti::IndexError> e ) {
        return False
    }
    if.else b add_state return_action

add_state:
    set.insert dyn (src, dst)
    set.insert dyn (dst, src)

return_action:
    return b
}
"#,
        )
        .unwrap();
        assert!(m.function("FW::init_rules").is_some());
        assert!(m.function("FW::match_packet").is_some());
        let f = m.function("FW::match_packet").unwrap();
        assert!(f.block("lookup").is_some());
        assert!(f.block("add_state").is_some());
        assert!(f.block("return_action").is_some());
        // Non-constant tuple (src, dst) desugared through tuple.pack.
        let all: Vec<&Instr> = f.blocks.iter().flat_map(|b| b.instrs.iter()).collect();
        assert!(all.iter().any(|i| i.opcode == Opcode::TuplePack));
    }

    #[test]
    fn ipv6_literals_via_constructors() {
        let m = parse_module(
            r#"
module V6
bool f(addr x) {
    local bool b
    local bool c
    b = equal x addr("2001:db8::1")
    c = equal x net("2001:db8::/32")
    b = or b c
    return b
}
"#,
        )
        .unwrap();
        let f = m.function("V6::f").unwrap();
        let consts: Vec<&Const> = f
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .flat_map(|i| i.args.iter())
            .filter_map(|a| match a {
                Operand::Const(c) => Some(c),
                _ => None,
            })
            .collect();
        assert!(consts
            .iter()
            .any(|c| matches!(c, Const::Addr(a) if a.is_v6())));
        assert!(consts
            .iter()
            .any(|c| matches!(c, Const::Net(n) if n.len() == 32)));
        assert!(parse_module(
            r#"
module V6
void f() {
    local addr a = addr("not-an-address")
}
"#
        )
        .is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_module("not_a_module").is_err());
        assert!(parse_module("module M\nvoid f( {").is_err());
        assert!(parse_module("module M\nvoid f() { x = }").is_err());
        assert!(parse_module("module M\nvoid f() { try { } }").is_err());
    }
}
