//! Virtual threads: Erlang-style concurrency with hash-based placement
//! (§3.2 "Control Flow and Concurrency").
//!
//! Applications see a large supply of lightweight virtual threads named by
//! 64-bit IDs; `thread.schedule f(args) <id>` enqueues an asynchronous
//! invocation on thread `<id>`. A runtime scheduler maps virtual threads to
//! a small pool of hardware workers: virtual thread *t* always lands on
//! worker `t mod N`, so all computation for one virtual thread — and hence,
//! with flow-hash IDs, for one flow — is implicitly serialized with no
//! further synchronization (§3.2).
//!
//! Two layers live here:
//!
//! * [`WorkPool`] — a generic pool of workers, each owning private state of
//!   type `S` built *on* the worker thread (so `S` may be `!Send`: `Rc`-based
//!   program images, `RefCell` script hosts, ...). Jobs are `Send` closures
//!   over `&mut S`; each worker holds a [`PoolHandle`] so jobs can submit
//!   further jobs to any worker, and [`WorkPool::quiesce`] drains such
//!   cascades to a fixed point. The flow-sharded analysis pipeline
//!   (`broscript::parallel`) runs its shards on this layer.
//! * [`ThreadPool`] — the HILTI virtual-thread scheduler built on
//!   `WorkPool`: each worker materializes its own program image and
//!   [`Context`], and `thread.schedule` requests that cross workers are
//!   shipped as deep-copied [`Portable`] values instead of being flagged as
//!   unroutable. "HILTI code is always safe to execute in parallel" (§7).
//!
//! State isolation is structural: every worker owns a private [`Context`]
//! (its own copy of all thread-local globals) *and its own program image* —
//! bytecode values are single-thread reference-counted, so the pool takes a
//! `Send` factory and each worker materializes the program locally (the
//! analog of each hardware thread mapping the shared text segment plus
//! private TLS). Every value crossing the boundary travels as a deep-copied
//! [`Portable`] snapshot.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

use hilti_rt::error::{RtError, RtResult};

use crate::bytecode::CompiledProgram;
use crate::value::{CallableVal, Portable, Value};
use crate::vm::{self, Context};

// ---------------------------------------------------------------------------
// Generic worker pool
// ---------------------------------------------------------------------------

/// A job: an arbitrary closure over one worker's private state.
type PoolJob<S> = Box<dyn FnOnce(&mut S) + Send>;

enum PoolMsg<S> {
    Run(PoolJob<S>),
    /// Reply when all previously queued work is done (barrier).
    Ping(Sender<()>),
    /// Exit the worker loop.
    Stop,
}

/// A cloneable, `Send` handle to a [`WorkPool`]'s submission side. Worker
/// state typically stores one so in-flight jobs can schedule follow-up work
/// on other workers (cross-shard rescheduling).
pub struct PoolHandle<S> {
    senders: Vec<Sender<PoolMsg<S>>>,
    jobs_submitted: Arc<AtomicU64>,
}

// Manual impl: `derive(Clone)` would needlessly require `S: Clone`.
impl<S> Clone for PoolHandle<S> {
    fn clone(&self) -> Self {
        PoolHandle {
            senders: self.senders.clone(),
            jobs_submitted: Arc::clone(&self.jobs_submitted),
        }
    }
}

impl<S: 'static> PoolHandle<S> {
    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Enqueues `job` on `worker`'s FIFO queue. Jobs submitted from one
    /// thread to one worker run in submission order.
    pub fn submit(&self, worker: usize, job: impl FnOnce(&mut S) + Send + 'static) -> RtResult<()> {
        // Increment *before* sending: a stable count across a barrier then
        // proves no job was in flight (see `WorkPool::quiesce`).
        self.jobs_submitted.fetch_add(1, Ordering::SeqCst);
        self.senders[worker]
            .send(PoolMsg::Run(Box::new(job)))
            .map_err(|_| RtError::runtime("worker channel closed"))
    }

    /// Total jobs submitted so far (from all threads).
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted.load(Ordering::SeqCst)
    }

    fn sync(&self) {
        let (tx, rx) = unbounded();
        for s in &self.senders {
            let _ = s.send(PoolMsg::Ping(tx.clone()));
        }
        drop(tx);
        for _ in 0..self.senders.len() {
            let _ = rx.recv();
        }
    }
}

/// A pool of OS worker threads, each owning private state of type `S`.
///
/// `S` is built by the factory *on the worker thread*, so it may be `!Send`;
/// only the job closures cross threads.
pub struct WorkPool<S> {
    handle: PoolHandle<S>,
    handles: Vec<JoinHandle<()>>,
}

impl<S: 'static> WorkPool<S> {
    /// Spawns `workers` threads. Each calls `factory(index, handle)` once to
    /// build its state, then runs jobs from its queue until shutdown.
    pub fn new(
        workers: usize,
        factory: impl Fn(usize, PoolHandle<S>) -> S + Send + Sync + 'static,
    ) -> WorkPool<S> {
        assert!(workers > 0, "need at least one worker");
        let factory = Arc::new(factory);
        // All channels exist before any worker starts, so the handle each
        // worker receives can reach every other worker from the first job.
        let mut senders = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded::<PoolMsg<S>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let handle = PoolHandle {
            senders,
            jobs_submitted: Arc::new(AtomicU64::new(0)),
        };
        let mut handles = Vec::with_capacity(workers);
        for (w, rx) in receivers.into_iter().enumerate() {
            let factory = factory.clone();
            let handle = handle.clone();
            let h = std::thread::Builder::new()
                .name(format!("hilti-worker-{w}"))
                .spawn(move || {
                    let mut state = factory(w, handle);
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            PoolMsg::Run(job) => job(&mut state),
                            PoolMsg::Ping(reply) => {
                                let _ = reply.send(());
                            }
                            PoolMsg::Stop => break,
                        }
                    }
                })
                .expect("spawn worker");
            handles.push(h);
        }
        WorkPool { handle, handles }
    }

    /// A submission handle (cloneable, `Send`).
    pub fn handle(&self) -> PoolHandle<S> {
        self.handle.clone()
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.handle.workers()
    }

    /// Enqueues `job` on `worker`'s queue.
    pub fn submit(&self, worker: usize, job: impl FnOnce(&mut S) + Send + 'static) -> RtResult<()> {
        self.handle.submit(worker, job)
    }

    /// Total jobs submitted so far.
    pub fn jobs_submitted(&self) -> u64 {
        self.handle.jobs_submitted()
    }

    /// Blocks until every worker has drained all work queued *so far*
    /// (including its startup state build). A single barrier does not cover
    /// jobs that running jobs submit to other workers — see
    /// [`WorkPool::quiesce`] for that.
    pub fn sync(&self) {
        self.handle.sync();
    }

    /// Blocks until the pool is fully idle, including cascades of jobs that
    /// submit further cross-worker jobs.
    ///
    /// Proof sketch: the submission counter is incremented *before* the job
    /// is enqueued, and a `sync` barrier flushes every queue behind all
    /// sends observed so far. If the counter is identical before and after
    /// two consecutive barriers, then no job ran during the first barrier
    /// round that could have enqueued work racing the second — every
    /// submission had already been counted, and both barriers flushed it.
    pub fn quiesce(&self) {
        loop {
            let before = self.jobs_submitted();
            self.sync();
            self.sync();
            if self.jobs_submitted() == before {
                break;
            }
        }
    }

    /// Stops all workers after draining their queues (including cascading
    /// resubmissions) and joins the threads. Worker state is dropped on the
    /// worker thread; to harvest results, submit a job that sends them over
    /// a channel before calling this.
    pub fn shutdown(self) {
        self.quiesce();
        for s in &self.handle.senders {
            let _ = s.send(PoolMsg::Stop);
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// HILTI virtual-thread scheduler
// ---------------------------------------------------------------------------

/// What a worker hands back at shutdown.
pub struct WorkerReport {
    pub worker: usize,
    pub jobs_run: u64,
    pub output: Vec<String>,
    pub errors: Vec<String>,
}

/// Per-worker state: a private program image and context (`!Send` — built on
/// the worker thread), plus a pool handle for shipping rescheduled work.
struct HiltiWorker {
    worker: usize,
    prog: CompiledProgram,
    ctx: Context,
    jobs_run: u64,
    errors: Vec<String>,
    pool: PoolHandle<HiltiWorker>,
}

fn run_job(st: &mut HiltiWorker, vthread: u64, func: &str, args: &[Portable]) {
    st.jobs_run += 1;
    st.ctx.thread_id = vthread;
    let vals: Vec<Value> = args.iter().map(Value::from_portable).collect();
    if let Err(e) = vm::call(&st.prog, &mut st.ctx, func, &vals) {
        st.errors.push(format!("{func}: {e}"));
    }
    drain_scheduled(st);
}

/// Routes `thread.schedule` requests accumulated in the context: same-worker
/// targets run inline (they are serialized with us by construction);
/// cross-worker targets ship as a new job with deep-copied bound arguments.
fn drain_scheduled(st: &mut HiltiWorker) {
    while !st.ctx.scheduled.is_empty() {
        let batch: Vec<(u64, CallableVal)> = st.ctx.scheduled.drain(..).collect();
        for (tid, c) in batch {
            let target = placement(tid, st.pool.workers());
            if target == st.worker {
                st.ctx.thread_id = tid;
                if let Err(e) = vm::run_callable(&st.prog, &mut st.ctx, &c, &[]) {
                    st.errors.push(format!("{}: {e}", c.func));
                }
                continue;
            }
            let bound = match c
                .bound
                .iter()
                .map(Value::to_portable)
                .collect::<RtResult<Vec<_>>>()
            {
                Ok(b) => b,
                Err(e) => {
                    st.errors.push(format!("{}: {e}", c.func));
                    continue;
                }
            };
            let func = c.func.to_string();
            if let Err(e) = st.pool.submit(target, move |st2: &mut HiltiWorker| {
                st2.jobs_run += 1;
                st2.ctx.thread_id = tid;
                let c2 = CallableVal {
                    func: Rc::from(func.as_str()),
                    bound: bound.iter().map(Value::from_portable).collect(),
                };
                if let Err(e) = vm::run_callable(&st2.prog, &mut st2.ctx, &c2, &[]) {
                    st2.errors.push(format!("{}: {e}", c2.func));
                }
                drain_scheduled(st2);
            }) {
                st.errors.push(format!("{}: {e}", c.func));
            }
        }
    }
}

/// The virtual-thread scheduler over a pool of hardware workers.
pub struct ThreadPool {
    pool: WorkPool<HiltiWorker>,
}

impl ThreadPool {
    /// Spawns `workers` hardware threads. Each worker materializes its own
    /// program image from `factory` and executes jobs against a private
    /// context.
    pub fn new(
        factory: impl Fn() -> CompiledProgram + Send + Sync + 'static,
        workers: usize,
    ) -> ThreadPool {
        let pool = WorkPool::new(workers, move |w, handle| {
            let prog = factory();
            let ctx = Context::for_program(&prog);
            HiltiWorker {
                worker: w,
                prog,
                ctx,
                jobs_run: 0,
                errors: Vec::new(),
                pool: handle,
            }
        });
        ThreadPool { pool }
    }

    /// Number of hardware workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Schedules `func(args)` onto virtual thread `vthread`
    /// (`thread.schedule`). Values are deep-copied via their portable form.
    pub fn schedule(&self, vthread: u64, func: &str, args: &[Value]) -> RtResult<()> {
        let portable = args
            .iter()
            .map(Value::to_portable)
            .collect::<RtResult<Vec<_>>>()?;
        self.schedule_portable(vthread, func, portable)
    }

    /// Schedules with already-portable arguments.
    pub fn schedule_portable(&self, vthread: u64, func: &str, args: Vec<Portable>) -> RtResult<()> {
        let worker = placement(vthread, self.pool.workers());
        let func = func.to_owned();
        self.pool
            .submit(worker, move |st| run_job(st, vthread, &func, &args))
    }

    /// Total jobs submitted so far (external schedules plus cross-worker
    /// reschedules).
    pub fn jobs_submitted(&self) -> u64 {
        self.pool.jobs_submitted()
    }

    /// Blocks until every worker has drained all work queued so far
    /// (including its startup program build). Useful for excluding
    /// warm-up from measurements and for flushing between phases.
    pub fn sync(&self) {
        self.pool.sync();
    }

    /// Stops all workers after draining their queues — including jobs that
    /// scheduled further work onto *other* virtual threads — and collects
    /// reports.
    pub fn shutdown(self) -> Vec<WorkerReport> {
        self.pool.quiesce();
        let workers = self.pool.workers();
        let (tx, rx) = unbounded();
        for w in 0..workers {
            let tx = tx.clone();
            // Harvest jobs do not count as virtual-thread jobs.
            let _ = self.pool.submit(w, move |st: &mut HiltiWorker| {
                let _ = tx.send(WorkerReport {
                    worker: st.worker,
                    jobs_run: st.jobs_run,
                    output: st.ctx.take_output(),
                    errors: std::mem::take(&mut st.errors),
                });
            });
        }
        drop(tx);
        let mut reports = Vec::with_capacity(workers);
        for _ in 0..workers {
            if let Ok(r) = rx.recv() {
                reports.push(r);
            }
        }
        self.pool.shutdown();
        reports.sort_by_key(|r| r.worker);
        reports
    }
}

/// The worker a virtual thread maps to under `workers`-way scheduling.
pub fn placement(vthread: u64, workers: usize) -> usize {
    (vthread % workers.max(1) as u64) as usize
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    #[test]
    fn workers_own_private_state() {
        // Each worker's state counts only jobs aimed at it.
        let pool = WorkPool::new(4, |w, _handle| (w, 0u64));
        for w in 0..4 {
            for _ in 0..=w {
                pool.submit(w, |st: &mut (usize, u64)| st.1 += 1).unwrap();
            }
        }
        let (tx, rx) = unbounded();
        for w in 0..4 {
            let tx = tx.clone();
            pool.submit(w, move |st: &mut (usize, u64)| {
                let _ = tx.send(*st);
            })
            .unwrap();
        }
        drop(tx);
        let mut got: Vec<(usize, u64)> = Vec::new();
        for _ in 0..4 {
            got.push(rx.recv().unwrap());
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        pool.shutdown();
    }

    #[test]
    fn state_may_be_not_send() {
        // Rc is !Send; the factory builds it on the worker thread.
        let pool = WorkPool::new(2, |_w, _handle| {
            std::rc::Rc::new(std::cell::Cell::new(0u64))
        });
        pool.submit(0, |st| st.set(st.get() + 5)).unwrap();
        let (tx, rx) = unbounded();
        pool.submit(0, move |st| {
            let _ = tx.send(st.get());
        })
        .unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        pool.shutdown();
    }

    struct ChainState {
        worker: usize,
        handle: PoolHandle<ChainState>,
        hits: Arc<AtomicU64>,
    }

    fn hop(st: &mut ChainState, remaining: u64) {
        st.hits.fetch_add(1, Ordering::SeqCst);
        if remaining > 0 {
            let next = (st.worker + 1) % st.handle.workers();
            st.handle
                .submit(next, move |st2| hop(st2, remaining - 1))
                .unwrap();
        }
    }

    #[test]
    fn quiesce_drains_cross_worker_cascades() {
        // A chain of jobs, each submitting the next hop to another worker.
        // One sync barrier cannot see the whole chain; quiesce must.
        let hits = Arc::new(AtomicU64::new(0));
        let pool = WorkPool::new(3, {
            let hits = hits.clone();
            move |w, handle| ChainState {
                worker: w,
                handle,
                hits: hits.clone(),
            }
        });
        pool.submit(0, |st| hop(st, 23)).unwrap();
        pool.quiesce();
        assert_eq!(hits.load(Ordering::SeqCst), 24);
        pool.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Program;
    use crate::passes::OptLevel;

    fn factory(src: &'static str) -> impl Fn() -> CompiledProgram + Send + Sync + 'static {
        move || {
            let p = Program::from_sources(&[src], OptLevel::Full).unwrap();
            p.compiled().clone()
        }
    }

    const COUNTER_SRC: &str = r#"
module M
global int<64> count = 0

void bump(int<64> n) {
    count = int.add count n
}

void report() {
    call Hilti::print count
}
"#;

    #[test]
    fn jobs_execute_on_workers() {
        let pool = ThreadPool::new(factory(COUNTER_SRC), 4);
        for i in 0..100u64 {
            pool.schedule(i, "M::bump", &[Value::Int(1)]).unwrap();
        }
        // Ask every worker to report its own thread-local count.
        for w in 0..4u64 {
            pool.schedule(w, "M::report", &[]).unwrap();
        }
        let reports = pool.shutdown();
        assert_eq!(reports.len(), 4);
        let total_jobs: u64 = reports.iter().map(|r| r.jobs_run).sum();
        assert_eq!(total_jobs, 104);
        // Each worker saw its own 25 bumps (100 vthreads round-robin).
        let counts: Vec<u64> = reports
            .iter()
            .flat_map(|r| r.output.iter())
            .map(|line| line.parse().unwrap())
            .collect();
        assert_eq!(counts.iter().sum::<u64>(), 100);
        for c in counts {
            assert_eq!(c, 25, "deterministic placement gives 25 each");
        }
    }

    #[test]
    fn same_vthread_is_serialized() {
        // All jobs for vthread 7 run on one worker in submission order; a
        // racing increment would lose updates, a serialized one cannot.
        let pool = ThreadPool::new(factory(COUNTER_SRC), 8);
        for _ in 0..1000 {
            pool.schedule(7, "M::bump", &[Value::Int(1)]).unwrap();
        }
        pool.schedule(7, "M::report", &[]).unwrap();
        let reports = pool.shutdown();
        let out: Vec<&String> = reports.iter().flat_map(|r| r.output.iter()).collect();
        assert_eq!(out, vec!["1000"]);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let pool = ThreadPool::new(
            factory("module M\nvoid boom() {\n  local int<64> x\n  x = int.div 1 0\n}\n"),
            2,
        );
        pool.schedule(0, "M::boom", &[]).unwrap();
        pool.schedule(1, "M::boom", &[]).unwrap();
        let reports = pool.shutdown();
        let errors: usize = reports.iter().map(|r| r.errors.len()).sum();
        assert_eq!(errors, 2);
    }

    #[test]
    fn placement_is_stable() {
        assert_eq!(placement(0, 4), 0);
        assert_eq!(placement(5, 4), 1);
        assert_eq!(placement(5, 1), 0);
        for t in 0..100 {
            assert_eq!(placement(t, 4), placement(t, 4));
        }
    }

    #[test]
    fn heap_values_deep_copy_across() {
        // A bytes value sent to a worker is an independent copy.
        let pool = ThreadPool::new(
            factory(
                r#"
module M
void consume(ref<bytes> b) {
    bytes.append b "-worker"
    local string s
    s = bytes.to_string b
    call Hilti::print s
}
"#,
            ),
            1,
        );
        let b = hilti_rt::Bytes::from_slice(b"orig");
        pool.schedule(0, "M::consume", &[Value::Bytes(b.clone())])
            .unwrap();
        let reports = pool.shutdown();
        assert_eq!(reports[0].output, vec!["orig-worker"]);
        // Sender's copy untouched.
        assert_eq!(b.to_vec(), b"orig");
    }

    const RELAY_SRC: &str = r#"
module M
global int<64> n = 0

void bump(int<64> k) {
    n = int.add n k
    call Hilti::print n
}

void relay(int<64> tid) {
    local callable c
    c = callable.bind bump (1)
    thread.schedule tid c
}
"#;

    #[test]
    fn cross_worker_reschedules_are_drained_by_shutdown() {
        // Every relay runs on worker 0 (vthread 0) and schedules a bump onto
        // vthread `tid`. Targets on worker 0 (tids 0, 4) run inline; the six
        // others ship to workers 1-3 as fresh jobs the shutdown barrier must
        // drain before harvesting.
        let pool = ThreadPool::new(factory(RELAY_SRC), 4);
        for tid in 0..8i64 {
            pool.schedule(0, "M::relay", &[Value::Int(tid)]).unwrap();
        }
        let reports = pool.shutdown();
        for r in &reports {
            assert!(r.errors.is_empty(), "worker {}: {:?}", r.worker, r.errors);
            // Each worker received bumps for exactly two tids, in tid order
            // (single producer, FIFO channel), so its counter prints 1 then 2.
            assert_eq!(r.output, vec!["1", "2"], "worker {}", r.worker);
        }
        // 8 relay jobs + 6 cross-worker bump jobs (inline runs don't count).
        let total_jobs: u64 = reports.iter().map(|r| r.jobs_run).sum();
        assert_eq!(total_jobs, 14);
    }

    #[test]
    fn rescheduled_chain_across_workers_serializes_per_vthread() {
        // relay -> bump on a *different* worker, repeated; the bumps for one
        // vthread all land on its home worker and serialize there.
        let pool = ThreadPool::new(factory(RELAY_SRC), 2);
        for _ in 0..50 {
            pool.schedule(0, "M::relay", &[Value::Int(1)]).unwrap();
        }
        let reports = pool.shutdown();
        let w1 = &reports[1];
        assert!(w1.errors.is_empty());
        assert_eq!(w1.jobs_run, 50);
        let expect: Vec<String> = (1..=50).map(|i| i.to_string()).collect();
        assert_eq!(w1.output, expect);
    }
}

#[cfg(test)]
mod sync_tests {
    use super::*;
    use crate::host::Program;
    use crate::passes::OptLevel;

    #[test]
    fn sync_waits_for_queued_work() {
        let pool = ThreadPool::new(
            || {
                let p = Program::from_sources(
                    &["module M\nglobal int<64> n = 0\nvoid bump() {\n    n = int.add n 1\n}\nvoid report() {\n    call Hilti::print n\n}\n"],
                    OptLevel::Full,
                )
                .unwrap();
                p.compiled().clone()
            },
            3,
        );
        pool.sync(); // startup flushed
        for i in 0..300u64 {
            pool.schedule(i, "M::bump", &[]).unwrap();
        }
        pool.sync(); // all bumps done
        for w in 0..3u64 {
            pool.schedule(w, "M::report", &[]).unwrap();
        }
        let reports = pool.shutdown();
        let total: u64 = reports
            .iter()
            .flat_map(|r| r.output.iter())
            .map(|l| l.parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 300);
    }
}
