//! Virtual threads: Erlang-style concurrency with hash-based placement
//! (§3.2 "Control Flow and Concurrency").
//!
//! Applications see a large supply of lightweight virtual threads named by
//! 64-bit IDs; `thread.schedule f(args) <id>` enqueues an asynchronous
//! invocation on thread `<id>`. A runtime scheduler maps virtual threads to
//! a small pool of hardware workers: virtual thread *t* always lands on
//! worker `t mod N`, so all computation for one virtual thread — and hence,
//! with flow-hash IDs, for one flow — is implicitly serialized with no
//! further synchronization (§3.2).
//!
//! State isolation is structural: every worker owns a private
//! [`Context`] (its own copy of all thread-local globals) *and its own
//! program image* — bytecode values are single-thread reference-counted, so
//! the pool takes a `Send` factory and each worker materializes the program
//! locally (the analog of each hardware thread mapping the shared text
//! segment plus private TLS). Every value crossing the boundary travels as
//! a deep-copied [`Portable`] snapshot. "HILTI code is always safe to
//! execute in parallel" (§7).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

use hilti_rt::error::{RtError, RtResult};

use crate::bytecode::CompiledProgram;
use crate::value::{Portable, Value};
use crate::vm::{self, Context};

/// A job: run `func` with portable args on some virtual thread.
struct Job {
    vthread: u64,
    func: String,
    args: Vec<Portable>,
}

enum Msg {
    Run(Job),
    /// Reply when all previously queued work is done (barrier).
    Ping(Sender<()>),
    /// Drain and stop; reply with the worker's output lines.
    Stop(Sender<WorkerReport>),
}

/// What a worker hands back at shutdown.
pub struct WorkerReport {
    pub worker: usize,
    pub jobs_run: u64,
    pub output: Vec<String>,
    pub errors: Vec<String>,
}

/// The virtual-thread scheduler over a pool of hardware workers.
pub struct ThreadPool {
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<()>>,
    jobs_submitted: Arc<AtomicU64>,
}

impl ThreadPool {
    /// Spawns `workers` hardware threads. Each worker materializes its own
    /// program image from `factory` and executes jobs against a private
    /// context.
    pub fn new(
        factory: impl Fn() -> CompiledProgram + Send + Sync + 'static,
        workers: usize,
    ) -> ThreadPool {
        assert!(workers > 0, "need at least one worker");
        let factory = Arc::new(factory);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded::<Msg>();
            let factory = factory.clone();
            let handle = std::thread::Builder::new()
                .name(format!("hilti-worker-{w}"))
                .spawn(move || {
                    let prog = factory();
                    let mut ctx = Context::for_program(&prog);
                    let mut jobs_run = 0u64;
                    let mut errors: Vec<String> = Vec::new();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Run(job) => {
                                ctx.thread_id = job.vthread;
                                jobs_run += 1;
                                let args: Vec<Value> =
                                    job.args.iter().map(Value::from_portable).collect();
                                if let Err(e) = vm::call(&prog, &mut ctx, &job.func, &args) {
                                    errors.push(format!("{}: {e}", job.func));
                                }
                                // Jobs may themselves schedule further work;
                                // those requests stay queued in the context
                                // and are surfaced as errors if unroutable.
                                for (tid, c) in ctx.scheduled.drain(..).collect::<Vec<_>>() {
                                    // Same-worker rescheduling executes
                                    // inline (we cannot reach the pool from
                                    // inside a worker); cross-worker jobs
                                    // are reported.
                                    let args: Vec<Value> = Vec::new();
                                    ctx.thread_id = tid;
                                    if let Err(e) =
                                        vm::run_callable(&prog, &mut ctx, &c, &args)
                                    {
                                        errors.push(format!("{}: {e}", c.func));
                                    }
                                }
                            }
                            Msg::Ping(reply) => {
                                let _ = reply.send(());
                            }
                            Msg::Stop(reply) => {
                                let _ = reply.send(WorkerReport {
                                    worker: w,
                                    jobs_run,
                                    output: ctx.take_output(),
                                    errors: std::mem::take(&mut errors),
                                });
                                break;
                            }
                        }
                    }
                })
                .expect("spawn worker");
            senders.push(tx);
            handles.push(handle);
        }
        ThreadPool {
            senders,
            handles,
            jobs_submitted: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of hardware workers.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Schedules `func(args)` onto virtual thread `vthread`
    /// (`thread.schedule`). Values are deep-copied via their portable form.
    pub fn schedule(&self, vthread: u64, func: &str, args: &[Value]) -> RtResult<()> {
        let portable = args
            .iter()
            .map(Value::to_portable)
            .collect::<RtResult<Vec<_>>>()?;
        self.schedule_portable(vthread, func, portable)
    }

    /// Schedules with already-portable arguments.
    pub fn schedule_portable(
        &self,
        vthread: u64,
        func: &str,
        args: Vec<Portable>,
    ) -> RtResult<()> {
        let worker = (vthread % self.senders.len() as u64) as usize;
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.senders[worker]
            .send(Msg::Run(Job {
                vthread,
                func: func.to_owned(),
                args,
            }))
            .map_err(|_| RtError::runtime("worker channel closed"))
    }

    /// Total jobs submitted so far.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted.load(Ordering::Relaxed)
    }

    /// Blocks until every worker has drained all work queued so far
    /// (including its startup program build). Useful for excluding
    /// warm-up from measurements and for flushing between phases.
    pub fn sync(&self) {
        let (tx, rx) = unbounded();
        for s in &self.senders {
            let _ = s.send(Msg::Ping(tx.clone()));
        }
        drop(tx);
        for _ in 0..self.senders.len() {
            let _ = rx.recv();
        }
    }

    /// Stops all workers after draining their queues and collects reports.
    pub fn shutdown(self) -> Vec<WorkerReport> {
        let mut reports = Vec::with_capacity(self.senders.len());
        let (reply_tx, reply_rx) = unbounded();
        for tx in &self.senders {
            let _ = tx.send(Msg::Stop(reply_tx.clone()));
        }
        drop(reply_tx);
        while let Ok(r) = reply_rx.recv() {
            reports.push(r);
        }
        for h in self.handles {
            let _ = h.join();
        }
        reports.sort_by_key(|r| r.worker);
        reports
    }
}

/// The worker a virtual thread maps to under `workers`-way scheduling.
pub fn placement(vthread: u64, workers: usize) -> usize {
    (vthread % workers.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Program;
    use crate::passes::OptLevel;

    fn factory(src: &'static str) -> impl Fn() -> CompiledProgram + Send + Sync + 'static {
        move || {
            let p = Program::from_sources(&[src], OptLevel::Full).unwrap();
            p.compiled().clone()
        }
    }

    const COUNTER_SRC: &str = r#"
module M
global int<64> count = 0

void bump(int<64> n) {
    count = int.add count n
}

void report() {
    call Hilti::print count
}
"#;

    #[test]
    fn jobs_execute_on_workers() {
        let pool = ThreadPool::new(factory(COUNTER_SRC), 4);
        for i in 0..100u64 {
            pool.schedule(i, "M::bump", &[Value::Int(1)]).unwrap();
        }
        // Ask every worker to report its own thread-local count.
        for w in 0..4u64 {
            pool.schedule(w, "M::report", &[]).unwrap();
        }
        let reports = pool.shutdown();
        assert_eq!(reports.len(), 4);
        let total_jobs: u64 = reports.iter().map(|r| r.jobs_run).sum();
        assert_eq!(total_jobs, 104);
        // Each worker saw its own 25 bumps (100 vthreads round-robin).
        let counts: Vec<u64> = reports
            .iter()
            .flat_map(|r| r.output.iter())
            .map(|line| line.parse().unwrap())
            .collect();
        assert_eq!(counts.iter().sum::<u64>(), 100);
        for c in counts {
            assert_eq!(c, 25, "deterministic placement gives 25 each");
        }
    }

    #[test]
    fn same_vthread_is_serialized() {
        // All jobs for vthread 7 run on one worker in submission order; a
        // racing increment would lose updates, a serialized one cannot.
        let pool = ThreadPool::new(factory(COUNTER_SRC), 8);
        for _ in 0..1000 {
            pool.schedule(7, "M::bump", &[Value::Int(1)]).unwrap();
        }
        pool.schedule(7, "M::report", &[]).unwrap();
        let reports = pool.shutdown();
        let out: Vec<&String> = reports.iter().flat_map(|r| r.output.iter()).collect();
        assert_eq!(out, vec!["1000"]);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let pool = ThreadPool::new(
            factory("module M\nvoid boom() {\n  local int<64> x\n  x = int.div 1 0\n}\n"),
            2,
        );
        pool.schedule(0, "M::boom", &[]).unwrap();
        pool.schedule(1, "M::boom", &[]).unwrap();
        let reports = pool.shutdown();
        let errors: usize = reports.iter().map(|r| r.errors.len()).sum();
        assert_eq!(errors, 2);
    }

    #[test]
    fn placement_is_stable() {
        assert_eq!(placement(0, 4), 0);
        assert_eq!(placement(5, 4), 1);
        assert_eq!(placement(5, 1), 0);
        for t in 0..100 {
            assert_eq!(placement(t, 4), placement(t, 4));
        }
    }

    #[test]
    fn heap_values_deep_copy_across() {
        // A bytes value sent to a worker is an independent copy.
        let pool = ThreadPool::new(
            factory(
                r#"
module M
void consume(ref<bytes> b) {
    bytes.append b "-worker"
    local string s
    s = bytes.to_string b
    call Hilti::print s
}
"#,
            ),
            1,
        );
        let b = hilti_rt::Bytes::from_slice(b"orig");
        pool.schedule(0, "M::consume", &[Value::Bytes(b.clone())])
            .unwrap();
        let reports = pool.shutdown();
        assert_eq!(reports[0].output, vec!["orig-worker"]);
        // Sender's copy untouched.
        assert_eq!(b.to_vec(), b"orig");
    }
}

#[cfg(test)]
mod sync_tests {
    use super::*;
    use crate::host::Program;
    use crate::passes::OptLevel;

    #[test]
    fn sync_waits_for_queued_work() {
        let pool = ThreadPool::new(
            || {
                let p = Program::from_sources(
                    &["module M\nglobal int<64> n = 0\nvoid bump() {\n    n = int.add n 1\n}\nvoid report() {\n    call Hilti::print n\n}\n"],
                    OptLevel::Full,
                )
                .unwrap();
                p.compiled().clone()
            },
            3,
        );
        pool.sync(); // startup flushed
        for i in 0..300u64 {
            pool.schedule(i, "M::bump", &[]).unwrap();
        }
        pool.sync(); // all bumps done
        for w in 0..3u64 {
            pool.schedule(w, "M::report", &[]).unwrap();
        }
        let reports = pool.shutdown();
        let total: u64 = reports
            .iter()
            .flat_map(|r| r.output.iter())
            .map(|l| l.parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 300);
    }
}
