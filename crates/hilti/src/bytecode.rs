//! Lowering linked IR to flat register bytecode.
//!
//! This stage is our stand-in for the paper's LLVM backend (see DESIGN.md):
//! it performs the work a native code generator does before emitting
//! machine instructions — resolving every name to an index, flattening the
//! CFG to program counters, converting constants to runtime representation
//! (including compiling regexp literals), and pre-splitting identifier
//! operands — so that the VM's hot loop executes with array indexing only,
//! no hash lookups and no constant re-materialization. The interpreter
//! baseline (`crate::interp`) deliberately skips all of this, which is
//! exactly the compiled-vs-interpreted gap §6.5 measures.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use hilti_rt::error::{RtError, RtResult};
use hilti_rt::overlay::OverlayType;
use hilti_rt::regexp::Regex;

use crate::ir::{Const, Function, Opcode, Operand, Terminator, TypeDef};
use crate::linker::Linked;
use crate::types::Type;
use crate::value::Value;

/// A resolved operand.
#[derive(Clone, Debug)]
pub enum COperand {
    /// Frame slot (parameters first, then locals/temps).
    Slot(u16),
    /// Thread-local global slot.
    Global(u32),
    /// Pre-converted constant value.
    Value(Value),
}

/// A resolved instruction.
#[derive(Clone, Debug)]
pub enum CInstr {
    /// A data instruction evaluated through `ops::eval`.
    Op {
        opcode: Opcode,
        target: Option<u16>,
        args: Box<[COperand]>,
        idents: Rc<[String]>,
    },
    /// Direct call to a HILTI function.
    Call {
        target: Option<u16>,
        func: u32,
        args: Box<[COperand]>,
    },
    /// Call to a host-registered (C-level) function.
    CallHost {
        target: Option<u16>,
        name: Rc<str>,
        args: Box<[COperand]>,
    },
    /// Run all bodies of a hook.
    RunHook {
        hook: u32,
        args: Box<[COperand]>,
    },
    /// Call through a callable value (extra args appended to bound ones).
    CallCallable {
        target: Option<u16>,
        callable: COperand,
        args: Box<[COperand]>,
    },
    /// Instantiate a type (`new`).
    New {
        target: u16,
        ty: Type,
        args: Box<[COperand]>,
    },
    Jump(u32),
    Branch {
        cond: COperand,
        then_pc: u32,
        else_pc: u32,
    },
    Return(Option<COperand>),
    PushHandler {
        pc: u32,
        kind: Rc<str>,
        binder: Option<u16>,
    },
    PopHandler,
    Yield,
    /// Execute `inner` (which writes the function's scratch slot), then
    /// move the scratch slot into global `global`. This is how instructions
    /// targeting a thread-local global lower.
    GlobalStore {
        global: u32,
        inner: Box<CInstr>,
    },

    // --- specialized tier ------------------------------------------------
    // Emitted by `crate::specialize`, never by lowering itself. These are
    // the typed superinstructions of the clone-free fast path: the VM
    // executes them inline on `frame.slots`, with no operand marshalling
    // and no `ops::eval` round-trip. Operand slots are statically typed
    // (`CFunc::slot_types`), but values are still checked at run time so a
    // mistyped slot raises the same catchable TypeError as the generic
    // path (locals start as Null).
    /// `dst = a + b`, wrapping (semantics of `int.add` in `ops::eval`).
    AddInt {
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    /// `dst = a - b`, wrapping.
    SubInt {
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    /// `dst = a * b`, wrapping.
    MulInt {
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    /// Bitwise and shift forms (`int.and`/`or`/`xor`/`shl`/`shr`).
    BitInt {
        op: IntBit,
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    /// `dst = a <cmp> b` as bool.
    CmpInt {
        cmp: IntCmp,
        dst: u16,
        a: IntSrc,
        b: IntSrc,
    },
    /// Fused compare-and-branch superinstruction replacing a `CmpInt`
    /// immediately followed by a branch on its result. It still writes the
    /// bool `dst` slot (so later reads of the flag stay correct) and the
    /// original branch remains at the following pc for explicit jump
    /// targets; straight-line execution just never revisits it.
    BrIfInt {
        cmp: IntCmp,
        a: IntSrc,
        b: IntSrc,
        dst: u16,
        then_pc: u32,
        else_pc: u32,
    },
    /// Slot-to-slot move (`assign` between statically known locals).
    MoveSlot {
        dst: u16,
        src: u16,
    },
    /// Constant load into a slot.
    LoadImm {
        dst: u16,
        v: Value,
    },
    /// Branch on a slot statically known to be bool.
    BrBool {
        cond: u16,
        then_pc: u32,
        else_pc: u32,
    },

    // --- inline-cache tier -----------------------------------------------
    // Emitted by `crate::tier` when a hot function is re-lowered with
    // runtime feedback, never by lowering or the static specializer. Each
    // variant replaces a generic `Op` at an access/call site and carries a
    // per-site cache (`IcSite`). The guard is checked first; on a miss the
    // site falls back to exactly the generic resolution (and refills, up to
    // `IcSite::cap` entries, after which the site de-optimizes). Semantics
    // — including error kinds and messages — are byte-identical to the
    // generic path, so tier-up is observationally invisible.
    /// `struct.get` with a monomorphic (type-name → field-index) cache.
    StructGetIC {
        target: Option<u16>,
        obj: COperand,
        field: Rc<str>,
        ic: Rc<RefCell<IcSite>>,
    },
    /// `struct.set` with the same cache shape.
    StructSetIC {
        target: Option<u16>,
        obj: COperand,
        value: COperand,
        field: Rc<str>,
        ic: Rc<RefCell<IcSite>>,
    },
    /// `overlay.get` caching the resolved overlay type descriptor.
    OverlayGetIC {
        target: Option<u16>,
        args: Box<[COperand]>,
        oname: Rc<str>,
        field: Rc<str>,
        ic: Rc<RefCell<IcSite>>,
    },
    /// `callable.call` caching the callee-name → function-index resolution.
    CallCallableIC {
        target: Option<u16>,
        callable: COperand,
        args: Box<[COperand]>,
        ic: Rc<RefCell<IcSite>>,
    },
}

/// Integer operand of a specialized instruction: a frame slot statically
/// known to hold `int<n>`, or an immediate constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntSrc {
    Slot(u16),
    Imm(i64),
}

impl IntSrc {
    /// Renders like the generic operand it replaced (`s3` / `42`).
    pub fn render(&self) -> String {
        match self {
            IntSrc::Slot(s) => format!("s{s}"),
            IntSrc::Imm(i) => i.to_string(),
        }
    }
}

/// Comparison relation of [`CInstr::CmpInt`] / [`CInstr::BrIfInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntCmp {
    Eq,
    Lt,
    Gt,
    Leq,
    Geq,
}

impl IntCmp {
    #[inline(always)]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            IntCmp::Eq => a == b,
            IntCmp::Lt => a < b,
            IntCmp::Gt => a > b,
            IntCmp::Leq => a <= b,
            IntCmp::Geq => a >= b,
        }
    }

    pub fn mnemonic(self) -> &'static str {
        match self {
            IntCmp::Eq => "int.eq",
            IntCmp::Lt => "int.lt",
            IntCmp::Gt => "int.gt",
            IntCmp::Leq => "int.leq",
            IntCmp::Geq => "int.geq",
        }
    }

    pub fn from_opcode(op: Opcode) -> Option<IntCmp> {
        Some(match op {
            Opcode::IntEq => IntCmp::Eq,
            Opcode::IntLt => IntCmp::Lt,
            Opcode::IntGt => IntCmp::Gt,
            Opcode::IntLeq => IntCmp::Leq,
            Opcode::IntGeq => IntCmp::Geq,
            _ => return None,
        })
    }
}

/// Bitwise/shift operation of [`CInstr::BitInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntBit {
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl IntBit {
    /// Exactly the `ops::eval` semantics: `shl` wraps the shift amount,
    /// `shr` is a logical shift on the 64-bit pattern.
    #[inline(always)]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            IntBit::And => a & b,
            IntBit::Or => a | b,
            IntBit::Xor => a ^ b,
            IntBit::Shl => a.wrapping_shl(b as u32),
            IntBit::Shr => ((a as u64) >> (b as u32 & 63)) as i64,
        }
    }

    pub fn mnemonic(self) -> &'static str {
        match self {
            IntBit::And => "int.and",
            IntBit::Or => "int.or",
            IntBit::Xor => "int.xor",
            IntBit::Shl => "int.shl",
            IntBit::Shr => "int.shr",
        }
    }

    pub fn from_opcode(op: Opcode) -> Option<IntBit> {
        Some(match op {
            Opcode::IntAnd => IntBit::And,
            Opcode::IntOr => IntBit::Or,
            Opcode::IntXor => IntBit::Xor,
            Opcode::IntShl => IntBit::Shl,
            Opcode::IntShr => IntBit::Shr,
            _ => return None,
        })
    }
}

/// Per-site inline cache of an IC-tier instruction. Sites are private to
/// one tiered function body inside one `Context`, so plain `RefCell`
/// interior mutability is enough — the parallel pipeline keeps one tier
/// state per shard and never shares sites across threads.
#[derive(Debug, Default)]
pub struct IcSite {
    /// Cached resolutions, most recently added last. Linear scan: sites are
    /// monomorphic or nearly so by construction (`cap` is small).
    pub entries: Vec<IcEntry>,
    /// Maximum entries before the site de-optimizes.
    pub cap: usize,
    /// A pathologically polymorphic site: the cache is abandoned and every
    /// execution resolves generically (still correct, no longer cached).
    pub deopt: bool,
    /// Guard hits since tier-up.
    pub hits: u64,
    /// Guard misses (each one fell back to generic resolution).
    pub misses: u64,
}

impl IcSite {
    pub fn new(cap: usize) -> Rc<RefCell<IcSite>> {
        Rc::new(RefCell::new(IcSite {
            cap,
            ..IcSite::default()
        }))
    }

    /// Records a miss that resolved successfully; refills the cache or, at
    /// capacity, de-optimizes the site for good.
    pub fn refill(&mut self, entry: IcEntry) {
        if self.deopt {
            return;
        }
        if self.entries.len() >= self.cap {
            self.entries.clear();
            self.deopt = true;
        } else {
            self.entries.push(entry);
        }
    }
}

/// One cached resolution in an [`IcSite`].
#[derive(Clone, Debug)]
pub enum IcEntry {
    /// Struct type name → field index (for `struct.get`/`struct.set`).
    Struct { type_name: Rc<str>, field_idx: u32 },
    /// Resolved overlay type descriptor (for `overlay.get`).
    Overlay { overlay: Rc<OverlayType> },
    /// Callee name → function index; `None` means a host function.
    Callee { name: Rc<str>, func: Option<u32> },
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct CFunc {
    pub name: String,
    pub n_params: u16,
    pub n_slots: u16,
    pub code: Vec<CInstr>,
    /// Static type of each slot (params, then locals; the trailing scratch
    /// slot is `Any`). Carried from the checked IR so `crate::specialize`
    /// can prove operands integer/bool without dataflow analysis. A slot
    /// whose declared type is `Any` — or that is reused under conflicting
    /// declarations — is never specialized on.
    pub slot_types: Vec<Type>,
}

impl COperand {
    /// Renders like the textual IR operand it lowered from (`s3`, `g1`,
    /// or a constant).
    pub fn render(&self) -> String {
        match self {
            COperand::Slot(s) => format!("s{s}"),
            COperand::Global(g) => format!("g{g}"),
            COperand::Value(v) => v.render(),
        }
    }
}

impl CInstr {
    /// Canonical mnemonic-based rendering used by `--trace`. Specialized
    /// variants render exactly like the generic instruction they replaced,
    /// so traces from a specialized and an unspecialized build stay
    /// diffable ([`CInstr::BrIfInt`] is the one exception: the VM traces it
    /// as its two constituent lines).
    pub fn render(&self) -> String {
        fn assignment(target: Option<u16>, rhs: String) -> String {
            match target {
                Some(t) => format!("s{t} = {rhs}"),
                None => rhs,
            }
        }
        fn call_args(args: &[COperand]) -> String {
            args.iter()
                .map(COperand::render)
                .collect::<Vec<_>>()
                .join(" ")
        }
        match self {
            CInstr::Op {
                opcode,
                target,
                args,
                idents,
            } => {
                let mut parts: Vec<String> = vec![opcode.mnemonic().to_owned()];
                parts.extend(idents.iter().cloned());
                parts.extend(args.iter().map(COperand::render));
                assignment(*target, parts.join(" "))
            }
            CInstr::Call { target, func, args } => {
                assignment(*target, format!("call #{func} ({})", call_args(args)))
            }
            CInstr::CallHost { target, name, args } => {
                assignment(*target, format!("call.c {name} ({})", call_args(args)))
            }
            CInstr::RunHook { hook, args } => {
                format!("hook.run #{hook} ({})", call_args(args))
            }
            CInstr::CallCallable {
                target,
                callable,
                args,
            } => assignment(
                *target,
                format!("callable.call {} ({})", callable.render(), call_args(args)),
            ),
            CInstr::New { target, ty, args } => {
                assignment(Some(*target), format!("new {ty} ({})", call_args(args)))
            }
            CInstr::Jump(pc) => format!("jump @{pc}"),
            CInstr::Branch {
                cond,
                then_pc,
                else_pc,
            } => format!("if {} goto @{then_pc} else @{else_pc}", cond.render()),
            CInstr::Return(v) => match v {
                Some(op) => format!("return {}", op.render()),
                None => "return".to_owned(),
            },
            CInstr::PushHandler { pc, kind, binder } => match binder {
                Some(b) => format!("push_handler {kind} @{pc} s{b}"),
                None => format!("push_handler {kind} @{pc}"),
            },
            CInstr::PopHandler => "pop_handler".to_owned(),
            CInstr::Yield => "yield".to_owned(),
            CInstr::GlobalStore { global, inner } => {
                format!("g{global} <- {}", inner.render())
            }
            CInstr::AddInt { dst, a, b } => {
                format!("s{dst} = int.add {} {}", a.render(), b.render())
            }
            CInstr::SubInt { dst, a, b } => {
                format!("s{dst} = int.sub {} {}", a.render(), b.render())
            }
            CInstr::MulInt { dst, a, b } => {
                format!("s{dst} = int.mul {} {}", a.render(), b.render())
            }
            CInstr::BitInt { op, dst, a, b } => {
                format!("s{dst} = {} {} {}", op.mnemonic(), a.render(), b.render())
            }
            CInstr::CmpInt { cmp, dst, a, b } => {
                format!("s{dst} = {} {} {}", cmp.mnemonic(), a.render(), b.render())
            }
            CInstr::BrIfInt {
                cmp,
                a,
                b,
                dst,
                then_pc,
                else_pc,
            } => format!(
                "s{dst} = {} {} {} ; if s{dst} goto @{then_pc} else @{else_pc}",
                cmp.mnemonic(),
                a.render(),
                b.render()
            ),
            CInstr::MoveSlot { dst, src } => format!("s{dst} = assign s{src}"),
            CInstr::LoadImm { dst, v } => format!("s{dst} = assign {}", v.render()),
            CInstr::BrBool {
                cond,
                then_pc,
                else_pc,
            } => format!("if s{cond} goto @{then_pc} else @{else_pc}"),
            // IC variants render exactly like the generic `Op` they
            // replaced (mnemonic, idents, then value operands), keeping
            // traces diffable across tiers.
            CInstr::StructGetIC {
                target, obj, field, ..
            } => assignment(*target, format!("struct.get {field} {}", obj.render())),
            CInstr::StructSetIC {
                target,
                obj,
                value,
                field,
                ..
            } => assignment(
                *target,
                format!("struct.set {field} {} {}", obj.render(), value.render()),
            ),
            CInstr::OverlayGetIC {
                target,
                args,
                oname,
                field,
                ..
            } => assignment(
                *target,
                format!("overlay.get {oname} {field} {}", call_args(args)),
            ),
            CInstr::CallCallableIC {
                target,
                callable,
                args,
                ..
            } => assignment(
                *target,
                format!("callable.call {} ({})", callable.render(), call_args(args)),
            ),
        }
    }

    /// Bucket name for the instruction-mix histogram (`Context::stats`).
    /// Generic data instructions count under their IR mnemonic; specialized
    /// variants under distinct `spec.*` names so the histogram shows how
    /// much of the stream runs on the fast tier.
    pub fn stat_name(&self) -> &'static str {
        match self {
            CInstr::Op { opcode, .. } => opcode.mnemonic(),
            CInstr::Call { .. } => "call",
            CInstr::CallHost { .. } => "call.c",
            CInstr::RunHook { .. } => "hook.run",
            CInstr::CallCallable { .. } => "callable.call",
            CInstr::New { .. } => "new",
            CInstr::Jump(_) => "jump",
            CInstr::Branch { .. } => "branch",
            CInstr::Return(_) => "return",
            CInstr::PushHandler { .. } => "exception.push_handler",
            CInstr::PopHandler => "exception.pop_handler",
            CInstr::Yield => "yield",
            CInstr::GlobalStore { inner, .. } => inner.stat_name(),
            CInstr::AddInt { .. } => "spec.int.add",
            CInstr::SubInt { .. } => "spec.int.sub",
            CInstr::MulInt { .. } => "spec.int.mul",
            CInstr::BitInt { op, .. } => match op {
                IntBit::And => "spec.int.and",
                IntBit::Or => "spec.int.or",
                IntBit::Xor => "spec.int.xor",
                IntBit::Shl => "spec.int.shl",
                IntBit::Shr => "spec.int.shr",
            },
            CInstr::CmpInt { .. } => "spec.int.cmp",
            CInstr::BrIfInt { .. } => "spec.int.br_if",
            CInstr::MoveSlot { .. } => "spec.move",
            CInstr::LoadImm { .. } => "spec.load.imm",
            CInstr::BrBool { .. } => "spec.br.bool",
            // Observational modes pin execution to the generic tier, so
            // these only matter for completeness; they count under the
            // mnemonic of the op they replaced.
            CInstr::StructGetIC { .. } => "struct.get",
            CInstr::StructSetIC { .. } => "struct.set",
            CInstr::OverlayGetIC { .. } => "overlay.get",
            CInstr::CallCallableIC { .. } => "callable.call",
        }
    }
}

/// A fully lowered program.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    pub funcs: Vec<CFunc>,
    pub func_index: HashMap<String, u32>,
    /// Hook name → function indices, priority order.
    pub hooks: Vec<Vec<u32>>,
    pub hook_index: HashMap<String, u32>,
    /// Global initializers, slot order (evaluated per context).
    pub global_inits: Vec<Option<Value>>,
    pub global_names: Vec<String>,
    /// Struct type → field names. Behind `Rc`: every per-thread `Context`
    /// shares the table instead of deep-cloning it.
    pub struct_fields: Rc<HashMap<String, Vec<String>>>,
    /// Overlay types, shared the same way.
    pub overlays: Rc<HashMap<String, Rc<OverlayType>>>,
}

impl CompiledProgram {
    pub fn func(&self, name: &str) -> Option<&CFunc> {
        self.func_index.get(name).map(|i| &self.funcs[*i as usize])
    }
}

/// Lowers a linked program to bytecode.
pub fn compile(linked: &Linked) -> RtResult<CompiledProgram> {
    let mut prog = CompiledProgram::default();

    // Type tables (built flat, then shared behind Rc).
    let mut struct_fields: HashMap<String, Vec<String>> = HashMap::new();
    let mut overlays: HashMap<String, Rc<OverlayType>> = HashMap::new();
    for (name, def) in &linked.types {
        match def {
            TypeDef::Struct(fields) => {
                struct_fields.insert(
                    name.clone(),
                    fields.iter().map(|(n, _)| n.clone()).collect(),
                );
            }
            TypeDef::Overlay(o) => {
                overlays.insert(name.clone(), Rc::new(o.clone()));
            }
            TypeDef::Enum(_) | TypeDef::Bitset(_) => {}
        }
    }
    prog.struct_fields = Rc::new(struct_fields);
    prog.overlays = Rc::new(overlays);

    // Global slots.
    for (name, _ty, init) in &linked.globals {
        prog.global_names.push(name.clone());
        prog.global_inits.push(match init {
            Some(c) => Some(const_value(c)?),
            None => None,
        });
    }
    let global_index: HashMap<&str, u32> = linked
        .globals
        .iter()
        .enumerate()
        .map(|(i, (n, _, _))| (n.as_str(), i as u32))
        .collect();

    // Assign function indices: plain functions plus hook bodies.
    let mut ordered: Vec<&Function> = linked.functions.values().collect();
    ordered.sort_by(|a, b| a.name.cmp(&b.name));
    let mut bodies: Vec<&Function> = Vec::new();
    for f in &ordered {
        prog.func_index.insert(f.name.clone(), bodies.len() as u32);
        bodies.push(f);
    }
    let mut hook_names: Vec<&String> = linked.hooks.keys().collect();
    hook_names.sort();
    for hname in hook_names {
        let hbodies = &linked.hooks[hname];
        let mut indices = Vec::new();
        for (i, f) in hbodies.iter().enumerate() {
            let idx = bodies.len() as u32;
            // Hook bodies get synthetic unique names.
            prog.func_index.insert(format!("{hname}#\u{1}{i}"), idx);
            bodies.push(f);
            indices.push(idx);
        }
        prog.hook_index
            .insert(hname.clone(), prog.hooks.len() as u32);
        prog.hooks.push(indices);
    }

    // Lower every body.
    for f in bodies {
        let lowered = lower_function(f, &prog.func_index, &prog.hook_index, &global_index)?;
        prog.funcs.push(lowered);
    }
    Ok(prog)
}

/// Converts a constant to its runtime value (identifiers and labels are
/// handled structurally during lowering, not here).
pub fn const_value(c: &Const) -> RtResult<Value> {
    Ok(match c {
        Const::Null => Value::Null,
        Const::Bool(b) => Value::Bool(*b),
        Const::Int(i) => Value::Int(*i),
        Const::Double(d) => Value::Double(*d),
        Const::Str(s) => Value::str(s),
        Const::BytesLit(b) => Value::Bytes(hilti_rt::Bytes::frozen_from_slice(b)),
        Const::Addr(a) => Value::Addr(*a),
        Const::Net(n) => Value::Net(*n),
        Const::Port(p) => Value::Port(*p),
        Const::Time(t) => Value::Time(*t),
        Const::Interval(i) => Value::Interval(*i),
        Const::EnumLit(name, idx) => Value::Enum(Rc::from(name.as_str()), *idx),
        Const::Tuple(elems) => Value::Tuple(Rc::new(
            elems
                .iter()
                .map(const_value)
                .collect::<RtResult<Vec<_>>>()?,
        )),
        Const::Patterns(pats) => {
            let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
            Value::Regexp(Regex::set(&refs)?)
        }
        Const::TypeRef(t) => {
            return Err(RtError::type_error(format!(
                "type operand {t} has no value form"
            )))
        }
        Const::Ident(i) => {
            return Err(RtError::type_error(format!(
                "identifier operand {i} has no value form"
            )))
        }
        Const::Label(l) => {
            return Err(RtError::type_error(format!(
                "label operand {l} has no value form"
            )))
        }
    })
}

struct SlotMap {
    slots: HashMap<String, u16>,
}

impl SlotMap {
    fn get(&self, name: &str) -> Option<u16> {
        self.slots.get(name).copied()
    }
}

fn lower_function(
    f: &Function,
    func_index: &HashMap<String, u32>,
    hook_index: &HashMap<String, u32>,
    global_index: &HashMap<&str, u32>,
) -> RtResult<CFunc> {
    // Slot layout: params, then locals in declaration order.
    let mut slots = SlotMap {
        slots: HashMap::new(),
    };
    for (i, (n, _)) in f.params.iter().enumerate() {
        slots.slots.insert(n.clone(), i as u16);
    }
    for (n, _) in &f.locals {
        let next = slots.slots.len() as u16;
        slots.slots.entry(n.clone()).or_insert(next);
    }

    // First pass: compute the pc of every block.
    let mut block_pc: HashMap<&str, u32> = HashMap::new();
    let mut pc = 0u32;
    for b in &f.blocks {
        block_pc.insert(b.label.as_str(), pc);
        pc += b.instrs.len() as u32 + 1; // +1 for the terminator
    }

    let operand = |op: &Operand| -> RtResult<COperand> {
        Ok(match op {
            Operand::Var(name) => {
                if let Some(s) = slots.get(name) {
                    COperand::Slot(s)
                } else if let Some(g) = global_index.get(name.as_str()) {
                    COperand::Global(*g)
                } else {
                    return Err(RtError::value(format!(
                        "{}: unresolved variable {name}",
                        f.name
                    )));
                }
            }
            Operand::Const(c) => COperand::Value(const_value(c)?),
        })
    };
    // Instructions whose target is a global write through a dedicated
    // scratch slot (the last one), wrapped in `GlobalStore`.
    let scratch: u16 = slots.slots.len() as u16;
    let target_slot = |t: &Option<String>| -> RtResult<(Option<u16>, Option<u32>)> {
        match t {
            None => Ok((None, None)),
            Some(name) => {
                if let Some(s) = slots.get(name) {
                    Ok((Some(s), None))
                } else if let Some(g) = global_index.get(name.as_str()) {
                    Ok((Some(scratch), Some(*g)))
                } else {
                    Err(RtError::value(format!(
                        "{}: unresolved target {name}",
                        f.name
                    )))
                }
            }
        }
    };

    let mut code: Vec<CInstr> = Vec::with_capacity(pc as usize);
    for b in &f.blocks {
        for instr in &b.instrs {
            // Split args into identifier constants and value operands.
            let mut idents: Vec<String> = Vec::new();
            let mut vargs: Vec<&Operand> = Vec::new();
            for a in &instr.args {
                match a {
                    Operand::Const(Const::Ident(i)) => idents.push(i.clone()),
                    Operand::Const(Const::Label(_)) => {} // handled below
                    Operand::Const(Const::Patterns(ps)) => {
                        idents.extend(ps.iter().cloned());
                    }
                    other => vargs.push(other),
                }
            }

            let (ctarget, gtarget) = target_slot(&instr.target)?;

            let lowered = match instr.opcode {
                Opcode::Call | Opcode::CallVoid => {
                    let callee = idents
                        .first()
                        .ok_or_else(|| RtError::value("call without callee"))?;
                    if let Some(fi) = func_index.get(callee) {
                        CInstr::Call {
                            target: ctarget,
                            func: *fi,
                            args: vargs
                                .iter()
                                .map(|a| operand(a))
                                .collect::<RtResult<Vec<_>>>()?
                                .into_boxed_slice(),
                        }
                    } else {
                        CInstr::CallHost {
                            target: ctarget,
                            name: Rc::from(callee.as_str()),
                            args: vargs
                                .iter()
                                .map(|a| operand(a))
                                .collect::<RtResult<Vec<_>>>()?
                                .into_boxed_slice(),
                        }
                    }
                }
                Opcode::CallC => {
                    let callee = idents
                        .first()
                        .ok_or_else(|| RtError::value("call.c without callee"))?;
                    CInstr::CallHost {
                        target: ctarget,
                        name: Rc::from(callee.as_str()),
                        args: vargs
                            .iter()
                            .map(|a| operand(a))
                            .collect::<RtResult<Vec<_>>>()?
                            .into_boxed_slice(),
                    }
                }
                Opcode::HookRun | Opcode::HookRunVoid => {
                    let hname = idents
                        .first()
                        .ok_or_else(|| RtError::value("hook.run without hook name"))?;
                    match hook_index.get(hname) {
                        Some(hi) => CInstr::RunHook {
                            hook: *hi,
                            args: vargs
                                .iter()
                                .map(|a| operand(a))
                                .collect::<RtResult<Vec<_>>>()?
                                .into_boxed_slice(),
                        },
                        // A hook with no bodies: no-op.
                        None => CInstr::Op {
                            opcode: Opcode::Assign,
                            target: None,
                            args: Box::new([COperand::Value(Value::Null)]),
                            idents: Rc::from(Vec::new()),
                        },
                    }
                }
                Opcode::CallableCall | Opcode::CallableCallVoid => {
                    let mut it = vargs.iter();
                    let callable = it
                        .next()
                        .ok_or_else(|| RtError::value("callable.call without callable"))?;
                    CInstr::CallCallable {
                        target: ctarget,
                        callable: operand(callable)?,
                        args: it
                            .map(|a| operand(a))
                            .collect::<RtResult<Vec<_>>>()?
                            .into_boxed_slice(),
                    }
                }
                Opcode::New => {
                    let ty = instr
                        .args
                        .iter()
                        .find_map(|a| match a {
                            Operand::Const(Const::TypeRef(t)) => Some(t.clone()),
                            _ => None,
                        })
                        .ok_or_else(|| RtError::value("new without type"))?;
                    let extra: Vec<&Operand> = vargs
                        .iter()
                        .filter(|a| !matches!(a, Operand::Const(Const::TypeRef(_))))
                        .copied()
                        .collect();
                    CInstr::New {
                        target: ctarget
                            .ok_or_else(|| RtError::value("new requires a local target"))?,
                        ty,
                        args: extra
                            .iter()
                            .map(|a| operand(a))
                            .collect::<RtResult<Vec<_>>>()?
                            .into_boxed_slice(),
                    }
                }
                Opcode::PushHandler => {
                    let label = instr
                        .args
                        .iter()
                        .find_map(|a| match a {
                            Operand::Const(Const::Label(l)) => Some(l.as_str()),
                            _ => None,
                        })
                        .ok_or_else(|| RtError::value("push_handler without label"))?;
                    let pc = *block_pc
                        .get(label)
                        .ok_or_else(|| RtError::value(format!("unknown handler label {label}")))?;
                    let kind = idents.first().cloned().unwrap_or_else(|| "*".into());
                    let binder = idents
                        .get(1)
                        .filter(|b| !b.is_empty())
                        .and_then(|b| slots.get(b));
                    CInstr::PushHandler {
                        pc,
                        kind: Rc::from(kind.as_str()),
                        binder,
                    }
                }
                Opcode::RegexpNew => {
                    // Compile the pattern set once, at lowering time — the
                    // "JIT compilation of regular expressions" of §7. The
                    // compiled object is shared; runtime cost is one move.
                    let refs: Vec<&str> = idents.iter().map(String::as_str).collect();
                    if refs.is_empty() {
                        return Err(RtError::pattern("regexp.new needs patterns"));
                    }
                    CInstr::Op {
                        opcode: Opcode::Assign,
                        target: ctarget,
                        args: Box::new([COperand::Value(Value::Regexp(Regex::set(&refs)?))]),
                        idents: Rc::from(Vec::new()),
                    }
                }
                Opcode::PopHandler => CInstr::PopHandler,
                Opcode::Yield => CInstr::Yield,
                // Everything else lowers generically; the typed fast tier
                // is a separate pass (`crate::specialize`) so it can be
                // switched off for ablation without changing lowering.
                _ => CInstr::Op {
                    opcode: instr.opcode,
                    target: ctarget,
                    args: vargs
                        .iter()
                        .map(|a| operand(a))
                        .collect::<RtResult<Vec<_>>>()?
                        .into_boxed_slice(),
                    idents: Rc::from(idents),
                },
            };
            // Wrap global-target writes.
            match gtarget {
                None => code.push(lowered),
                Some(g) => code.push(CInstr::GlobalStore {
                    global: g,
                    inner: Box::new(lowered),
                }),
            }
        }
        // Terminator.
        let term = match &b.term {
            Terminator::Jump(l) => CInstr::Jump(
                *block_pc
                    .get(l.as_str())
                    .ok_or_else(|| RtError::value(format!("unknown jump label {l}")))?,
            ),
            Terminator::IfElse(cond, l1, l2) => CInstr::Branch {
                cond: operand(cond)?,
                then_pc: *block_pc
                    .get(l1.as_str())
                    .ok_or_else(|| RtError::value(format!("unknown label {l1}")))?,
                else_pc: *block_pc
                    .get(l2.as_str())
                    .ok_or_else(|| RtError::value(format!("unknown label {l2}")))?,
            },
            Terminator::Return(v) => CInstr::Return(match v {
                Some(op) => Some(operand(op)?),
                None => None,
            }),
        };
        code.push(term);
    }

    // Static slot types for the specializer: params, then locals, with the
    // scratch slot left `Any`. A slot shared by conflicting declarations
    // degrades to `Any` (never specialized).
    let mut slot_types = vec![Type::Any; slots.slots.len() + 1];
    for (i, (_, t)) in f.params.iter().enumerate() {
        slot_types[i] = t.clone();
    }
    let mut seen_locals: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for (n, t) in &f.locals {
        let Some(s) = slots.get(n) else { continue };
        let s = s as usize;
        if s < f.params.len() {
            continue; // a local shadowing a param keeps the param's slot
        }
        if seen_locals.insert(n.as_str()) {
            slot_types[s] = t.clone();
        } else if slot_types[s] != *t {
            slot_types[s] = Type::Any;
        }
    }

    Ok(CFunc {
        name: f.name.clone(),
        n_params: f.params.len() as u16,
        n_slots: slots.slots.len() as u16 + 1, // +1 scratch for global stores
        code,
        slot_types,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::link_with_priorities;
    use crate::parser::parse_module;

    fn compiled(src: &str) -> CompiledProgram {
        let m = parse_module(src).unwrap();
        let linked = link_with_priorities(vec![m]).unwrap();
        compile(&linked).unwrap()
    }

    #[test]
    fn labels_resolve_to_pcs() {
        let prog = compiled(
            r#"
module M
int<64> f(bool b) {
    if.else b yes no
yes:
    return 1
no:
    return 2
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        match &f.code[0] {
            CInstr::Branch {
                then_pc, else_pc, ..
            } => {
                assert!(matches!(f.code[*then_pc as usize], CInstr::Return(Some(_))));
                assert!(matches!(f.code[*else_pc as usize], CInstr::Return(Some(_))));
                assert_ne!(then_pc, else_pc);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn regexp_literals_precompiled() {
        // §7's "JIT compilation of regular expressions": regexp.new lowers
        // to a constant move of an already-compiled object.
        let prog = compiled(
            "module M\nvoid f() {\n    local regexp re\n    re = regexp.new /[a-z]+/\n}\n",
        );
        let f = prog.func("M::f").unwrap();
        let has_precompiled = f.code.iter().any(|i| {
            matches!(
                i,
                CInstr::Op { opcode: Opcode::Assign, args, .. }
                    if matches!(args.first(), Some(COperand::Value(Value::Regexp(_))))
            )
        });
        assert!(has_precompiled, "{:#?}", f.code);
    }

    #[test]
    fn lowering_is_fully_generic_without_specializer() {
        // The typed fast tier lives in `crate::specialize`; plain lowering
        // must emit only generic instructions so the spec-off ablation
        // measures the true generic dispatch path.
        let prog = compiled(
            r#"
module M
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    x = int.add a b
    return x
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        assert!(
            f.code.iter().any(|i| matches!(
                i,
                CInstr::Op {
                    opcode: Opcode::IntAdd,
                    ..
                }
            )),
            "{:#?}",
            f.code
        );
    }

    #[test]
    fn slot_types_carry_param_and_local_types() {
        let prog = compiled(
            r#"
module M
int<64> f(int<64> a, bool c) {
    local int<64> x
    local any v
    return a
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        assert_eq!(f.slot_types.len(), f.n_slots as usize);
        assert!(matches!(f.slot_types[0], Type::Int(_)));
        assert!(matches!(f.slot_types[1], Type::Bool));
        assert!(matches!(f.slot_types[2], Type::Int(_)));
        assert!(matches!(f.slot_types[3], Type::Any));
        // The trailing scratch slot is never typed.
        assert!(matches!(f.slot_types.last(), Some(Type::Any)));
    }

    #[test]
    fn global_targets_wrapped_in_global_store() {
        let prog = compiled(
            r#"
module M
global int<64> g = 0
void f() {
    g = int.add g 1
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        assert!(
            f.code
                .iter()
                .any(|i| matches!(i, CInstr::GlobalStore { .. })),
            "{:#?}",
            f.code
        );
        assert_eq!(prog.global_names, vec!["M::g"]);
        assert!(matches!(prog.global_inits[0], Some(Value::Int(0))));
    }

    #[test]
    fn hooks_get_priority_ordered_bodies() {
        let prog = compiled(
            r#"
module M
hook void h() {
    call Hilti::print "low"
}
hook void h() &priority = 9 {
    call Hilti::print "high"
}
"#,
        );
        let hi = prog.hook_index.get("M::h").unwrap();
        let bodies = &prog.hooks[*hi as usize];
        assert_eq!(bodies.len(), 2);
        // The first body must be the high-priority one.
        let first = &prog.funcs[bodies[0] as usize];
        let is_high = first.code.iter().any(|i| {
            matches!(i, CInstr::CallHost { args, .. }
                if matches!(args.first(), Some(COperand::Value(Value::String(s))) if &**s == "high"))
        });
        assert!(is_high);
    }

    #[test]
    fn const_value_conversions() {
        assert!(matches!(
            const_value(&Const::Int(5)).unwrap(),
            Value::Int(5)
        ));
        assert!(matches!(
            const_value(&Const::Bool(true)).unwrap(),
            Value::Bool(true)
        ));
        assert!(const_value(&Const::Ident("x".into())).is_err());
        assert!(const_value(&Const::Label("l".into())).is_err());
        let t = const_value(&Const::Tuple(vec![Const::Int(1), Const::Str("a".into())])).unwrap();
        match t {
            Value::Tuple(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unresolved_variable_is_compile_error() {
        // Bypass the checker to confirm lowering itself validates too.
        let m = parse_module("module M\nvoid f() {\n    local int<64> x\n    x = assign 1\n}\n")
            .unwrap();
        let mut linked = link_with_priorities(vec![m]).unwrap();
        // Corrupt a reference.
        let f = linked.functions.get_mut("M::f").unwrap();
        f.blocks[0].instrs[0].args[0] = crate::ir::Operand::var("ghost");
        assert!(compile(&linked).is_err());
    }
}
