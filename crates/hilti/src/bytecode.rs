//! Lowering linked IR to flat register bytecode.
//!
//! This stage is our stand-in for the paper's LLVM backend (see DESIGN.md):
//! it performs the work a native code generator does before emitting
//! machine instructions — resolving every name to an index, flattening the
//! CFG to program counters, converting constants to runtime representation
//! (including compiling regexp literals), and pre-splitting identifier
//! operands — so that the VM's hot loop executes with array indexing only,
//! no hash lookups and no constant re-materialization. The interpreter
//! baseline (`crate::interp`) deliberately skips all of this, which is
//! exactly the compiled-vs-interpreted gap §6.5 measures.

use std::collections::HashMap;
use std::rc::Rc;

use hilti_rt::error::{RtError, RtResult};
use hilti_rt::overlay::OverlayType;
use hilti_rt::regexp::Regex;

use crate::ir::{Const, Function, Opcode, Operand, Terminator, TypeDef};
use crate::linker::Linked;
use crate::types::Type;
use crate::value::Value;

/// A resolved operand.
#[derive(Clone, Debug)]
pub enum COperand {
    /// Frame slot (parameters first, then locals/temps).
    Slot(u16),
    /// Thread-local global slot.
    Global(u32),
    /// Pre-converted constant value.
    Value(Value),
}

/// A resolved instruction.
#[derive(Clone, Debug)]
pub enum CInstr {
    /// A data instruction evaluated through `ops::eval`.
    Op {
        opcode: Opcode,
        target: Option<u16>,
        args: Box<[COperand]>,
        idents: Rc<[String]>,
    },
    /// Direct call to a HILTI function.
    Call {
        target: Option<u16>,
        func: u32,
        args: Box<[COperand]>,
    },
    /// Call to a host-registered (C-level) function.
    CallHost {
        target: Option<u16>,
        name: Rc<str>,
        args: Box<[COperand]>,
    },
    /// Run all bodies of a hook.
    RunHook {
        hook: u32,
        args: Box<[COperand]>,
    },
    /// Call through a callable value (extra args appended to bound ones).
    CallCallable {
        target: Option<u16>,
        callable: COperand,
        args: Box<[COperand]>,
    },
    /// Instantiate a type (`new`).
    New {
        target: u16,
        ty: Type,
        args: Box<[COperand]>,
    },
    Jump(u32),
    Branch {
        cond: COperand,
        then_pc: u32,
        else_pc: u32,
    },
    Return(Option<COperand>),
    PushHandler {
        pc: u32,
        kind: Rc<str>,
        binder: Option<u16>,
    },
    PopHandler,
    Yield,
    /// Execute `inner` (which writes the function's scratch slot), then
    /// move the scratch slot into global `global`. This is how instructions
    /// targeting a thread-local global lower.
    GlobalStore { global: u32, inner: Box<CInstr> },
    /// Fast path: two-operand integer arithmetic/comparison with a local
    /// target — the hottest instructions in compiled scripts. Skips the
    /// generic operand marshalling of `Op`.
    IntFast {
        op: Opcode,
        target: u16,
        a: COperand,
        b: COperand,
    },
    /// Fast path: plain move into a local slot.
    AssignFast { target: u16, src: COperand },
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct CFunc {
    pub name: String,
    pub n_params: u16,
    pub n_slots: u16,
    pub code: Vec<CInstr>,
}

/// A fully lowered program.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    pub funcs: Vec<CFunc>,
    pub func_index: HashMap<String, u32>,
    /// Hook name → function indices, priority order.
    pub hooks: Vec<Vec<u32>>,
    pub hook_index: HashMap<String, u32>,
    /// Global initializers, slot order (evaluated per context).
    pub global_inits: Vec<Option<Value>>,
    pub global_names: Vec<String>,
    /// Struct type → field names.
    pub struct_fields: HashMap<String, Vec<String>>,
    /// Overlay types.
    pub overlays: HashMap<String, Rc<OverlayType>>,
}

impl CompiledProgram {
    pub fn func(&self, name: &str) -> Option<&CFunc> {
        self.func_index.get(name).map(|i| &self.funcs[*i as usize])
    }
}

/// Lowers a linked program to bytecode.
pub fn compile(linked: &Linked) -> RtResult<CompiledProgram> {
    let mut prog = CompiledProgram::default();

    // Type tables.
    for (name, def) in &linked.types {
        match def {
            TypeDef::Struct(fields) => {
                prog.struct_fields.insert(
                    name.clone(),
                    fields.iter().map(|(n, _)| n.clone()).collect(),
                );
            }
            TypeDef::Overlay(o) => {
                prog.overlays.insert(name.clone(), Rc::new(o.clone()));
            }
            TypeDef::Enum(_) | TypeDef::Bitset(_) => {}
        }
    }

    // Global slots.
    for (name, _ty, init) in &linked.globals {
        prog.global_names.push(name.clone());
        prog.global_inits.push(match init {
            Some(c) => Some(const_value(c)?),
            None => None,
        });
    }
    let global_index: HashMap<&str, u32> = linked
        .globals
        .iter()
        .enumerate()
        .map(|(i, (n, _, _))| (n.as_str(), i as u32))
        .collect();

    // Assign function indices: plain functions plus hook bodies.
    let mut ordered: Vec<&Function> = linked.functions.values().collect();
    ordered.sort_by(|a, b| a.name.cmp(&b.name));
    let mut bodies: Vec<&Function> = Vec::new();
    for f in &ordered {
        prog.func_index.insert(f.name.clone(), bodies.len() as u32);
        bodies.push(f);
    }
    let mut hook_names: Vec<&String> = linked.hooks.keys().collect();
    hook_names.sort();
    for hname in hook_names {
        let hbodies = &linked.hooks[hname];
        let mut indices = Vec::new();
        for (i, f) in hbodies.iter().enumerate() {
            let idx = bodies.len() as u32;
            // Hook bodies get synthetic unique names.
            prog.func_index
                .insert(format!("{hname}#\u{1}{i}"), idx);
            bodies.push(f);
            indices.push(idx);
        }
        prog.hook_index
            .insert(hname.clone(), prog.hooks.len() as u32);
        prog.hooks.push(indices);
    }

    // Lower every body.
    for f in bodies {
        let lowered = lower_function(f, &prog.func_index, &prog.hook_index, &global_index)?;
        prog.funcs.push(lowered);
    }
    Ok(prog)
}

/// Converts a constant to its runtime value (identifiers and labels are
/// handled structurally during lowering, not here).
pub fn const_value(c: &Const) -> RtResult<Value> {
    Ok(match c {
        Const::Null => Value::Null,
        Const::Bool(b) => Value::Bool(*b),
        Const::Int(i) => Value::Int(*i),
        Const::Double(d) => Value::Double(*d),
        Const::Str(s) => Value::str(s),
        Const::BytesLit(b) => Value::Bytes(hilti_rt::Bytes::frozen_from_slice(b)),
        Const::Addr(a) => Value::Addr(*a),
        Const::Net(n) => Value::Net(*n),
        Const::Port(p) => Value::Port(*p),
        Const::Time(t) => Value::Time(*t),
        Const::Interval(i) => Value::Interval(*i),
        Const::EnumLit(name, idx) => Value::Enum(Rc::from(name.as_str()), *idx),
        Const::Tuple(elems) => Value::Tuple(Rc::new(
            elems.iter().map(const_value).collect::<RtResult<Vec<_>>>()?,
        )),
        Const::Patterns(pats) => {
            let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
            Value::Regexp(Regex::set(&refs)?)
        }
        Const::TypeRef(t) => {
            return Err(RtError::type_error(format!(
                "type operand {t} has no value form"
            )))
        }
        Const::Ident(i) => {
            return Err(RtError::type_error(format!(
                "identifier operand {i} has no value form"
            )))
        }
        Const::Label(l) => {
            return Err(RtError::type_error(format!(
                "label operand {l} has no value form"
            )))
        }
    })
}

struct SlotMap {
    slots: HashMap<String, u16>,
}

impl SlotMap {
    fn get(&self, name: &str) -> Option<u16> {
        self.slots.get(name).copied()
    }
}

fn lower_function(
    f: &Function,
    func_index: &HashMap<String, u32>,
    hook_index: &HashMap<String, u32>,
    global_index: &HashMap<&str, u32>,
) -> RtResult<CFunc> {
    // Slot layout: params, then locals in declaration order.
    let mut slots = SlotMap {
        slots: HashMap::new(),
    };
    for (i, (n, _)) in f.params.iter().enumerate() {
        slots.slots.insert(n.clone(), i as u16);
    }
    for (n, _) in &f.locals {
        let next = slots.slots.len() as u16;
        slots.slots.entry(n.clone()).or_insert(next);
    }

    // First pass: compute the pc of every block.
    let mut block_pc: HashMap<&str, u32> = HashMap::new();
    let mut pc = 0u32;
    for b in &f.blocks {
        block_pc.insert(b.label.as_str(), pc);
        pc += b.instrs.len() as u32 + 1; // +1 for the terminator
    }

    let operand = |op: &Operand| -> RtResult<COperand> {
        Ok(match op {
            Operand::Var(name) => {
                if let Some(s) = slots.get(name) {
                    COperand::Slot(s)
                } else if let Some(g) = global_index.get(name.as_str()) {
                    COperand::Global(*g)
                } else {
                    return Err(RtError::value(format!(
                        "{}: unresolved variable {name}",
                        f.name
                    )));
                }
            }
            Operand::Const(c) => COperand::Value(const_value(c)?),
        })
    };
    // Instructions whose target is a global write through a dedicated
    // scratch slot (the last one), wrapped in `GlobalStore`.
    let scratch: u16 = slots.slots.len() as u16;
    let target_slot = |t: &Option<String>| -> RtResult<(Option<u16>, Option<u32>)> {
        match t {
            None => Ok((None, None)),
            Some(name) => {
                if let Some(s) = slots.get(name) {
                    Ok((Some(s), None))
                } else if let Some(g) = global_index.get(name.as_str()) {
                    Ok((Some(scratch), Some(*g)))
                } else {
                    Err(RtError::value(format!(
                        "{}: unresolved target {name}",
                        f.name
                    )))
                }
            }
        }
    };

    let mut code: Vec<CInstr> = Vec::with_capacity(pc as usize);
    for b in &f.blocks {
        for instr in &b.instrs {
            // Split args into identifier constants and value operands.
            let mut idents: Vec<String> = Vec::new();
            let mut vargs: Vec<&Operand> = Vec::new();
            for a in &instr.args {
                match a {
                    Operand::Const(Const::Ident(i)) => idents.push(i.clone()),
                    Operand::Const(Const::Label(_)) => {} // handled below
                    Operand::Const(Const::Patterns(ps)) => {
                        idents.extend(ps.iter().cloned());
                    }
                    other => vargs.push(other),
                }
            }

            let (ctarget, gtarget) = target_slot(&instr.target)?;

            let lowered = match instr.opcode {
                Opcode::Call | Opcode::CallVoid => {
                    let callee = idents
                        .first()
                        .ok_or_else(|| RtError::value("call without callee"))?;
                    if let Some(fi) = func_index.get(callee) {
                        CInstr::Call {
                            target: ctarget,
                            func: *fi,
                            args: vargs
                                .iter()
                                .map(|a| operand(a))
                                .collect::<RtResult<Vec<_>>>()?
                                .into_boxed_slice(),
                        }
                    } else {
                        CInstr::CallHost {
                            target: ctarget,
                            name: Rc::from(callee.as_str()),
                            args: vargs
                                .iter()
                                .map(|a| operand(a))
                                .collect::<RtResult<Vec<_>>>()?
                                .into_boxed_slice(),
                        }
                    }
                }
                Opcode::CallC => {
                    let callee = idents
                        .first()
                        .ok_or_else(|| RtError::value("call.c without callee"))?;
                    CInstr::CallHost {
                        target: ctarget,
                        name: Rc::from(callee.as_str()),
                        args: vargs
                            .iter()
                            .map(|a| operand(a))
                            .collect::<RtResult<Vec<_>>>()?
                            .into_boxed_slice(),
                    }
                }
                Opcode::HookRun | Opcode::HookRunVoid => {
                    let hname = idents
                        .first()
                        .ok_or_else(|| RtError::value("hook.run without hook name"))?;
                    match hook_index.get(hname) {
                        Some(hi) => CInstr::RunHook {
                            hook: *hi,
                            args: vargs
                                .iter()
                                .map(|a| operand(a))
                                .collect::<RtResult<Vec<_>>>()?
                                .into_boxed_slice(),
                        },
                        // A hook with no bodies: no-op.
                        None => CInstr::Op {
                            opcode: Opcode::Assign,
                            target: None,
                            args: Box::new([COperand::Value(Value::Null)]),
                            idents: Rc::from(Vec::new()),
                        },
                    }
                }
                Opcode::CallableCall | Opcode::CallableCallVoid => {
                    let mut it = vargs.iter();
                    let callable = it
                        .next()
                        .ok_or_else(|| RtError::value("callable.call without callable"))?;
                    CInstr::CallCallable {
                        target: ctarget,
                        callable: operand(callable)?,
                        args: it
                            .map(|a| operand(a))
                            .collect::<RtResult<Vec<_>>>()?
                            .into_boxed_slice(),
                    }
                }
                Opcode::New => {
                    let ty = instr
                        .args
                        .iter()
                        .find_map(|a| match a {
                            Operand::Const(Const::TypeRef(t)) => Some(t.clone()),
                            _ => None,
                        })
                        .ok_or_else(|| RtError::value("new without type"))?;
                    let extra: Vec<&Operand> = vargs
                        .iter()
                        .filter(|a| !matches!(a, Operand::Const(Const::TypeRef(_))))
                        .copied()
                        .collect();
                    CInstr::New {
                        target: ctarget.ok_or_else(|| {
                            RtError::value("new requires a local target")
                        })?,
                        ty,
                        args: extra
                            .iter()
                            .map(|a| operand(a))
                            .collect::<RtResult<Vec<_>>>()?
                            .into_boxed_slice(),
                    }
                }
                Opcode::PushHandler => {
                    let label = instr
                        .args
                        .iter()
                        .find_map(|a| match a {
                            Operand::Const(Const::Label(l)) => Some(l.as_str()),
                            _ => None,
                        })
                        .ok_or_else(|| RtError::value("push_handler without label"))?;
                    let pc = *block_pc
                        .get(label)
                        .ok_or_else(|| RtError::value(format!("unknown handler label {label}")))?;
                    let kind = idents.first().cloned().unwrap_or_else(|| "*".into());
                    let binder = idents
                        .get(1)
                        .filter(|b| !b.is_empty())
                        .and_then(|b| slots.get(b));
                    CInstr::PushHandler {
                        pc,
                        kind: Rc::from(kind.as_str()),
                        binder,
                    }
                }
                Opcode::RegexpNew => {
                    // Compile the pattern set once, at lowering time — the
                    // "JIT compilation of regular expressions" of §7. The
                    // compiled object is shared; runtime cost is one move.
                    let refs: Vec<&str> = idents.iter().map(String::as_str).collect();
                    if refs.is_empty() {
                        return Err(RtError::pattern("regexp.new needs patterns"));
                    }
                    CInstr::Op {
                        opcode: Opcode::Assign,
                        target: ctarget,
                        args: Box::new([COperand::Value(Value::Regexp(Regex::set(&refs)?))]),
                        idents: Rc::from(Vec::new()),
                    }
                }
                Opcode::PopHandler => CInstr::PopHandler,
                Opcode::Yield => CInstr::Yield,
                // Hot-path specializations (only with a plain local
                // target; global targets keep the generic path so the
                // GlobalStore wrapper semantics stay in one place).
                Opcode::IntAdd
                | Opcode::IntSub
                | Opcode::IntMul
                | Opcode::IntEq
                | Opcode::IntLt
                | Opcode::IntGt
                | Opcode::IntLeq
                | Opcode::IntGeq
                | Opcode::IntAnd
                | Opcode::IntOr
                | Opcode::IntShl
                    if vargs.len() == 2 && ctarget.is_some() && gtarget.is_none() =>
                {
                    CInstr::IntFast {
                        op: instr.opcode,
                        target: ctarget.expect("checked above"),
                        a: operand(vargs[0])?,
                        b: operand(vargs[1])?,
                    }
                }
                Opcode::Assign
                    if vargs.len() == 1 && ctarget.is_some() && gtarget.is_none() =>
                {
                    CInstr::AssignFast {
                        target: ctarget.expect("checked above"),
                        src: operand(vargs[0])?,
                    }
                }
                _ => CInstr::Op {
                    opcode: instr.opcode,
                    target: ctarget,
                    args: vargs
                        .iter()
                        .map(|a| operand(a))
                        .collect::<RtResult<Vec<_>>>()?
                        .into_boxed_slice(),
                    idents: Rc::from(idents),
                },
            };
            // Wrap global-target writes.
            match gtarget {
                None => code.push(lowered),
                Some(g) => code.push(CInstr::GlobalStore {
                    global: g,
                    inner: Box::new(lowered),
                }),
            }
        }
        // Terminator.
        let term = match &b.term {
            Terminator::Jump(l) => CInstr::Jump(*block_pc.get(l.as_str()).ok_or_else(|| {
                RtError::value(format!("unknown jump label {l}"))
            })?),
            Terminator::IfElse(cond, l1, l2) => CInstr::Branch {
                cond: operand(cond)?,
                then_pc: *block_pc
                    .get(l1.as_str())
                    .ok_or_else(|| RtError::value(format!("unknown label {l1}")))?,
                else_pc: *block_pc
                    .get(l2.as_str())
                    .ok_or_else(|| RtError::value(format!("unknown label {l2}")))?,
            },
            Terminator::Return(v) => CInstr::Return(match v {
                Some(op) => Some(operand(op)?),
                None => None,
            }),
        };
        code.push(term);
    }

    Ok(CFunc {
        name: f.name.clone(),
        n_params: f.params.len() as u16,
        n_slots: slots.slots.len() as u16 + 1, // +1 scratch for global stores
        code,
    })
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::link_with_priorities;
    use crate::parser::parse_module;

    fn compiled(src: &str) -> CompiledProgram {
        let m = parse_module(src).unwrap();
        let linked = link_with_priorities(vec![m]).unwrap();
        compile(&linked).unwrap()
    }

    #[test]
    fn labels_resolve_to_pcs() {
        let prog = compiled(
            r#"
module M
int<64> f(bool b) {
    if.else b yes no
yes:
    return 1
no:
    return 2
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        match &f.code[0] {
            CInstr::Branch { then_pc, else_pc, .. } => {
                assert!(matches!(f.code[*then_pc as usize], CInstr::Return(Some(_))));
                assert!(matches!(f.code[*else_pc as usize], CInstr::Return(Some(_))));
                assert_ne!(then_pc, else_pc);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn regexp_literals_precompiled() {
        // §7's "JIT compilation of regular expressions": regexp.new lowers
        // to a constant move of an already-compiled object.
        let prog = compiled(
            "module M\nvoid f() {\n    local regexp re\n    re = regexp.new /[a-z]+/\n}\n",
        );
        let f = prog.func("M::f").unwrap();
        let has_precompiled = f.code.iter().any(|i| {
            matches!(
                i,
                CInstr::AssignFast { src: COperand::Value(Value::Regexp(_)), .. }
            ) || matches!(
                i,
                CInstr::Op { opcode: Opcode::Assign, args, .. }
                    if matches!(args.first(), Some(COperand::Value(Value::Regexp(_))))
            )
        });
        assert!(has_precompiled, "{:#?}", f.code);
    }

    #[test]
    fn hot_int_ops_use_fast_path() {
        let prog = compiled(
            r#"
module M
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    x = int.add a b
    return x
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        assert!(
            f.code.iter().any(|i| matches!(i, CInstr::IntFast { .. })),
            "{:#?}",
            f.code
        );
    }

    #[test]
    fn global_targets_wrapped_in_global_store() {
        let prog = compiled(
            r#"
module M
global int<64> g = 0
void f() {
    g = int.add g 1
}
"#,
        );
        let f = prog.func("M::f").unwrap();
        assert!(
            f.code
                .iter()
                .any(|i| matches!(i, CInstr::GlobalStore { .. })),
            "{:#?}",
            f.code
        );
        assert_eq!(prog.global_names, vec!["M::g"]);
        assert!(matches!(prog.global_inits[0], Some(Value::Int(0))));
    }

    #[test]
    fn hooks_get_priority_ordered_bodies() {
        let prog = compiled(
            r#"
module M
hook void h() {
    call Hilti::print "low"
}
hook void h() &priority = 9 {
    call Hilti::print "high"
}
"#,
        );
        let hi = prog.hook_index.get("M::h").unwrap();
        let bodies = &prog.hooks[*hi as usize];
        assert_eq!(bodies.len(), 2);
        // The first body must be the high-priority one.
        let first = &prog.funcs[bodies[0] as usize];
        let is_high = first.code.iter().any(|i| {
            matches!(i, CInstr::CallHost { args, .. }
                if matches!(args.first(), Some(COperand::Value(Value::String(s))) if &**s == "high"))
        });
        assert!(is_high);
    }

    #[test]
    fn const_value_conversions() {
        assert!(matches!(
            const_value(&Const::Int(5)).unwrap(),
            Value::Int(5)
        ));
        assert!(matches!(
            const_value(&Const::Bool(true)).unwrap(),
            Value::Bool(true)
        ));
        assert!(const_value(&Const::Ident("x".into())).is_err());
        assert!(const_value(&Const::Label("l".into())).is_err());
        let t = const_value(&Const::Tuple(vec![Const::Int(1), Const::Str("a".into())])).unwrap();
        match t {
            Value::Tuple(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unresolved_variable_is_compile_error() {
        // Bypass the checker to confirm lowering itself validates too.
        let m = parse_module("module M\nvoid f() {\n    local int<64> x\n    x = assign 1\n}\n")
            .unwrap();
        let mut linked = link_with_priorities(vec![m]).unwrap();
        // Corrupt a reference.
        let f = linked.functions.get_mut("M::f").unwrap();
        f.blocks[0].instrs[0].args[0] = crate::ir::Operand::var("ghost");
        assert!(compile(&linked).is_err());
    }
}
