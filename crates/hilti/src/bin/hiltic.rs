//! `hiltic` — the HILTI compiler driver (§3.1, Figure 3).
//!
//! The paper's prototype ships `hiltic` and `hilti-build`, which "employ
//! this workflow to compile HILTI code into native objects and
//! executables" and can "JIT-execute the source directly". This driver
//! covers the same surface against our toolchain: parse → link → check →
//! optimize → compile, then run an entry point or dump stages.
//!
//! ```text
//! hiltic run  [-O0] [--interp] [--trace] [--stats] [--no-specialize]
//!             [--tiering=off|lazy|eager|threaded]
//!             [--fuel N] [--max-heap N] [--max-depth N]
//!             [--profile out.json] [--metrics-out out.json]
//!             [--trace-out out.json]
//!             [--entry Mod::fn] file.hlt [...]
//! hiltic check         file.hlt ...      # parse + link + static checks
//! hiltic dump-ir       file.hlt ...      # optimized IR, human-readable
//! hiltic dump-bytecode file.hlt ...      # lowered (specialized) bytecode
//! ```
//!
//! `--no-specialize` disables the typed bytecode fast tier (the ablation
//! switch). `--tiering` selects profile-guided adaptive tiering instead
//! of the static specialization pass: `off` runs generic bytecode
//! forever (the speedup baseline), `lazy` re-lowers a function once its
//! invocation/retired-instruction counters cross the hotness thresholds,
//! `eager` tiers every function on first dispatch, and `threaded` uses
//! `lazy`'s schedule but additionally compiles promoted functions into
//! direct-threaded ops — operands, branch targets and inline-cache
//! handles pre-bound at tier-up, no fetch/decode loop. Tiered code uses
//! the operand types observed at call edges and installs monomorphic
//! inline caches at struct/overlay/callable sites; output, exceptions
//! and fuel are identical in every mode. `--stats` prints the executed
//! instruction mix to stderr,
//! sorted by count with each opcode's share of retired instructions,
//! plus the per-tier retirement mix (generic vs specialized fast loop vs
//! threaded executor) when any instruction retired off the generic path.
//! (Note `--stats` itself is an observational mode that pins the generic
//! tier, so a tiered retirement mix only shows up when stats are read
//! programmatically or via `--metrics-out`-style integrations.)
//! `--fuel`, `--max-heap` and `--max-depth` bound execution steps, bytes
//! of tracked heap state, and call depth; exceeding any of them raises
//! the catchable `Hilti::ResourceExhausted` exception.
//!
//! `--profile` writes the deterministic execution profile
//! (`hilti.profile.v1`): retired instructions and fuel attributed per
//! function and per opcode class. The attribution is counting-based, so
//! two runs of the same program produce byte-identical files and
//! `--interp` and VM runs agree on every total. `--metrics-out` writes
//! the engine telemetry snapshot (`hilti.telemetry.v1`). `--trace-out`
//! writes a flight-recorder trace (`hilti.trace.v1`, Chrome trace-event
//! format, loadable in Perfetto) with a `parse` span for the front-end
//! build and a `script` span for the entry-point execution; with
//! `--stats` the per-stage latency summary is printed to stderr too.
//!
//! Example (Figure 3):
//!
//! ```text
//! $ hiltic run hello.hlt
//! Hello, World!
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use hilti::host::{BuildOptions, Program};
use hilti::passes::OptLevel;
use hilti::tier::TieringMode;
use hilti::vm::ExecProfile;
use hilti_rt::limits::ResourceLimits;
use hilti_rt::telemetry::{json, Telemetry};
use hilti_rt::trace::{monotonic_ns, FlightRecorder, Stage, TraceReport};

/// Parses the numeric argument of a `--fuel`-style flag.
fn numeric_flag(flag: &str, arg: Option<&String>) -> Result<u64, ExitCode> {
    match arg.map(|a| a.parse::<u64>()) {
        Some(Ok(n)) => Ok(n),
        Some(Err(_)) => {
            eprintln!("{flag} needs a non-negative integer");
            Err(ExitCode::FAILURE)
        }
        None => {
            eprintln!("{flag} needs a value");
            Err(ExitCode::FAILURE)
        }
    }
}

/// Renders the execution profile as a `hilti.profile.v1` JSON document.
/// Every map is emitted in sorted order and no wall-time field appears, so
/// equal runs produce byte-identical files. Retired instructions and fuel
/// coincide under the uniform cost model; both keys are emitted so the
/// schema survives a future non-uniform model.
fn profile_json(engine: &str, entry: &str, prof: &ExecProfile) -> String {
    let total = prof.total();
    let mut s = String::from("{\"schema\":\"hilti.profile.v1\"");
    let _ = write!(
        s,
        ",\"engine\":{},\"entry\":{},\"total_instructions\":{total},\"total_fuel\":{total}",
        json::quote(engine),
        json::quote(entry)
    );
    s.push_str(",\"functions\":{");
    for (i, (name, units)) in prof.functions().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{}:{{\"instructions\":{units},\"fuel\":{units}}}",
            json::quote(name)
        );
    }
    s.push_str("},\"opcode_classes\":{");
    for (i, (class, units)) in prof.classes().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}:{units}", json::quote(class));
    }
    s.push_str("}}");
    debug_assert!(json::validate(&s).is_ok());
    s
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: hiltic <run|check|dump-ir|dump-bytecode> [flags] <file.hlt>...");
        return ExitCode::FAILURE;
    };

    let mut opt = OptLevel::Full;
    let mut interp = false;
    let mut trace = false;
    let mut stats = false;
    let mut specialize = true;
    let mut tiering: Option<TieringMode> = None;
    let mut entry = "Main::run".to_owned();
    let mut limits = ResourceLimits::default();
    let mut profile_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-O0" => opt = OptLevel::None,
            "-O1" | "-O2" => opt = OptLevel::Full,
            "--interp" => interp = true,
            "--trace" => trace = true,
            "--stats" => stats = true,
            "--no-specialize" => specialize = false,
            t if t.starts_with("--tiering=") => {
                let mode = &t["--tiering=".len()..];
                match TieringMode::parse(mode) {
                    Some(m) => tiering = Some(m),
                    None => {
                        eprintln!("--tiering needs off, lazy, eager or threaded (got {mode:?})");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--entry" => match it.next() {
                Some(e) => entry = e.clone(),
                None => {
                    eprintln!("--entry needs a function name");
                    return ExitCode::FAILURE;
                }
            },
            "--profile" => match it.next() {
                Some(p) => profile_out = Some(p.clone()),
                None => {
                    eprintln!("--profile needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p.clone()),
                None => {
                    eprintln!("--metrics-out needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => {
                    eprintln!("--trace-out needs an output path");
                    return ExitCode::FAILURE;
                }
            },
            "--fuel" => match numeric_flag("--fuel", it.next()) {
                Ok(n) => limits.fuel = Some(n),
                Err(code) => return code,
            },
            "--max-heap" => match numeric_flag("--max-heap", it.next()) {
                Ok(n) => limits.max_heap_bytes = Some(n),
                Err(code) => return code,
            },
            "--max-depth" => match numeric_flag("--max-depth", it.next()) {
                Ok(n) => limits.max_call_depth = Some(n.min(u32::MAX as u64) as u32),
                Err(code) => return code,
            },
            f => files.push(f.to_owned()),
        }
    }
    if files.is_empty() {
        eprintln!("hiltic: no input files");
        return ExitCode::FAILURE;
    }

    let sources: Vec<String> = match files
        .iter()
        .map(std::fs::read_to_string)
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hiltic: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source_refs: Vec<&str> = sources.iter().map(String::as_str).collect();

    let options = BuildOptions {
        specialize,
        tiering,
        ..Default::default()
    };
    // Flight recorder (`--trace-out`): the front-end build is the parse
    // stage, the entry-point execution the script stage.
    let mut recorder = trace_out.as_ref().map(|_| FlightRecorder::new(0));
    let build_begin = recorder.as_ref().map(|_| monotonic_ns());
    let mut program = match Program::from_sources_opts(&source_refs, opt, options) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("hiltic: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(r) = &mut recorder {
        r.record(Stage::Parse, 0, None, build_begin.unwrap_or(0));
    }
    for w in program.warnings() {
        eprintln!("warning: {w}");
    }

    match cmd.as_str() {
        "check" => {
            println!(
                "ok: {} function(s), {} hook(s), {} global(s), {} warning(s)",
                program.linked().functions.len(),
                program.linked().hooks.len(),
                program.linked().globals.len(),
                program.warnings().len()
            );
            ExitCode::SUCCESS
        }
        "dump-ir" => {
            let linked = program.linked();
            let mut names: Vec<&String> = linked.functions.keys().collect();
            names.sort();
            for name in names {
                let f = &linked.functions[name];
                print!("{} {}(", f.ret, f.name);
                for (i, (p, t)) in f.params.iter().enumerate() {
                    if i > 0 {
                        print!(", ");
                    }
                    print!("{t} {p}");
                }
                println!(") {{");
                for b in &f.blocks {
                    println!("{}:", b.label);
                    for instr in &b.instrs {
                        println!("    {instr}");
                    }
                    println!("    ; {:?}", b.term);
                }
                println!("}}\n");
            }
            ExitCode::SUCCESS
        }
        "dump-bytecode" => {
            let compiled = program.compiled();
            let mut indexed: Vec<(&String, u32)> =
                compiled.func_index.iter().map(|(n, i)| (n, *i)).collect();
            indexed.sort();
            for (name, idx) in indexed {
                let f = &compiled.funcs[idx as usize];
                println!(
                    "fn {name} (#{idx}, {} params, {} slots):",
                    f.n_params, f.n_slots
                );
                for (pc, instr) in f.code.iter().enumerate() {
                    println!("  {pc:>4}: {instr:?}");
                }
                println!();
            }
            ExitCode::SUCCESS
        }
        "run" => {
            program.context_mut().trace = trace;
            program.context_mut().stats = stats;
            program.context_mut().profile = profile_out.is_some();
            let telemetry = metrics_out.as_ref().map(|_| Telemetry::new());
            if let Some(t) = &telemetry {
                program.context_mut().set_telemetry(t);
            }
            program.set_limits(limits);
            let run_begin = recorder.as_ref().map(|_| monotonic_ns());
            let result = if interp {
                program.run_interpreted(&entry, &[])
            } else {
                program.run(&entry, &[])
            };
            if let Some(r) = &mut recorder {
                r.record(Stage::Script, 0, None, run_begin.unwrap_or(0));
                let total = monotonic_ns().saturating_sub(build_begin.unwrap_or(0));
                r.observe_delivery(total);
            }
            // The trace goes to stderr so program output stays clean.
            for line in program.context_mut().take_trace() {
                eprintln!("trace: {line}");
            }
            if stats {
                let mix = program.context_mut().take_instr_mix();
                let total: u64 = mix.iter().map(|(_, c)| *c).sum();
                eprintln!("stats: {total} instructions executed");
                for (name, count) in mix {
                    let pct = count as f64 * 100.0 / total.max(1) as f64;
                    eprintln!("stats: {count:>10} {pct:>6.2}%  {name}");
                }
                // Per-tier retirement mix (generic dispatch / specialized
                // fast loop / threaded executor). Under --stats the VM pins
                // the generic tier, so this reports where fuel retired —
                // all generic here by design — and documents the armed
                // tiering mode for the run.
                let tiers = program.context_mut().tier_mix();
                if let Some(mode) = program.context_mut().tiering() {
                    eprintln!(
                        "stats: tier mix (tiering={}): generic {} / specialized {} / threaded {}",
                        mode.as_str(),
                        tiers.generic,
                        tiers.specialized,
                        tiers.threaded
                    );
                }
            }
            if let Some(path) = &profile_out {
                let prof = program.context_mut().take_exec_profile();
                let engine = if interp { "interp" } else { "vm" };
                let doc = profile_json(engine, &entry, &prof);
                if let Err(e) = std::fs::write(path, doc) {
                    eprintln!("hiltic: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some((path, t)) = metrics_out.as_ref().zip(telemetry.as_ref()) {
                let snap = t.snapshot();
                // A truncated event stream must not read as a quiet run.
                if snap.events_dropped > 0 {
                    eprintln!(
                        "hiltic run: warning: telemetry event sink overflowed, {} event(s) \
                         dropped (buffered stream is truncated)",
                        snap.events_dropped
                    );
                }
                if let Err(e) = std::fs::write(path, snap.to_json()) {
                    eprintln!("hiltic: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(path) = &trace_out {
                let rec = recorder.take().expect("--trace-out arms the recorder");
                let report = TraceReport::from_parts(vec![rec.finish()], vec![]);
                if stats {
                    eprint!("{}", report.latency.render());
                }
                if let Err(e) = std::fs::write(path, report.to_chrome_json()) {
                    eprintln!("hiltic: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            for line in program.take_output() {
                println!("{line}");
            }
            match result {
                Ok(v) => {
                    if !matches!(v, hilti::value::Value::Null) {
                        println!("=> {}", v.render());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("hiltic: uncaught exception: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("hiltic: unknown command {other:?}");
            ExitCode::FAILURE
        }
    }
}
