//! Property-based tests on the runtime library's core data structures.

use proptest::prelude::*;

use hilti_rt::addr::{Addr, Network};
use hilti_rt::bytestring::Bytes;
use hilti_rt::containers::{ExpireStrategy, ExpiringSet};
use hilti_rt::regexp::{MatchVerdict, Regex};
use hilti_rt::time::{Interval, Time};
use hilti_rt::timer::TimerMgr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bytes contents equal the concatenation of appends, however split.
    #[test]
    fn bytes_is_append_concat(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..30), 0..10)) {
        let b = Bytes::new();
        let mut expected = Vec::new();
        for c in &chunks {
            b.append(c).unwrap();
            expected.extend_from_slice(c);
        }
        prop_assert_eq!(b.to_vec(), expected.clone());
        prop_assert_eq!(b.len(), expected.len());
        // Extract arbitrary valid sub-ranges.
        if !expected.is_empty() {
            let mid = expected.len() / 2;
            prop_assert_eq!(
                b.extract(0, mid as u64).unwrap(),
                expected[..mid].to_vec()
            );
        }
    }

    /// find agrees with a naive search on frozen data.
    #[test]
    fn bytes_find_is_naive_search(
        hay in proptest::collection::vec(0u8..4, 0..60),
        needle in proptest::collection::vec(0u8..4, 1..5),
    ) {
        let b = Bytes::frozen_from_slice(&hay);
        let naive = hay
            .windows(needle.len())
            .position(|w| w == needle.as_slice())
            .map(|p| p as u64);
        prop_assert_eq!(b.find(0, &needle).unwrap(), naive);
    }

    /// Timers fire exactly once, in deadline order, never early.
    #[test]
    fn timers_fire_once_in_order(
        deadlines in proptest::collection::vec(0u64..1000, 1..50),
        step in 1u64..200,
    ) {
        let mut mgr = TimerMgr::new();
        for (i, d) in deadlines.iter().enumerate() {
            mgr.schedule(Time::from_secs(*d), i);
        }
        let mut fired: Vec<(u64, usize)> = Vec::new();
        let mut t = 0u64;
        while t < 1200 {
            t += step;
            for id in mgr.advance(Time::from_secs(t)) {
                prop_assert!(deadlines[id] <= t, "fired early");
                fired.push((deadlines[id], id));
            }
        }
        prop_assert_eq!(fired.len(), deadlines.len());
        // Deadline-ordered (stable within a single advance call).
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 || w[0].0.abs_diff(w[1].0) < step,
                "order violated beyond batch granularity");
        }
    }

    /// Create-expire: an untouched entry lives exactly `timeout` seconds.
    #[test]
    fn create_expire_exact(timeout in 1i64..100, probe in 0i64..200) {
        let mut s: ExpiringSet<u8> = ExpiringSet::new();
        s.set_timeout(ExpireStrategy::Create, Interval::from_secs(timeout));
        s.insert(1, Time::ZERO);
        s.advance(Time::from_secs(probe as u64));
        prop_assert_eq!(s.contains(&1), probe < timeout);
    }

    /// Address masking is idempotent and monotone in prefix length.
    #[test]
    fn mask_idempotent(raw in any::<u32>(), bits in 0u8..=32) {
        let a = Addr::from_v4_u32(raw);
        let m = a.mask(bits);
        prop_assert_eq!(m.mask(bits), m);
        // A shorter mask of the masked address equals the shorter mask of
        // the original.
        if bits > 0 {
            prop_assert_eq!(m.mask(bits - 1), a.mask(bits - 1));
        }
    }

    /// A network contains every address sharing its prefix and no address
    /// differing within the prefix.
    #[test]
    fn network_membership(raw in any::<u32>(), bits in 1u8..=32, flip in 0u8..32) {
        let a = Addr::from_v4_u32(raw);
        let net = Network::new(a, bits).unwrap();
        prop_assert!(net.contains(&a));
        // Flip a bit *inside* the prefix -> not contained (if bit < bits).
        let flipped = Addr::from_v4_u32(raw ^ (1 << (31 - flip.min(31))));
        if flip < bits {
            prop_assert!(!net.contains(&flipped));
        } else {
            prop_assert!(net.contains(&flipped));
        }
    }

    /// Regexp literal-matching agrees with string equality.
    #[test]
    fn regexp_literal_exact(s in "[a-z]{1,12}", t in "[a-z]{1,12}") {
        let re = Regex::new(&s).unwrap();
        match re.match_prefix(t.as_bytes()) {
            MatchVerdict::Match { len, .. } => {
                prop_assert!(t.starts_with(&s));
                prop_assert_eq!(len as usize, s.len());
            }
            MatchVerdict::NoMatch => prop_assert!(!t.starts_with(&s)),
        }
    }

    /// `a*` always matches, with the run length of leading a's.
    #[test]
    fn regexp_star_run_length(input in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 0..40)) {
        let re = Regex::new("a*").unwrap();
        let run = input.iter().take_while(|&&b| b == b'a').count();
        match re.match_prefix(&input) {
            MatchVerdict::Match { len, .. } => prop_assert_eq!(len as usize, run),
            MatchVerdict::NoMatch => prop_assert!(false, "a* must always match"),
        }
    }

    /// FNV continuation composes like one-shot hashing.
    #[test]
    fn fnv_composes(data in proptest::collection::vec(any::<u8>(), 0..100), cut in 0usize..100) {
        use hilti_rt::hashutil::{fnv1a, fnv1a_continue};
        let cut = cut.min(data.len());
        let whole = fnv1a(&data);
        let split = fnv1a_continue(fnv1a(&data[..cut]), &data[cut..]);
        prop_assert_eq!(whole, split);
    }

}
