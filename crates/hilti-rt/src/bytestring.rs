//! HILTI's `bytes` type: an appendable, freezable byte string with
//! position-stable iterators (§3.2 "Rich Data Types").
//!
//! `bytes` is the input type of every HILTI-based parser. Its distinguishing
//! feature is *incremental* growth: a host application appends chunks of
//! payload as they arrive on the wire, and parsing code holds iterators into
//! the string that remain valid across appends. Reading past the currently
//! available data yields [`RtError::would_block`] while the string is still
//! open — which is the signal that makes a BinPAC++ parser suspend its fiber
//! — and `Hilti::IndexError` once the string has been frozen (no more data
//! will ever arrive).
//!
//! Iterators address *logical* offsets from the beginning of the stream, so
//! they stay meaningful even after `trim()` has released already-parsed data,
//! which is what bounds parser memory on long-lived connections.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::error::{RtError, RtResult};
use crate::limits::AllocBudget;

#[derive(Debug)]
struct Inner {
    /// Data from logical offset `base` onward.
    buf: Vec<u8>,
    /// Logical offset of `buf[0]` within the whole stream.
    base: u64,
    /// Once frozen, no further appends; reads past the end raise IndexError
    /// instead of WouldBlock.
    frozen: bool,
    /// Optional shared byte budget: appends charge it, trims credit it,
    /// and dropping the string credits the retained bytes back — so a
    /// torn-down flow returns its memory to the pool it drew from.
    budget: Option<AllocBudget>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(b) = &self.budget {
            b.credit(self.buf.len() as u64);
        }
    }
}

/// An appendable, freezable byte string with stable logical offsets.
///
/// Cloning a `Bytes` yields a second handle to the *same* underlying string
/// (reference semantics, like HILTI's `ref<bytes>`). Use [`Bytes::deep_copy`]
/// for value-semantics copies, e.g. when sending across a channel.
#[derive(Clone)]
pub struct Bytes {
    inner: Rc<RefCell<Inner>>,
}

/// A position within a [`Bytes`] string: the logical offset plus a handle to
/// the string, so iterators survive appends and trims.
#[derive(Clone)]
pub struct BytesIter {
    bytes: Bytes,
    offset: u64,
}

impl Bytes {
    /// Creates an empty, open (appendable) byte string.
    pub fn new() -> Self {
        Bytes {
            inner: Rc::new(RefCell::new(Inner {
                buf: Vec::new(),
                base: 0,
                frozen: false,
                budget: None,
            })),
        }
    }

    /// Creates a byte string from existing data, still open for appends.
    pub fn from_slice(data: &[u8]) -> Self {
        let b = Bytes::new();
        b.append(data).expect("fresh Bytes cannot be frozen");
        b
    }

    /// Creates a frozen byte string from existing data (a complete PDU).
    pub fn frozen_from_slice(data: &[u8]) -> Self {
        let b = Bytes::from_slice(data);
        b.freeze();
        b
    }

    /// Appends a chunk of data. Fails if the string has been frozen, or if
    /// an attached budget cannot cover the growth (the string is unchanged
    /// in that case, so a caught `Hilti::ResourceExhausted` leaves it
    /// consistent).
    pub fn append(&self, data: &[u8]) -> RtResult<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.frozen {
            return Err(RtError::frozen("append to frozen bytes"));
        }
        if let Some(b) = &inner.budget {
            b.charge(data.len() as u64)?;
        }
        inner.buf.extend_from_slice(data);
        Ok(())
    }

    /// Attaches a shared byte budget. The bytes already retained are
    /// charged (without enforcement) so accounting stays consistent.
    pub fn set_budget(&self, budget: AllocBudget) {
        let mut inner = self.inner.borrow_mut();
        if let Some(old) = inner.budget.take() {
            old.credit(inner.buf.len() as u64);
        }
        budget.charge_unchecked(inner.buf.len() as u64);
        inner.budget = Some(budget);
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<AllocBudget> {
        self.inner.borrow().budget.clone()
    }

    /// Marks the string complete: no further data will arrive.
    pub fn freeze(&self) {
        self.inner.borrow_mut().frozen = true;
    }

    /// Reopens a frozen string (used by tests and by hosts that recycle
    /// buffers; HILTI exposes this as `bytes.unfreeze`).
    pub fn unfreeze(&self) {
        self.inner.borrow_mut().frozen = false;
    }

    pub fn is_frozen(&self) -> bool {
        self.inner.borrow().frozen
    }

    /// Number of bytes currently available (excluding trimmed data).
    pub fn len(&self) -> usize {
        self.inner.borrow().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical offset one past the last available byte.
    pub fn end_offset(&self) -> u64 {
        let inner = self.inner.borrow();
        inner.base + inner.buf.len() as u64
    }

    /// Logical offset of the first retained byte.
    pub fn begin_offset(&self) -> u64 {
        self.inner.borrow().base
    }

    /// Iterator at the first retained byte.
    pub fn begin(&self) -> BytesIter {
        BytesIter {
            bytes: self.clone(),
            offset: self.begin_offset(),
        }
    }

    /// Iterator one past the currently available data. Note that for an
    /// open string this position *moves* as data is appended; HILTI parsing
    /// code treats it as "the frontier", not a fixed end.
    pub fn end(&self) -> BytesIter {
        BytesIter {
            bytes: self.clone(),
            offset: self.end_offset(),
        }
    }

    /// Iterator at an absolute logical offset (no bounds check; checking
    /// happens on dereference, as HILTI's iterator semantics prescribe).
    pub fn iter_at(&self, offset: u64) -> BytesIter {
        BytesIter {
            bytes: self.clone(),
            offset,
        }
    }

    /// Reads one byte at a logical offset.
    pub fn at(&self, offset: u64) -> RtResult<u8> {
        let inner = self.inner.borrow();
        if offset < inner.base {
            return Err(RtError::index(format!(
                "offset {offset} before trimmed base {}",
                inner.base
            )));
        }
        let rel = (offset - inner.base) as usize;
        if rel >= inner.buf.len() {
            if inner.frozen {
                Err(RtError::index(format!(
                    "offset {offset} past frozen end {}",
                    inner.base + inner.buf.len() as u64
                )))
            } else {
                Err(RtError::would_block())
            }
        } else {
            Ok(inner.buf[rel])
        }
    }

    /// Copies out `[from, to)` as a `Vec<u8>`. All requested data must be
    /// available; otherwise WouldBlock/IndexError as for [`Bytes::at`].
    pub fn extract(&self, from: u64, to: u64) -> RtResult<Vec<u8>> {
        if to < from {
            return Err(RtError::value(format!("bad range {from}..{to}")));
        }
        let inner = self.inner.borrow();
        if from < inner.base {
            return Err(RtError::index("range begins before trimmed base"));
        }
        let end = inner.base + inner.buf.len() as u64;
        if to > end {
            return if inner.frozen {
                Err(RtError::index("range extends past frozen end"))
            } else {
                Err(RtError::would_block())
            };
        }
        let a = (from - inner.base) as usize;
        let b = (to - inner.base) as usize;
        Ok(inner.buf[a..b].to_vec())
    }

    /// Calls `f` with the contiguous slice of available data starting at
    /// `from` (empty if `from` is at/past the frontier). This is the
    /// zero-copy path used by the regexp engine and unpack primitives.
    pub fn with_available<R>(&self, from: u64, f: impl FnOnce(&[u8]) -> R) -> RtResult<R> {
        let inner = self.inner.borrow();
        if from < inner.base {
            return Err(RtError::index("offset before trimmed base"));
        }
        let rel = ((from - inner.base) as usize).min(inner.buf.len());
        Ok(f(&inner.buf[rel..]))
    }

    /// Releases all data before `offset`, keeping logical offsets stable.
    /// Iterators pointing before `offset` become invalid (dereferencing
    /// them raises `Hilti::IndexError`).
    pub fn trim(&self, offset: u64) -> RtResult<()> {
        let mut inner = self.inner.borrow_mut();
        if offset <= inner.base {
            return Ok(());
        }
        let end = inner.base + inner.buf.len() as u64;
        if offset > end {
            return Err(RtError::index("trim past end of data"));
        }
        let n = (offset - inner.base) as usize;
        inner.buf.drain(..n);
        inner.base = offset;
        if let Some(b) = &inner.budget {
            b.credit(n as u64);
        }
        Ok(())
    }

    /// Finds the first occurrence of `needle` at or after `from`, returning
    /// the logical offset of its first byte. `Ok(None)` means "not found in
    /// the frozen remainder"; WouldBlock means "not found *yet*" (an open
    /// string where a later append could still complete a match).
    pub fn find(&self, from: u64, needle: &[u8]) -> RtResult<Option<u64>> {
        if needle.is_empty() {
            return Ok(Some(from));
        }
        let inner = self.inner.borrow();
        if from < inner.base {
            return Err(RtError::index("search start before trimmed base"));
        }
        let rel = ((from - inner.base) as usize).min(inner.buf.len());
        let hay = &inner.buf[rel..];
        if let Some(pos) = hay.windows(needle.len()).position(|w| w == needle) {
            return Ok(Some(from + pos as u64));
        }
        if inner.frozen {
            Ok(None)
        } else {
            Err(RtError::would_block())
        }
    }

    /// Full contents currently retained, as a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.borrow().buf.clone()
    }

    /// A value-semantics copy (used when crossing thread boundaries).
    pub fn deep_copy(&self) -> Bytes {
        let inner = self.inner.borrow();
        let b = Bytes::new();
        {
            let mut bi = b.inner.borrow_mut();
            bi.buf = inner.buf.clone();
            bi.base = inner.base;
            bi.frozen = inner.frozen;
        }
        b
    }

    /// Identity comparison: do two handles refer to the same string?
    pub fn same(&self, other: &Bytes) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    /// Content equality over the retained data, like HILTI's `bytes` equal.
    fn eq(&self, other: &Self) -> bool {
        self.same(other) || self.inner.borrow().buf == other.inner.borrow().buf
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        write!(f, "b\"")?;
        for &b in inner.buf.iter().take(64) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if inner.buf.len() > 64 {
            write!(f, "...({} bytes)", inner.buf.len())?;
        }
        write!(f, "\"")?;
        if inner.frozen {
            write!(f, " (frozen)")?;
        }
        Ok(())
    }
}

impl BytesIter {
    /// The logical offset this iterator addresses.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The underlying string.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Dereferences the iterator, raising WouldBlock/IndexError as for
    /// [`Bytes::at`].
    pub fn deref(&self) -> RtResult<u8> {
        self.bytes.at(self.offset)
    }

    /// True once the iterator sits at the frontier of a *frozen* string —
    /// i.e. there is definitively no more data.
    pub fn at_frozen_end(&self) -> bool {
        self.bytes.is_frozen() && self.offset >= self.bytes.end_offset()
    }

    /// True if dereferencing would currently block (open string, no data yet).
    pub fn would_block(&self) -> bool {
        !self.bytes.is_frozen() && self.offset >= self.bytes.end_offset()
    }

    /// Advances by `n` positions (no bounds check until dereference).
    pub fn advance(&self, n: u64) -> BytesIter {
        BytesIter {
            bytes: self.bytes.clone(),
            offset: self.offset + n,
        }
    }

    /// Distance to another iterator over the same string.
    pub fn distance(&self, other: &BytesIter) -> RtResult<u64> {
        if !self.bytes.same(&other.bytes) {
            return Err(RtError::new(
                crate::error::ExceptionKind::InvalidIterator,
                "iterators over different bytes objects",
            ));
        }
        other
            .offset
            .checked_sub(self.offset)
            .ok_or_else(|| RtError::value("negative iterator distance"))
    }
}

impl fmt::Debug for BytesIter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesIter@{}", self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExceptionKind;

    #[test]
    fn append_and_read() {
        let b = Bytes::new();
        b.append(b"hello").unwrap();
        assert_eq!(b.len(), 5);
        assert_eq!(b.at(0).unwrap(), b'h');
        assert_eq!(b.at(4).unwrap(), b'o');
    }

    #[test]
    fn read_past_open_end_would_block() {
        let b = Bytes::from_slice(b"ab");
        assert_eq!(b.at(2).unwrap_err().kind, ExceptionKind::WouldBlock);
        b.append(b"c").unwrap();
        assert_eq!(b.at(2).unwrap(), b'c');
    }

    #[test]
    fn read_past_frozen_end_is_index_error() {
        let b = Bytes::frozen_from_slice(b"ab");
        assert_eq!(b.at(2).unwrap_err().kind, ExceptionKind::IndexError);
    }

    #[test]
    fn append_after_freeze_fails() {
        let b = Bytes::frozen_from_slice(b"x");
        assert_eq!(b.append(b"y").unwrap_err().kind, ExceptionKind::Frozen);
        b.unfreeze();
        b.append(b"y").unwrap();
        assert_eq!(b.to_vec(), b"xy");
    }

    #[test]
    fn iterators_survive_appends() {
        let b = Bytes::from_slice(b"GET ");
        let it = b.begin().advance(4);
        assert!(it.would_block());
        b.append(b"/index.html").unwrap();
        assert_eq!(it.deref().unwrap(), b'/');
        assert!(!it.would_block());
    }

    #[test]
    fn trim_keeps_logical_offsets() {
        let b = Bytes::from_slice(b"0123456789");
        b.trim(4).unwrap();
        assert_eq!(b.len(), 6);
        assert_eq!(b.at(4).unwrap(), b'4');
        assert_eq!(b.at(3).unwrap_err().kind, ExceptionKind::IndexError);
        assert_eq!(b.begin_offset(), 4);
        // Extraction across the retained region still works.
        assert_eq!(b.extract(5, 8).unwrap(), b"567");
    }

    #[test]
    fn trim_is_idempotent_backwards() {
        let b = Bytes::from_slice(b"abcdef");
        b.trim(3).unwrap();
        b.trim(2).unwrap(); // no-op, already trimmed past
        assert_eq!(b.begin_offset(), 3);
        assert!(b.trim(100).is_err());
    }

    #[test]
    fn extract_range_checks() {
        let b = Bytes::from_slice(b"abcdef");
        assert_eq!(b.extract(1, 4).unwrap(), b"bcd");
        assert_eq!(b.extract(4, 9).unwrap_err().kind, ExceptionKind::WouldBlock);
        b.freeze();
        assert_eq!(b.extract(4, 9).unwrap_err().kind, ExceptionKind::IndexError);
        assert!(b.extract(4, 2).is_err());
    }

    #[test]
    fn find_semantics() {
        let b = Bytes::from_slice(b"abc\r\ndef");
        assert_eq!(b.find(0, b"\r\n").unwrap(), Some(3));
        assert_eq!(
            b.find(4, b"\r\n").unwrap_err().kind,
            ExceptionKind::WouldBlock
        );
        b.freeze();
        assert_eq!(b.find(4, b"\r\n").unwrap(), None);
        assert_eq!(b.find(0, b"").unwrap(), Some(0));
    }

    #[test]
    fn find_after_trim() {
        let b = Bytes::from_slice(b"xxxxneedle");
        b.trim(2).unwrap();
        assert_eq!(b.find(2, b"needle").unwrap(), Some(4));
        assert!(b.find(0, b"n").is_err());
    }

    #[test]
    fn deep_copy_is_independent() {
        let a = Bytes::from_slice(b"abc");
        let b = a.deep_copy();
        assert_eq!(a, b);
        assert!(!a.same(&b));
        b.append(b"d").unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn clone_is_shared() {
        let a = Bytes::from_slice(b"abc");
        let b = a.clone();
        assert!(a.same(&b));
        b.append(b"d").unwrap();
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn iter_distance() {
        let b = Bytes::from_slice(b"hello world");
        let i = b.begin();
        let j = i.advance(5);
        assert_eq!(i.distance(&j).unwrap(), 5);
        assert!(j.distance(&i).is_err());
        let other = Bytes::from_slice(b"x");
        assert!(i.distance(&other.begin()).is_err());
    }

    #[test]
    fn with_available_window() {
        let b = Bytes::from_slice(b"0123456789");
        b.trim(2).unwrap();
        let got = b.with_available(5, |s| s.to_vec()).unwrap();
        assert_eq!(got, b"56789");
        let empty = b.with_available(99, |s| s.len()).unwrap();
        assert_eq!(empty, 0);
    }

    #[test]
    fn budget_charged_on_append_credited_on_trim_and_drop() {
        use crate::limits::AllocBudget;
        let budget = AllocBudget::with_limit(10);
        let b = Bytes::new();
        b.set_budget(budget.clone());
        b.append(b"12345678").unwrap();
        assert_eq!(budget.used(), 8);
        // Over-budget append fails without mutating the string.
        let e = b.append(b"9abc").unwrap_err();
        assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
        assert_eq!(b.len(), 8);
        assert_eq!(budget.used(), 8);
        // Trimming parsed data returns bytes to the pool.
        b.trim(5).unwrap();
        assert_eq!(budget.used(), 3);
        b.append(b"9abc").unwrap();
        assert_eq!(budget.used(), 7);
        assert_eq!(budget.peak(), 8);
        drop(b);
        assert_eq!(budget.used(), 0, "drop credits retained bytes");
    }

    #[test]
    fn set_budget_adopts_existing_bytes() {
        use crate::limits::AllocBudget;
        let b = Bytes::from_slice(b"hello");
        let budget = AllocBudget::with_limit(3);
        b.set_budget(budget.clone());
        assert_eq!(budget.used(), 5, "pre-existing bytes are accounted");
        assert!(b.append(b"x").is_err(), "already over the cap");
    }

    #[test]
    fn frontier_end_iterator_moves() {
        let b = Bytes::from_slice(b"ab");
        let end = b.end();
        assert_eq!(end.offset(), 2);
        b.append(b"cd").unwrap();
        // A freshly taken end reflects growth; the old iterator now points
        // at valid data (the frontier moved past it).
        assert_eq!(b.end().offset(), 4);
        assert_eq!(end.deref().unwrap(), b'c');
    }
}
