//! HILTI's `bytes` type: an appendable, freezable byte string with
//! position-stable iterators (§3.2 "Rich Data Types").
//!
//! `bytes` is the input type of every HILTI-based parser. Its distinguishing
//! feature is *incremental* growth: a host application appends chunks of
//! payload as they arrive on the wire, and parsing code holds iterators into
//! the string that remain valid across appends. Reading past the currently
//! available data yields [`RtError::would_block`] while the string is still
//! open — which is the signal that makes a BinPAC++ parser suspend its fiber
//! — and `Hilti::IndexError` once the string has been frozen (no more data
//! will ever arrive).
//!
//! Iterators address *logical* offsets from the beginning of the stream, so
//! they stay meaningful even after `trim()` has released already-parsed data,
//! which is what bounds parser memory on long-lived connections.
//!
//! # Chunked, arena-borrowing representation
//!
//! Internally the string is a list of contiguous *chunks*. A chunk either
//! owns its bytes (`Vec<u8>`, the classic path) or *borrows* them from a
//! [`SharedArena`] — a reference-counted backing store such as the packet
//! trace buffer. [`Bytes::append_shared`] records an `(arena, off, len)`
//! slice without copying, so the hot delivery path from capture to parse
//! performs zero payload memcpys; [`Bytes::trim`] drops whole chunks (and
//! narrows a partially-consumed one) as parsing advances. All read paths
//! operate on logical offsets and behave identically regardless of how the
//! bytes are chunked; operations that need a contiguous view of data that
//! straddles a chunk boundary (regexp matching, `find`) coalesce the
//! retained region into a single owned chunk first — a one-time internal
//! copy that only happens when a value genuinely spans deliveries.
//!
//! Budget accounting is *logical*: an attached [`AllocBudget`] is charged
//! for appended bytes whether they are owned or borrowed (a borrowed chunk
//! pins its arena, so the flow is accountable for the bytes either way),
//! and credited on trim and drop. This keeps charge/credit pairing exact —
//! a torn-down flow returns precisely what it charged — and makes governed
//! behavior independent of the physical representation.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::error::{RtError, RtResult};
use crate::limits::AllocBudget;

/// A shared, immutable backing store that [`Bytes`] chunks can borrow from.
///
/// Any `Arc` of a byte-slice-like value coerces: `Arc<Vec<u8>>`, an
/// `Arc`-ed trace buffer, a memory-mapped file wrapper. The arena must not
/// change the bytes a live slice refers to.
pub type SharedArena = Arc<dyn AsRef<[u8]> + Send + Sync>;

/// A checked `(arena, offset, len)` window into a [`SharedArena`].
///
/// Holding an `ArenaSlice` keeps the arena alive; the slice itself is
/// immutable (narrowing happens only through [`Bytes::trim`]).
#[derive(Clone)]
pub struct ArenaSlice {
    arena: SharedArena,
    off: usize,
    len: usize,
}

impl ArenaSlice {
    /// Creates a slice over `arena[off..off+len]`.
    ///
    /// # Panics
    /// If the range is out of the arena's bounds — slices are constructed
    /// by hosts from trusted frame metadata, so a violation is a host bug,
    /// not hostile input.
    pub fn new(arena: SharedArena, off: usize, len: usize) -> ArenaSlice {
        let total = (*arena).as_ref().len();
        assert!(
            off.checked_add(len).is_some_and(|end| end <= total),
            "arena slice {off}+{len} out of bounds (arena holds {total} bytes)"
        );
        ArenaSlice { arena, off, len }
    }

    /// The borrowed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &(*self.arena).as_ref()[self.off..self.off + self.len]
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Narrows the slice from the front (trim support).
    fn advance(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.off += n;
        self.len -= n;
    }
}

impl fmt::Debug for ArenaSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArenaSlice {{ off: {}, len: {} }}", self.off, self.len)
    }
}

/// One delivery's worth of payload on its way into a parser: either a
/// transient slice that must be copied to outlive the call, or an arena
/// slice the parser's [`Bytes`] can hold on to without copying.
///
/// This is the boundary type pipelines hand to the binpac feed path; it lets
/// a single feed API serve both the zero-copy arena case and reassembled
/// (owned) segments.
#[derive(Debug)]
pub enum FeedChunk<'a> {
    /// Bytes that only live for the duration of the call; appending copies.
    Copy(&'a [u8]),
    /// Bytes backed by a shared arena; appending borrows.
    Borrow(ArenaSlice),
}

impl FeedChunk<'_> {
    pub fn len(&self) -> usize {
        match self {
            FeedChunk::Copy(s) => s.len(),
            FeedChunk::Borrow(a) => a.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Physical storage of one chunk.
#[derive(Debug)]
enum ChunkData {
    Owned(Vec<u8>),
    Borrowed(ArenaSlice),
}

/// A contiguous run of the string: bytes for logical offsets
/// `[start, start + len)`.
#[derive(Debug)]
struct Chunk {
    start: u64,
    data: ChunkData,
}

impl Chunk {
    fn len(&self) -> usize {
        match &self.data {
            ChunkData::Owned(v) => v.len(),
            ChunkData::Borrowed(s) => s.len(),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.data {
            ChunkData::Owned(v) => v,
            ChunkData::Borrowed(s) => s.as_slice(),
        }
    }

    /// Logical offset one past this chunk's last byte.
    fn end(&self) -> u64 {
        self.start + self.len() as u64
    }
}

#[derive(Debug)]
struct Inner {
    /// Contiguous chunks covering logical offsets `[base, end)`; never
    /// empty chunks, `chunks[0].start == base`, each chunk starts where
    /// the previous one ends.
    chunks: Vec<Chunk>,
    /// Logical offset of the first retained byte.
    base: u64,
    /// Logical offset one past the last available byte (the frontier).
    end: u64,
    /// Once frozen, no further appends; reads past the end raise IndexError
    /// instead of WouldBlock.
    frozen: bool,
    /// Optional shared byte budget: appends charge it (owned and borrowed
    /// alike — logical accounting), trims credit it, and dropping the
    /// string credits the retained bytes back — so a torn-down flow
    /// returns exactly what it charged.
    budget: Option<AllocBudget>,
}

impl Inner {
    /// Retained length in bytes.
    fn len(&self) -> usize {
        (self.end - self.base) as usize
    }

    /// Index of the chunk containing `offset`; requires
    /// `base <= offset < end`.
    fn chunk_containing(&self, offset: u64) -> usize {
        debug_assert!(offset >= self.base && offset < self.end);
        self.chunks.partition_point(|c| c.end() <= offset)
    }

    /// Byte at a logical offset; requires `base <= offset < end`.
    fn byte_at(&self, offset: u64) -> u8 {
        let c = &self.chunks[self.chunk_containing(offset)];
        c.as_slice()[(offset - c.start) as usize]
    }

    /// All retained bytes, concatenated.
    fn flatten_to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len());
        for c in &self.chunks {
            v.extend_from_slice(c.as_slice());
        }
        v
    }

    /// Collapses the retained region into a single owned chunk, so callers
    /// that need a contiguous `&[u8]` across chunk boundaries can have one.
    /// Logical content, offsets, and budget accounting are unchanged.
    fn make_contiguous(&mut self) {
        if self.chunks.len() <= 1 {
            return;
        }
        let v = self.flatten_to_vec();
        let start = self.base;
        self.chunks.clear();
        self.chunks.push(Chunk {
            start,
            data: ChunkData::Owned(v),
        });
    }

    /// Appends owned bytes, extending the tail chunk when possible so that
    /// byte-at-a-time feeds don't degenerate into one chunk per byte.
    fn push_owned(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        match self.chunks.last_mut() {
            Some(Chunk {
                data: ChunkData::Owned(v),
                ..
            }) => v.extend_from_slice(data),
            _ => self.chunks.push(Chunk {
                start: self.end,
                data: ChunkData::Owned(data.to_vec()),
            }),
        }
        self.end += data.len() as u64;
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Some(b) = &self.budget {
            b.credit(self.end - self.base);
        }
    }
}

/// An appendable, freezable byte string with stable logical offsets.
///
/// Cloning a `Bytes` yields a second handle to the *same* underlying string
/// (reference semantics, like HILTI's `ref<bytes>`). Use [`Bytes::deep_copy`]
/// for value-semantics copies, e.g. when sending across a channel.
#[derive(Clone)]
pub struct Bytes {
    inner: Rc<RefCell<Inner>>,
}

/// A position within a [`Bytes`] string: the logical offset plus a handle to
/// the string, so iterators survive appends and trims.
#[derive(Clone)]
pub struct BytesIter {
    bytes: Bytes,
    offset: u64,
}

impl Bytes {
    /// Creates an empty, open (appendable) byte string.
    pub fn new() -> Self {
        Bytes {
            inner: Rc::new(RefCell::new(Inner {
                chunks: Vec::new(),
                base: 0,
                end: 0,
                frozen: false,
                budget: None,
            })),
        }
    }

    /// Creates a byte string from existing data, still open for appends.
    pub fn from_slice(data: &[u8]) -> Self {
        let b = Bytes::new();
        b.append(data).expect("fresh Bytes cannot be frozen");
        b
    }

    /// Creates a frozen byte string from existing data (a complete PDU).
    pub fn frozen_from_slice(data: &[u8]) -> Self {
        let b = Bytes::from_slice(data);
        b.freeze();
        b
    }

    /// Creates an open byte string whose first chunk borrows from a shared
    /// arena (no copy).
    pub fn from_arena(slice: ArenaSlice) -> Self {
        let b = Bytes::new();
        b.append_shared(slice)
            .expect("fresh Bytes cannot be frozen");
        b
    }

    /// Creates a frozen byte string borrowing a complete PDU from a shared
    /// arena — the zero-copy datagram path.
    pub fn frozen_from_arena(slice: ArenaSlice) -> Self {
        let b = Bytes::from_arena(slice);
        b.freeze();
        b
    }

    /// Appends a chunk of data. Fails if the string has been frozen, or if
    /// an attached budget cannot cover the growth (the string is unchanged
    /// in that case, so a caught `Hilti::ResourceExhausted` leaves it
    /// consistent).
    pub fn append(&self, data: &[u8]) -> RtResult<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.frozen {
            return Err(RtError::frozen("append to frozen bytes"));
        }
        if let Some(b) = &inner.budget {
            b.charge(data.len() as u64)?;
        }
        inner.push_owned(data);
        Ok(())
    }

    /// Appends bytes *borrowed* from a shared arena, without copying. Same
    /// freeze and budget semantics as [`Bytes::append`]: the budget is
    /// charged for the logical length (the chunk pins its arena, so the
    /// flow is accountable for those bytes either way).
    pub fn append_shared(&self, slice: ArenaSlice) -> RtResult<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.frozen {
            return Err(RtError::frozen("append to frozen bytes"));
        }
        if let Some(b) = &inner.budget {
            b.charge(slice.len() as u64)?;
        }
        if slice.is_empty() {
            return Ok(());
        }
        let start = inner.end;
        inner.end += slice.len() as u64;
        inner.chunks.push(Chunk {
            start,
            data: ChunkData::Borrowed(slice),
        });
        Ok(())
    }

    /// Appends one delivery, copying or borrowing per the chunk kind.
    pub fn append_chunk(&self, chunk: FeedChunk<'_>) -> RtResult<()> {
        match chunk {
            FeedChunk::Copy(s) => self.append(s),
            FeedChunk::Borrow(a) => self.append_shared(a),
        }
    }

    /// Number of storage chunks currently backing the string (diagnostic;
    /// 0 or 1 means the data is already contiguous).
    pub fn chunk_count(&self) -> usize {
        self.inner.borrow().chunks.len()
    }

    /// Bytes currently backed by borrowed arena chunks (diagnostic).
    pub fn borrowed_len(&self) -> usize {
        self.inner
            .borrow()
            .chunks
            .iter()
            .filter(|c| matches!(c.data, ChunkData::Borrowed(_)))
            .map(Chunk::len)
            .sum()
    }

    /// Attaches a shared byte budget. The bytes already retained are
    /// charged (without enforcement) so accounting stays consistent.
    pub fn set_budget(&self, budget: AllocBudget) {
        let mut inner = self.inner.borrow_mut();
        let retained = inner.end - inner.base;
        if let Some(old) = inner.budget.take() {
            old.credit(retained);
        }
        budget.charge_unchecked(retained);
        inner.budget = Some(budget);
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<AllocBudget> {
        self.inner.borrow().budget.clone()
    }

    /// Marks the string complete: no further data will arrive.
    pub fn freeze(&self) {
        self.inner.borrow_mut().frozen = true;
    }

    /// Reopens a frozen string (used by tests and by hosts that recycle
    /// buffers; HILTI exposes this as `bytes.unfreeze`).
    pub fn unfreeze(&self) {
        self.inner.borrow_mut().frozen = false;
    }

    pub fn is_frozen(&self) -> bool {
        self.inner.borrow().frozen
    }

    /// Number of bytes currently available (excluding trimmed data).
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical offset one past the last available byte.
    pub fn end_offset(&self) -> u64 {
        self.inner.borrow().end
    }

    /// Logical offset of the first retained byte.
    pub fn begin_offset(&self) -> u64 {
        self.inner.borrow().base
    }

    /// Iterator at the first retained byte.
    pub fn begin(&self) -> BytesIter {
        BytesIter {
            bytes: self.clone(),
            offset: self.begin_offset(),
        }
    }

    /// Iterator one past the currently available data. Note that for an
    /// open string this position *moves* as data is appended; HILTI parsing
    /// code treats it as "the frontier", not a fixed end.
    pub fn end(&self) -> BytesIter {
        BytesIter {
            bytes: self.clone(),
            offset: self.end_offset(),
        }
    }

    /// Iterator at an absolute logical offset (no bounds check; checking
    /// happens on dereference, as HILTI's iterator semantics prescribe).
    pub fn iter_at(&self, offset: u64) -> BytesIter {
        BytesIter {
            bytes: self.clone(),
            offset,
        }
    }

    /// Reads one byte at a logical offset.
    pub fn at(&self, offset: u64) -> RtResult<u8> {
        let inner = self.inner.borrow();
        if offset < inner.base {
            return Err(RtError::index(format!(
                "offset {offset} before trimmed base {}",
                inner.base
            )));
        }
        if offset >= inner.end {
            if inner.frozen {
                Err(RtError::index(format!(
                    "offset {offset} past frozen end {}",
                    inner.end
                )))
            } else {
                Err(RtError::would_block())
            }
        } else {
            Ok(inner.byte_at(offset))
        }
    }

    /// Copies out `[from, to)` as a `Vec<u8>`. All requested data must be
    /// available; otherwise WouldBlock/IndexError as for [`Bytes::at`].
    pub fn extract(&self, from: u64, to: u64) -> RtResult<Vec<u8>> {
        if to < from {
            return Err(RtError::value(format!("bad range {from}..{to}")));
        }
        let inner = self.inner.borrow();
        if from < inner.base {
            return Err(RtError::index("range begins before trimmed base"));
        }
        if to > inner.end {
            return if inner.frozen {
                Err(RtError::index("range extends past frozen end"))
            } else {
                Err(RtError::would_block())
            };
        }
        let mut out = Vec::with_capacity((to - from) as usize);
        if to > from {
            let mut i = inner.chunk_containing(from);
            let mut pos = from;
            while pos < to {
                let c = &inner.chunks[i];
                let s = c.as_slice();
                let a = (pos - c.start) as usize;
                let b = (((to - c.start) as usize).min(s.len())).max(a);
                out.extend_from_slice(&s[a..b]);
                pos = c.start + b as u64;
                i += 1;
            }
        }
        Ok(out)
    }

    /// Calls `f` with the contiguous slice of available data starting at
    /// `from` (empty if `from` is at/past the frontier). This is the
    /// zero-copy path used by the regexp engine and unpack primitives.
    /// When the available data straddles a chunk boundary it is coalesced
    /// into one owned chunk first (a one-time internal copy).
    pub fn with_available<R>(&self, from: u64, f: impl FnOnce(&[u8]) -> R) -> RtResult<R> {
        let mut inner = self.inner.borrow_mut();
        if from < inner.base {
            return Err(RtError::index("offset before trimmed base"));
        }
        let from = from.min(inner.end);
        if from == inner.end {
            return Ok(f(&[]));
        }
        if inner.chunk_containing(from) + 1 != inner.chunks.len() {
            inner.make_contiguous();
        }
        let c = inner.chunks.last().expect("nonempty retained region");
        let rel = (from - c.start) as usize;
        Ok(f(&c.as_slice()[rel..]))
    }

    /// Releases all data before `offset`, keeping logical offsets stable.
    /// Iterators pointing before `offset` become invalid (dereferencing
    /// them raises `Hilti::IndexError`). Whole chunks before the cut are
    /// dropped (releasing their arena pins); a partially-consumed chunk is
    /// narrowed in place.
    pub fn trim(&self, offset: u64) -> RtResult<()> {
        let mut inner = self.inner.borrow_mut();
        if offset <= inner.base {
            return Ok(());
        }
        if offset > inner.end {
            return Err(RtError::index("trim past end of data"));
        }
        let n = offset - inner.base;
        let whole = inner.chunks.partition_point(|c| c.end() <= offset);
        inner.chunks.drain(..whole);
        if let Some(first) = inner.chunks.first_mut() {
            if offset > first.start {
                let k = (offset - first.start) as usize;
                match &mut first.data {
                    ChunkData::Owned(v) => {
                        v.drain(..k);
                    }
                    ChunkData::Borrowed(s) => s.advance(k),
                }
                first.start = offset;
            }
        }
        inner.base = offset;
        if let Some(b) = &inner.budget {
            b.credit(n);
        }
        Ok(())
    }

    /// Finds the first occurrence of `needle` at or after `from`, returning
    /// the logical offset of its first byte. `Ok(None)` means "not found in
    /// the frozen remainder"; WouldBlock means "not found *yet*" (an open
    /// string where a later append could still complete a match).
    pub fn find(&self, from: u64, needle: &[u8]) -> RtResult<Option<u64>> {
        if needle.is_empty() {
            return Ok(Some(from));
        }
        let mut inner = self.inner.borrow_mut();
        if from < inner.base {
            return Err(RtError::index("search start before trimmed base"));
        }
        let from_c = from.min(inner.end);
        if from_c < inner.end {
            if inner.chunk_containing(from_c) + 1 != inner.chunks.len() {
                inner.make_contiguous();
            }
            let c = inner.chunks.last().expect("nonempty retained region");
            let rel = (from_c - c.start) as usize;
            let hay = &c.as_slice()[rel..];
            if let Some(pos) = hay.windows(needle.len()).position(|w| w == needle) {
                return Ok(Some(from_c + pos as u64));
            }
        }
        if inner.frozen {
            Ok(None)
        } else {
            Err(RtError::would_block())
        }
    }

    /// Full contents currently retained, as a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.borrow().flatten_to_vec()
    }

    /// A value-semantics copy (used when crossing thread boundaries). The
    /// copy is flattened into one owned chunk. If the source has a budget
    /// attached, the copy shares it and is charged for its own retained
    /// bytes — two live copies of a governed flow's data cost the pool
    /// twice, and each credits its share back when dropped.
    pub fn deep_copy(&self) -> Bytes {
        let inner = self.inner.borrow();
        let b = Bytes::new();
        {
            let mut bi = b.inner.borrow_mut();
            let data = inner.flatten_to_vec();
            bi.base = inner.base;
            bi.end = inner.end;
            bi.frozen = inner.frozen;
            if !data.is_empty() {
                bi.chunks.push(Chunk {
                    start: inner.base,
                    data: ChunkData::Owned(data),
                });
            }
            if let Some(budget) = &inner.budget {
                budget.charge_unchecked(inner.end - inner.base);
                bi.budget = Some(budget.clone());
            }
        }
        b
    }

    /// Identity comparison: do two handles refer to the same string?
    pub fn same(&self, other: &Bytes) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

/// Streaming content comparison across two (differently) chunked strings.
fn content_eq(x: &Inner, y: &Inner) -> bool {
    if x.len() != y.len() {
        return false;
    }
    let mut xs = x.chunks.iter().map(Chunk::as_slice);
    let mut ys = y.chunks.iter().map(Chunk::as_slice);
    let (mut a, mut b): (&[u8], &[u8]) = (&[], &[]);
    loop {
        if a.is_empty() {
            a = match xs.next() {
                Some(s) => s,
                None => return true, // equal lengths: y is exhausted too
            };
        }
        if b.is_empty() {
            b = match ys.next() {
                Some(s) => s,
                None => return true,
            };
        }
        let n = a.len().min(b.len());
        if a[..n] != b[..n] {
            return false;
        }
        a = &a[n..];
        b = &b[n..];
    }
}

impl PartialEq for Bytes {
    /// Content equality over the retained data, like HILTI's `bytes` equal.
    /// Chunk layout is irrelevant: a borrowed-chunk string equals an owned
    /// flat string with the same logical content.
    fn eq(&self, other: &Self) -> bool {
        self.same(other) || content_eq(&self.inner.borrow(), &other.inner.borrow())
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        let total = inner.len();
        write!(f, "b\"")?;
        let mut shown = 0usize;
        'outer: for c in &inner.chunks {
            for &b in c.as_slice() {
                if shown == 64 {
                    break 'outer;
                }
                if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\x{b:02x}")?;
                }
                shown += 1;
            }
        }
        if total > 64 {
            write!(f, "...({total} bytes)")?;
        }
        write!(f, "\"")?;
        if inner.frozen {
            write!(f, " (frozen)")?;
        }
        Ok(())
    }
}

impl BytesIter {
    /// The logical offset this iterator addresses.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The underlying string.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Dereferences the iterator, raising WouldBlock/IndexError as for
    /// [`Bytes::at`].
    pub fn deref(&self) -> RtResult<u8> {
        self.bytes.at(self.offset)
    }

    /// True once the iterator sits at the frontier of a *frozen* string —
    /// i.e. there is definitively no more data.
    pub fn at_frozen_end(&self) -> bool {
        self.bytes.is_frozen() && self.offset >= self.bytes.end_offset()
    }

    /// True if dereferencing would currently block (open string, no data yet).
    pub fn would_block(&self) -> bool {
        !self.bytes.is_frozen() && self.offset >= self.bytes.end_offset()
    }

    /// Advances by `n` positions (no bounds check until dereference).
    pub fn advance(&self, n: u64) -> BytesIter {
        BytesIter {
            bytes: self.bytes.clone(),
            offset: self.offset + n,
        }
    }

    /// Distance to another iterator over the same string.
    pub fn distance(&self, other: &BytesIter) -> RtResult<u64> {
        if !self.bytes.same(&other.bytes) {
            return Err(RtError::new(
                crate::error::ExceptionKind::InvalidIterator,
                "iterators over different bytes objects",
            ));
        }
        other
            .offset
            .checked_sub(self.offset)
            .ok_or_else(|| RtError::value("negative iterator distance"))
    }
}

impl fmt::Debug for BytesIter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesIter@{}", self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExceptionKind;

    fn arena(data: &[u8]) -> SharedArena {
        Arc::new(data.to_vec())
    }

    #[test]
    fn append_and_read() {
        let b = Bytes::new();
        b.append(b"hello").unwrap();
        assert_eq!(b.len(), 5);
        assert_eq!(b.at(0).unwrap(), b'h');
        assert_eq!(b.at(4).unwrap(), b'o');
    }

    #[test]
    fn read_past_open_end_would_block() {
        let b = Bytes::from_slice(b"ab");
        assert_eq!(b.at(2).unwrap_err().kind, ExceptionKind::WouldBlock);
        b.append(b"c").unwrap();
        assert_eq!(b.at(2).unwrap(), b'c');
    }

    #[test]
    fn read_past_frozen_end_is_index_error() {
        let b = Bytes::frozen_from_slice(b"ab");
        assert_eq!(b.at(2).unwrap_err().kind, ExceptionKind::IndexError);
    }

    #[test]
    fn append_after_freeze_fails() {
        let b = Bytes::frozen_from_slice(b"x");
        assert_eq!(b.append(b"y").unwrap_err().kind, ExceptionKind::Frozen);
        b.unfreeze();
        b.append(b"y").unwrap();
        assert_eq!(b.to_vec(), b"xy");
    }

    #[test]
    fn iterators_survive_appends() {
        let b = Bytes::from_slice(b"GET ");
        let it = b.begin().advance(4);
        assert!(it.would_block());
        b.append(b"/index.html").unwrap();
        assert_eq!(it.deref().unwrap(), b'/');
        assert!(!it.would_block());
    }

    #[test]
    fn trim_keeps_logical_offsets() {
        let b = Bytes::from_slice(b"0123456789");
        b.trim(4).unwrap();
        assert_eq!(b.len(), 6);
        assert_eq!(b.at(4).unwrap(), b'4');
        assert_eq!(b.at(3).unwrap_err().kind, ExceptionKind::IndexError);
        assert_eq!(b.begin_offset(), 4);
        // Extraction across the retained region still works.
        assert_eq!(b.extract(5, 8).unwrap(), b"567");
    }

    #[test]
    fn trim_is_idempotent_backwards() {
        let b = Bytes::from_slice(b"abcdef");
        b.trim(3).unwrap();
        b.trim(2).unwrap(); // no-op, already trimmed past
        assert_eq!(b.begin_offset(), 3);
        assert!(b.trim(100).is_err());
    }

    #[test]
    fn extract_range_checks() {
        let b = Bytes::from_slice(b"abcdef");
        assert_eq!(b.extract(1, 4).unwrap(), b"bcd");
        assert_eq!(b.extract(4, 9).unwrap_err().kind, ExceptionKind::WouldBlock);
        b.freeze();
        assert_eq!(b.extract(4, 9).unwrap_err().kind, ExceptionKind::IndexError);
        assert!(b.extract(4, 2).is_err());
    }

    #[test]
    fn find_semantics() {
        let b = Bytes::from_slice(b"abc\r\ndef");
        assert_eq!(b.find(0, b"\r\n").unwrap(), Some(3));
        assert_eq!(
            b.find(4, b"\r\n").unwrap_err().kind,
            ExceptionKind::WouldBlock
        );
        b.freeze();
        assert_eq!(b.find(4, b"\r\n").unwrap(), None);
        assert_eq!(b.find(0, b"").unwrap(), Some(0));
    }

    #[test]
    fn find_after_trim() {
        let b = Bytes::from_slice(b"xxxxneedle");
        b.trim(2).unwrap();
        assert_eq!(b.find(2, b"needle").unwrap(), Some(4));
        assert!(b.find(0, b"n").is_err());
    }

    #[test]
    fn deep_copy_is_independent() {
        let a = Bytes::from_slice(b"abc");
        let b = a.deep_copy();
        assert_eq!(a, b);
        assert!(!a.same(&b));
        b.append(b"d").unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn clone_is_shared() {
        let a = Bytes::from_slice(b"abc");
        let b = a.clone();
        assert!(a.same(&b));
        b.append(b"d").unwrap();
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn iter_distance() {
        let b = Bytes::from_slice(b"hello world");
        let i = b.begin();
        let j = i.advance(5);
        assert_eq!(i.distance(&j).unwrap(), 5);
        assert!(j.distance(&i).is_err());
        let other = Bytes::from_slice(b"x");
        assert!(i.distance(&other.begin()).is_err());
    }

    #[test]
    fn with_available_window() {
        let b = Bytes::from_slice(b"0123456789");
        b.trim(2).unwrap();
        let got = b.with_available(5, |s| s.to_vec()).unwrap();
        assert_eq!(got, b"56789");
        let empty = b.with_available(99, |s| s.len()).unwrap();
        assert_eq!(empty, 0);
    }

    #[test]
    fn budget_charged_on_append_credited_on_trim_and_drop() {
        use crate::limits::AllocBudget;
        let budget = AllocBudget::with_limit(10);
        let b = Bytes::new();
        b.set_budget(budget.clone());
        b.append(b"12345678").unwrap();
        assert_eq!(budget.used(), 8);
        // Over-budget append fails without mutating the string.
        let e = b.append(b"9abc").unwrap_err();
        assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
        assert_eq!(b.len(), 8);
        assert_eq!(budget.used(), 8);
        // Trimming parsed data returns bytes to the pool.
        b.trim(5).unwrap();
        assert_eq!(budget.used(), 3);
        b.append(b"9abc").unwrap();
        assert_eq!(budget.used(), 7);
        assert_eq!(budget.peak(), 8);
        drop(b);
        assert_eq!(budget.used(), 0, "drop credits retained bytes");
    }

    #[test]
    fn set_budget_adopts_existing_bytes() {
        use crate::limits::AllocBudget;
        let b = Bytes::from_slice(b"hello");
        let budget = AllocBudget::with_limit(3);
        b.set_budget(budget.clone());
        assert_eq!(budget.used(), 5, "pre-existing bytes are accounted");
        assert!(b.append(b"x").is_err(), "already over the cap");
    }

    #[test]
    fn frontier_end_iterator_moves() {
        let b = Bytes::from_slice(b"ab");
        let end = b.end();
        assert_eq!(end.offset(), 2);
        b.append(b"cd").unwrap();
        // A freshly taken end reflects growth; the old iterator now points
        // at valid data (the frontier moved past it).
        assert_eq!(b.end().offset(), 4);
        assert_eq!(end.deref().unwrap(), b'c');
    }

    // --- chunked / arena-borrowing representation ---

    #[test]
    fn append_shared_borrows_without_copy() {
        let ar = arena(b"xxGET / HTTP/1.1yy");
        let b = Bytes::new();
        b.append_shared(ArenaSlice::new(ar.clone(), 2, 14)).unwrap();
        assert_eq!(b.len(), 14);
        assert_eq!(b.borrowed_len(), 14);
        assert_eq!(b.chunk_count(), 1);
        assert_eq!(b.to_vec(), b"GET / HTTP/1.1");
        assert_eq!(b.at(0).unwrap(), b'G');
        assert_eq!(b.at(13).unwrap(), b'1');
    }

    #[test]
    fn reads_straddle_chunk_boundaries() {
        // owned + borrowed + owned chunks; every read path must see one
        // logical string.
        let ar = arena(b"##middle##");
        let b = Bytes::from_slice(b"head-");
        b.append_shared(ArenaSlice::new(ar.clone(), 2, 6)).unwrap();
        b.append(b"-tail").unwrap();
        assert!(b.chunk_count() >= 3);
        assert_eq!(b.to_vec(), b"head-middle-tail");
        // at() across each boundary
        assert_eq!(b.at(4).unwrap(), b'-');
        assert_eq!(b.at(5).unwrap(), b'm');
        assert_eq!(b.at(10).unwrap(), b'e');
        assert_eq!(b.at(11).unwrap(), b'-');
        // extract() spanning all three chunks
        assert_eq!(b.extract(3, 13).unwrap(), b"d-middle-t");
        // find() of a needle that straddles a boundary
        assert_eq!(b.find(0, b"d-m").unwrap(), Some(3));
        assert_eq!(b.find(0, b"le-ta").unwrap(), Some(9));
        // with_available() must hand back the full contiguous window
        let w = b.with_available(2, |s| s.to_vec()).unwrap();
        assert_eq!(w, b"ad-middle-tail");
    }

    #[test]
    fn iterators_walk_across_chunks() {
        let ar = arena(b"wxyz");
        let b = Bytes::from_slice(b"ab");
        b.append_shared(ArenaSlice::new(ar.clone(), 1, 2)).unwrap();
        let mut it = b.begin();
        let mut got = Vec::new();
        while let Ok(byte) = it.deref() {
            got.push(byte);
            it = it.advance(1);
        }
        assert_eq!(got, b"abxy");
        assert_eq!(b.begin().distance(&it).unwrap(), 4);
    }

    #[test]
    fn trim_drops_whole_chunks_and_narrows_partial_ones() {
        let ar = arena(b"0123456789");
        let b = Bytes::new();
        b.append_shared(ArenaSlice::new(ar.clone(), 0, 4)).unwrap();
        b.append_shared(ArenaSlice::new(ar.clone(), 4, 4)).unwrap();
        b.append(b"pq").unwrap();
        assert_eq!(b.chunk_count(), 3);
        // Trim into the middle of the second borrowed chunk.
        b.trim(6).unwrap();
        assert_eq!(b.chunk_count(), 2);
        assert_eq!(b.begin_offset(), 6);
        assert_eq!(b.to_vec(), b"67pq");
        assert_eq!(b.at(6).unwrap(), b'6');
        assert_eq!(b.at(5).unwrap_err().kind, ExceptionKind::IndexError);
        // Trim to the frontier empties the string but keeps offsets.
        b.trim(10).unwrap();
        assert_eq!(b.len(), 0);
        assert_eq!(b.chunk_count(), 0);
        assert_eq!(b.end_offset(), 10);
        b.append(b"z").unwrap();
        assert_eq!(b.at(10).unwrap(), b'z');
    }

    #[test]
    fn eq_ignores_chunk_layout() {
        let ar = arena(b"hello world");
        let chunked = Bytes::new();
        chunked
            .append_shared(ArenaSlice::new(ar.clone(), 0, 6))
            .unwrap();
        chunked.append(b"world").unwrap();
        let flat = Bytes::from_slice(b"hello world");
        assert_eq!(chunked, flat);
        assert_eq!(flat, chunked);
        let different = Bytes::from_slice(b"hello worlD");
        assert_ne!(chunked, different);
        let shorter = Bytes::from_slice(b"hello");
        assert_ne!(chunked, shorter);
    }

    #[test]
    fn debug_renders_across_chunks() {
        let ar = arena(b"bc");
        let b = Bytes::from_slice(b"a");
        b.append_shared(ArenaSlice::new(ar.clone(), 0, 2)).unwrap();
        b.freeze();
        assert_eq!(format!("{b:?}"), "b\"abc\" (frozen)");
    }

    #[test]
    fn frozen_from_arena_is_a_complete_pdu() {
        let ar = arena(b"..DNSMSG..");
        let b = Bytes::frozen_from_arena(ArenaSlice::new(ar.clone(), 2, 6));
        assert!(b.is_frozen());
        assert_eq!(b.to_vec(), b"DNSMSG");
        assert_eq!(b.at(6).unwrap_err().kind, ExceptionKind::IndexError);
        assert_eq!(b.borrowed_len(), 6);
    }

    #[test]
    fn budget_counts_borrowed_bytes_logically() {
        use crate::limits::AllocBudget;
        let ar = arena(b"0123456789");
        let budget = AllocBudget::with_limit(8);
        let b = Bytes::new();
        b.set_budget(budget.clone());
        b.append_shared(ArenaSlice::new(ar.clone(), 0, 6)).unwrap();
        assert_eq!(budget.used(), 6);
        // Borrowed growth is governed exactly like owned growth.
        let e = b
            .append_shared(ArenaSlice::new(ar.clone(), 6, 4))
            .unwrap_err();
        assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
        assert_eq!(b.len(), 6);
        b.trim(4).unwrap();
        assert_eq!(budget.used(), 2);
        drop(b);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn deep_copy_carries_budget_and_credits_on_drop() {
        use crate::limits::AllocBudget;
        let budget = AllocBudget::unlimited();
        let b = Bytes::from_slice(b"governed");
        b.set_budget(budget.clone());
        assert_eq!(budget.used(), 8);
        let copy = b.deep_copy();
        assert_eq!(budget.used(), 16, "the copy is charged for its bytes");
        assert!(copy.budget().is_some_and(|cb| cb.same(&budget)));
        drop(copy);
        assert_eq!(budget.used(), 8, "dropping the copy credits its share");
        drop(b);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn coalescing_preserves_budget_accounting() {
        use crate::limits::AllocBudget;
        let ar = arena(b"abcdef");
        let budget = AllocBudget::unlimited();
        let b = Bytes::new();
        b.set_budget(budget.clone());
        b.append_shared(ArenaSlice::new(ar.clone(), 0, 3)).unwrap();
        b.append_shared(ArenaSlice::new(ar.clone(), 3, 3)).unwrap();
        assert_eq!(budget.used(), 6);
        // A straddling find() coalesces internally; accounting is logical,
        // so usage must not change.
        assert_eq!(b.find(0, b"cd").unwrap(), Some(2));
        assert_eq!(b.chunk_count(), 1, "coalesced");
        assert_eq!(budget.used(), 6);
        drop(b);
        assert_eq!(budget.used(), 0);
    }

    /// Budget conservation over random op sequences: whatever mixture of
    /// append/append_shared/trim/freeze/unfreeze/deep_copy/clone/extract
    /// runs, the budget's `used()` always equals the summed retained length
    /// of live distinct strings, and returns to zero once they all drop.
    #[test]
    fn budget_conservation_property() {
        use crate::limits::AllocBudget;
        // Hand-rolled LCG: deterministic, no external crates.
        let mut seed: u64 = 0x853c49e6748fea9b;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        let ar: SharedArena = Arc::new((0u8..=255).collect::<Vec<u8>>());
        for _round in 0..50 {
            let budget = AllocBudget::unlimited();
            let root = Bytes::new();
            root.set_budget(budget.clone());
            // Distinct strings (deep copies share the budget); clones are
            // handles and are tracked separately so drops don't double-free.
            let mut objects: Vec<Bytes> = vec![root];
            let mut handles: Vec<Bytes> = Vec::new();
            for _step in 0..200 {
                let pick = (rng() as usize) % objects.len();
                let b = objects[pick].clone();
                match rng() % 10 {
                    0 | 1 | 2 => {
                        let n = (rng() % 32) as usize;
                        let data: Vec<u8> = (0..n).map(|_| rng() as u8).collect();
                        let _ = b.append(&data);
                    }
                    3 | 4 => {
                        let off = (rng() % 200) as usize;
                        let len = (rng() % 50) as usize;
                        let _ =
                            b.append_shared(ArenaSlice::new(ar.clone(), off, len.min(256 - off)));
                    }
                    5 => {
                        let span = b.end_offset() - b.begin_offset();
                        if span > 0 {
                            let cut = b.begin_offset() + rng() % (span + 1);
                            let _ = b.trim(cut);
                        }
                    }
                    6 => b.freeze(),
                    7 => b.unfreeze(),
                    8 => {
                        if objects.len() < 8 {
                            objects.push(b.deep_copy());
                        }
                    }
                    _ => {
                        if handles.len() < 8 {
                            handles.push(b.clone());
                        } else {
                            let from = b.begin_offset();
                            let _ = b.extract(from, b.end_offset());
                        }
                    }
                }
                let expected: u64 = objects.iter().map(|o| o.len() as u64).sum();
                assert_eq!(budget.used(), expected, "live accounting drifted");
            }
            drop(handles);
            drop(objects);
            assert_eq!(budget.used(), 0, "all charges credited back on drop");
        }
    }
}
