//! Regular expressions with incremental matching and simultaneous matching
//! of multiple expressions (§3.2).
//!
//! HILTI's `regexp` type is the workhorse of BinPAC++ token fields: a parser
//! feeds payload *chunks* into a matcher as they arrive, and the matcher
//! reports when a match is complete, definitely impossible, or still open
//! pending more input — the tri-state that drives fiber suspension. A single
//! compiled object can hold several patterns at once, reporting which one
//! matched (used for tokenizers and signature sets).
//!
//! Implementation: a syntax parser builds an AST, Thompson construction
//! yields an NFA with byte-class transitions, and matching runs over a
//! *lazily built DFA* — state-set closures are computed on demand and
//! memoized, so steady-state matching advances one table lookup per input
//! byte (the classic lazy-DFA scheme of re2/Bro). Matching is anchored at
//! the start of input and reports the *longest* match, with ties between
//! patterns broken by lowest pattern index.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{RtError, RtResult};

// ---------------------------------------------------------------------------
// Byte classes: 256-bit membership bitmaps.

/// A set of bytes, as a 256-bit bitmap.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ByteClass([u64; 4]);

impl ByteClass {
    pub const EMPTY: ByteClass = ByteClass([0; 4]);

    pub fn single(b: u8) -> Self {
        let mut c = Self::EMPTY;
        c.insert(b);
        c
    }

    /// `.` — any byte except `\n`, following common regexp semantics.
    pub fn dot() -> Self {
        let mut c = ByteClass([u64::MAX; 4]);
        c.remove(b'\n');
        c
    }

    pub fn any() -> Self {
        ByteClass([u64::MAX; 4])
    }

    pub fn insert(&mut self, b: u8) {
        self.0[(b >> 6) as usize] |= 1u64 << (b & 63);
    }

    pub fn remove(&mut self, b: u8) {
        self.0[(b >> 6) as usize] &= !(1u64 << (b & 63));
    }

    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    pub fn contains(&self, b: u8) -> bool {
        self.0[(b >> 6) as usize] & (1u64 << (b & 63)) != 0
    }

    pub fn negate(&mut self) {
        for w in &mut self.0 {
            *w = !*w;
        }
    }

    pub fn union(&mut self, other: &ByteClass) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a |= *b;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|w| *w == 0)
    }
}

// ---------------------------------------------------------------------------
// Pattern AST.

#[derive(Clone, Debug, PartialEq)]
enum Ast {
    Empty,
    Class(ByteClass),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
    /// `$`: matches only at end of input.
    Eoi,
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

/// Hard cap on `{m,n}` expansion to bound NFA size on hostile patterns.
const MAX_REPEAT: u32 = 256;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, msg: &str) -> RtError {
        RtError::pattern(format!("{msg} at offset {}", self.pos))
    }

    fn parse(mut self) -> RtResult<Ast> {
        let ast = self.alt()?;
        if self.pos != self.src.len() {
            return Err(self.err("trailing input"));
        }
        Ok(ast)
    }

    fn alt(&mut self) -> RtResult<Ast> {
        let mut branches = vec![self.concat()?];
        while self.eat(b'|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn concat(&mut self) -> RtResult<Ast> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> RtResult<Ast> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Ast::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Ast::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.bump();
                    atom = Ast::Quest(Box::new(atom));
                }
                Some(b'{') => {
                    // Only treat as a counted repeat if it parses as one;
                    // otherwise `{` is a literal (common in practice).
                    if let Some((m, n, consumed)) = self.try_counted() {
                        self.pos += consumed;
                        atom = expand_counted(&atom, m, n)?;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    /// Attempts to parse `{m}`, `{m,}` or `{m,n}` starting at `self.pos`
    /// (which points at `{`); returns (m, n, bytes-consumed) without
    /// consuming on failure. `n == u32::MAX` encodes an open upper bound.
    fn try_counted(&self) -> Option<(u32, u32, usize)> {
        let rest = &self.src[self.pos..];
        let close = rest.iter().position(|&b| b == b'}')?;
        let body = std::str::from_utf8(&rest[1..close]).ok()?;
        let (m, n) = match body.split_once(',') {
            None => {
                let m: u32 = body.parse().ok()?;
                (m, m)
            }
            Some((ms, "")) => (ms.trim().parse().ok()?, u32::MAX),
            Some((ms, ns)) => (ms.trim().parse().ok()?, ns.trim().parse().ok()?),
        };
        Some((m, n, close + 1))
    }

    fn atom(&mut self) -> RtResult<Ast> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some(b'(') => {
                // Support non-capturing group syntax transparently.
                if self.peek() == Some(b'?') {
                    self.bump();
                    if !self.eat(b':') {
                        return Err(self.err("unsupported group flag"));
                    }
                }
                let inner = self.alt()?;
                if !self.eat(b')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'[') => self.class(),
            Some(b'.') => Ok(Ast::Class(ByteClass::dot())),
            Some(b'^') => {
                // Anchored matching is the default; `^` at the start is a
                // no-op, anywhere else it is a literal (HILTI patterns are
                // start-anchored token patterns).
                Ok(Ast::Empty)
            }
            Some(b'$') => Ok(Ast::Eoi),
            Some(b'\\') => {
                let c = self.bump().ok_or_else(|| self.err("dangling backslash"))?;
                Ok(Ast::Class(escape_class(c, self)?))
            }
            Some(b'*') | Some(b'+') | Some(b'?') => Err(self.err("quantifier without operand")),
            Some(b')') => Err(self.err("unbalanced ')'")),
            Some(other) => Ok(Ast::Class(ByteClass::single(other))),
        }
    }

    fn class(&mut self) -> RtResult<Ast> {
        let mut cls = ByteClass::EMPTY;
        let negated = self.eat(b'^');
        let mut first = true;
        loop {
            let b = self
                .bump()
                .ok_or_else(|| self.err("unclosed character class"))?;
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo = if b == b'\\' {
                let c = self
                    .bump()
                    .ok_or_else(|| self.err("dangling backslash in class"))?;
                let sub = escape_class(c, self)?;
                // A multi-byte escape like \d inside a class unions in.
                if !is_single_byte_class(&sub) {
                    cls.union(&sub);
                    continue;
                }
                single_byte_of(&sub)
            } else {
                b
            };
            // Range?
            if self.peek() == Some(b'-') && self.src.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let hb = self
                    .bump()
                    .ok_or_else(|| self.err("unfinished range in class"))?;
                let hi = if hb == b'\\' {
                    let c = self
                        .bump()
                        .ok_or_else(|| self.err("dangling backslash in class"))?;
                    let sub = escape_class(c, self)?;
                    if !is_single_byte_class(&sub) {
                        return Err(self.err("class escape cannot end a range"));
                    }
                    single_byte_of(&sub)
                } else {
                    hb
                };
                if hi < lo {
                    return Err(self.err("inverted range in class"));
                }
                cls.insert_range(lo, hi);
            } else {
                cls.insert(lo);
            }
        }
        if negated {
            cls.negate();
        }
        if cls.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class(cls))
    }
}

fn is_single_byte_class(c: &ByteClass) -> bool {
    (0..=255u8).filter(|b| c.contains(*b)).count() == 1
}

fn single_byte_of(c: &ByteClass) -> u8 {
    (0..=255u8)
        .find(|b| c.contains(*b))
        .expect("non-empty class")
}

fn escape_class(c: u8, p: &mut Parser<'_>) -> RtResult<ByteClass> {
    Ok(match c {
        b'n' => ByteClass::single(b'\n'),
        b'r' => ByteClass::single(b'\r'),
        b't' => ByteClass::single(b'\t'),
        b'0' => ByteClass::single(0),
        b'f' => ByteClass::single(0x0c),
        b'v' => ByteClass::single(0x0b),
        b'd' => {
            let mut cls = ByteClass::EMPTY;
            cls.insert_range(b'0', b'9');
            cls
        }
        b'D' => {
            let mut cls = ByteClass::EMPTY;
            cls.insert_range(b'0', b'9');
            cls.negate();
            cls
        }
        b'w' => {
            let mut cls = ByteClass::EMPTY;
            cls.insert_range(b'a', b'z');
            cls.insert_range(b'A', b'Z');
            cls.insert_range(b'0', b'9');
            cls.insert(b'_');
            cls
        }
        b'W' => {
            let mut cls = ByteClass::EMPTY;
            cls.insert_range(b'a', b'z');
            cls.insert_range(b'A', b'Z');
            cls.insert_range(b'0', b'9');
            cls.insert(b'_');
            cls.negate();
            cls
        }
        b's' => {
            let mut cls = ByteClass::EMPTY;
            for b in [b' ', b'\t', b'\r', b'\n', 0x0b, 0x0c] {
                cls.insert(b);
            }
            cls
        }
        b'S' => {
            let mut cls = ByteClass::EMPTY;
            for b in [b' ', b'\t', b'\r', b'\n', 0x0b, 0x0c] {
                cls.insert(b);
            }
            cls.negate();
            cls
        }
        b'x' => {
            let hi = p.bump().ok_or_else(|| p.err("\\x needs two hex digits"))?;
            let lo = p.bump().ok_or_else(|| p.err("\\x needs two hex digits"))?;
            let val = (hex_digit(hi).ok_or_else(|| p.err("bad hex digit"))? << 4)
                | hex_digit(lo).ok_or_else(|| p.err("bad hex digit"))?;
            ByteClass::single(val)
        }
        // Everything else escapes to the literal byte (covers \. \/ \\ etc.).
        other => ByteClass::single(other),
    })
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

fn expand_counted(atom: &Ast, m: u32, n: u32) -> RtResult<Ast> {
    if m > MAX_REPEAT || (n != u32::MAX && (n > MAX_REPEAT || n < m)) {
        return Err(RtError::pattern(format!("bad repeat bounds {{{m},{n}}}")));
    }
    let mut parts = Vec::new();
    for _ in 0..m {
        parts.push(atom.clone());
    }
    if n == u32::MAX {
        parts.push(Ast::Star(Box::new(atom.clone())));
    } else {
        for _ in m..n {
            parts.push(Ast::Quest(Box::new(atom.clone())));
        }
    }
    Ok(match parts.len() {
        0 => Ast::Empty,
        1 => parts.pop().expect("one part"),
        _ => Ast::Concat(parts),
    })
}

// ---------------------------------------------------------------------------
// Thompson NFA.

type StateId = u32;

#[derive(Clone, Debug, Default)]
struct NfaState {
    /// Byte-class transitions.
    byte: Vec<(ByteClass, StateId)>,
    /// Epsilon transitions.
    eps: Vec<StateId>,
    /// End-of-input transitions (for `$`).
    eoi: Vec<StateId>,
    /// Accepting for this pattern index.
    accept: Option<usize>,
}

#[derive(Debug, Default)]
struct Nfa {
    states: Vec<NfaState>,
    start: StateId,
}

impl Nfa {
    fn add(&mut self) -> StateId {
        self.states.push(NfaState::default());
        (self.states.len() - 1) as StateId
    }

    /// Compiles `ast` into states, returning (entry, exit).
    fn compile(&mut self, ast: &Ast) -> (StateId, StateId) {
        match ast {
            Ast::Empty => {
                let s = self.add();
                let e = self.add();
                self.states[s as usize].eps.push(e);
                (s, e)
            }
            Ast::Class(c) => {
                let s = self.add();
                let e = self.add();
                self.states[s as usize].byte.push((*c, e));
                (s, e)
            }
            Ast::Eoi => {
                let s = self.add();
                let e = self.add();
                self.states[s as usize].eoi.push(e);
                (s, e)
            }
            Ast::Concat(parts) => {
                let mut entry = None;
                let mut prev_exit: Option<StateId> = None;
                for p in parts {
                    let (s, e) = self.compile(p);
                    if let Some(pe) = prev_exit {
                        self.states[pe as usize].eps.push(s);
                    } else {
                        entry = Some(s);
                    }
                    prev_exit = Some(e);
                }
                (
                    entry.expect("non-empty concat"),
                    prev_exit.expect("non-empty concat"),
                )
            }
            Ast::Alt(branches) => {
                let s = self.add();
                let e = self.add();
                for b in branches {
                    let (bs, be) = self.compile(b);
                    self.states[s as usize].eps.push(bs);
                    self.states[be as usize].eps.push(e);
                }
                (s, e)
            }
            Ast::Star(inner) => {
                let s = self.add();
                let e = self.add();
                let (is, ie) = self.compile(inner);
                self.states[s as usize].eps.push(is);
                self.states[s as usize].eps.push(e);
                self.states[ie as usize].eps.push(is);
                self.states[ie as usize].eps.push(e);
                (s, e)
            }
            Ast::Plus(inner) => {
                let (is, ie) = self.compile(inner);
                let e = self.add();
                self.states[ie as usize].eps.push(is);
                self.states[ie as usize].eps.push(e);
                (is, e)
            }
            Ast::Quest(inner) => {
                let s = self.add();
                let e = self.add();
                let (is, ie) = self.compile(inner);
                self.states[s as usize].eps.push(is);
                self.states[s as usize].eps.push(e);
                self.states[ie as usize].eps.push(e);
                (s, e)
            }
        }
    }

    /// Epsilon-closure of `set` (sorted, deduped), in place.
    fn closure(&self, set: &mut Vec<StateId>) {
        let mut stack: Vec<StateId> = set.clone();
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].eps {
                if !set.contains(&t) {
                    set.push(t);
                    stack.push(t);
                }
            }
        }
        set.sort_unstable();
        set.dedup();
    }
}

// ---------------------------------------------------------------------------
// Lazy DFA over NFA state sets.

const TRANS_UNKNOWN: i32 = -1;
const TRANS_DEAD: i32 = -2;

struct DfaNode {
    /// NFA states of this DFA node (sorted).
    states: Box<[StateId]>,
    /// Transition per byte: DFA node index, TRANS_UNKNOWN, or TRANS_DEAD.
    trans: Box<[i32; 256]>,
    /// Best accepting pattern at this node (lowest index), if any.
    accept: Option<usize>,
    /// Best accepting pattern reachable via end-of-input transitions.
    accept_at_eoi: Option<usize>,
    /// Lazily computed: does any byte lead out of this node (i.e. could
    /// more input still change the outcome)?
    live: Option<bool>,
}

#[derive(Default)]
struct DfaCache {
    nodes: Vec<DfaNode>,
    index: HashMap<Box<[StateId]>, usize>,
}

/// Outcome of feeding input to a [`Matcher`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchStatus {
    /// No match and none possible, no matter what further input arrives.
    Failed,
    /// Matching could still extend with more input (also set when a match
    /// has been found but a longer one remains possible).
    Ongoing,
}

/// The final verdict after input is complete.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchVerdict {
    NoMatch,
    /// Pattern `pattern` matched the first `len` bytes of input.
    Match {
        pattern: usize,
        len: u64,
    },
}

/// A compiled regular expression (possibly a set of several patterns).
pub struct Regex {
    nfa: Nfa,
    sources: Vec<String>,
    cache: Mutex<DfaCache>,
    start_node: usize,
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Regex({:?})", self.sources)
    }
}

impl Regex {
    /// Compiles a single pattern.
    pub fn new(pattern: &str) -> RtResult<Arc<Regex>> {
        Self::set(&[pattern])
    }

    /// Compiles several patterns into one matcher; match results report the
    /// index of the pattern that matched.
    pub fn set(patterns: &[&str]) -> RtResult<Arc<Regex>> {
        if patterns.is_empty() {
            return Err(RtError::pattern("empty pattern set"));
        }
        let mut nfa = Nfa::default();
        let start = nfa.add();
        nfa.start = start;
        for (idx, pat) in patterns.iter().enumerate() {
            let ast = Parser::new(pat).parse()?;
            let (s, e) = nfa.compile(&ast);
            nfa.states[start as usize].eps.push(s);
            nfa.states[e as usize].accept = Some(idx);
        }
        let mut re = Regex {
            nfa,
            sources: patterns.iter().map(|s| s.to_string()).collect(),
            cache: Mutex::new(DfaCache::default()),
            start_node: 0,
        };
        // Materialize the start node eagerly.
        let mut set = vec![re.nfa.start];
        re.nfa.closure(&mut set);
        re.start_node = re.intern(set);
        Ok(Arc::new(re))
    }

    /// The pattern sources this object was compiled from.
    pub fn sources(&self) -> &[String] {
        &self.sources
    }

    fn intern(&self, states: Vec<StateId>) -> usize {
        let mut cache = self.cache.lock();
        let key: Box<[StateId]> = states.into_boxed_slice();
        if let Some(&idx) = cache.index.get(&key) {
            return idx;
        }
        let accept = key
            .iter()
            .filter_map(|&s| self.nfa.states[s as usize].accept)
            .min();
        // Which patterns accept if input ended here (through $-edges)?
        let mut eoi_set: Vec<StateId> = key
            .iter()
            .flat_map(|&s| self.nfa.states[s as usize].eoi.iter().copied())
            .collect();
        let accept_at_eoi = if eoi_set.is_empty() {
            None
        } else {
            self.nfa.closure(&mut eoi_set);
            eoi_set
                .iter()
                .filter_map(|&s| self.nfa.states[s as usize].accept)
                .min()
        };
        let node = DfaNode {
            states: key.clone(),
            trans: Box::new([TRANS_UNKNOWN; 256]),
            accept,
            accept_at_eoi,
            live: None,
        };
        cache.nodes.push(node);
        let idx = cache.nodes.len() - 1;
        cache.index.insert(key, idx);
        idx
    }

    /// Computes (and memoizes) the transition of DFA node `node` on byte `b`.
    fn step(&self, node: usize, b: u8) -> i32 {
        {
            let cache = self.cache.lock();
            let t = cache.nodes[node].trans[b as usize];
            if t != TRANS_UNKNOWN {
                return t;
            }
        }
        // Compute outside the lock (closure needs only &self.nfa).
        let states: Vec<StateId> = {
            let cache = self.cache.lock();
            cache.nodes[node].states.to_vec()
        };
        let mut next: Vec<StateId> = Vec::new();
        for s in states {
            for (cls, t) in &self.nfa.states[s as usize].byte {
                if cls.contains(b) && !next.contains(t) {
                    next.push(*t);
                }
            }
        }
        let result = if next.is_empty() {
            TRANS_DEAD
        } else {
            self.nfa.closure(&mut next);
            self.intern(next) as i32
        };
        self.cache.lock().nodes[node].trans[b as usize] = result;
        result
    }

    fn node_accept(&self, node: usize) -> Option<usize> {
        self.cache.lock().nodes[node].accept
    }

    fn node_accept_at_eoi(&self, node: usize) -> Option<usize> {
        let cache = self.cache.lock();
        let n = &cache.nodes[node];
        n.accept_at_eoi.or(n.accept)
    }

    /// True if some byte transitions out of `node` — i.e. further input
    /// could still extend or complete a match. Cached per node.
    fn node_live(&self, node: usize) -> bool {
        if let Some(live) = self.cache.lock().nodes[node].live {
            return live;
        }
        // Direct NFA check: any byte-class transition from any member state
        // means more input can make progress.
        let states: Vec<StateId> = {
            let cache = self.cache.lock();
            cache.nodes[node].states.to_vec()
        };
        let live = states
            .iter()
            .any(|&s| !self.nfa.states[s as usize].byte.is_empty());
        self.cache.lock().nodes[node].live = Some(live);
        live
    }

    /// Number of DFA nodes materialized so far (observability/ablation).
    pub fn dfa_nodes(&self) -> usize {
        self.cache.lock().nodes.len()
    }

    /// Starts an incremental matcher anchored at the current input position.
    pub fn matcher(self: &Arc<Self>) -> Matcher {
        let mut m = Matcher {
            re: self.clone(),
            node: self.start_node as i32,
            consumed: 0,
            last: None,
        };
        // The empty prefix may already match (e.g. `a*`).
        if let Some(p) = self.node_accept(self.start_node) {
            m.last = Some((p, 0));
        }
        m
    }

    /// One-shot anchored match over a complete buffer.
    pub fn match_prefix(self: &Arc<Self>, input: &[u8]) -> MatchVerdict {
        let mut m = self.matcher();
        m.feed(input);
        m.finish()
    }

    /// Unanchored search: first position (and verdict) where any pattern
    /// matches. O(n·m) worst case; used for utility scanning, not the
    /// parsing hot path.
    pub fn find(self: &Arc<Self>, input: &[u8]) -> Option<(usize, usize, u64)> {
        for start in 0..=input.len() {
            if let MatchVerdict::Match { pattern, len } = self.match_prefix(&input[start..]) {
                return Some((start, pattern, len));
            }
        }
        None
    }
}

/// An in-progress anchored match; feed chunks as they arrive.
#[derive(Debug)]
pub struct Matcher {
    re: Arc<Regex>,
    /// Current DFA node, or TRANS_DEAD once no continuation is possible.
    node: i32,
    /// Total bytes consumed so far.
    consumed: u64,
    /// Longest accept seen: (pattern, length).
    last: Option<(usize, u64)>,
}

impl Matcher {
    /// Feeds a chunk. Returns [`MatchStatus::Failed`] once no match can ever
    /// complete (the caller can stop buffering input).
    pub fn feed(&mut self, chunk: &[u8]) -> MatchStatus {
        if self.node == TRANS_DEAD {
            return self.status();
        }
        for &b in chunk {
            let next = self.re.step(self.node as usize, b);
            self.consumed += 1;
            if next == TRANS_DEAD {
                self.node = TRANS_DEAD;
                break;
            }
            self.node = next;
            if let Some(p) = self.re.node_accept(next as usize) {
                let better = match self.last {
                    Some((lp, ll)) => self.consumed > ll || (self.consumed == ll && p < lp),
                    None => true,
                };
                if better {
                    self.last = Some((p, self.consumed));
                }
            }
        }
        self.status()
    }

    fn status(&self) -> MatchStatus {
        if self.node == TRANS_DEAD && self.last.is_none() {
            MatchStatus::Failed
        } else {
            MatchStatus::Ongoing
        }
    }

    /// True if a longer match could still be produced by more input: the
    /// match is not dead *and* the current DFA node has at least one
    /// outgoing byte transition. (A fully-consumed token like `\r?\n`
    /// lands on a node with no exits; reporting "could extend" there would
    /// stall incremental parsers waiting for input that cannot matter.)
    pub fn can_extend(&self) -> bool {
        self.node != TRANS_DEAD && self.re.node_live(self.node as usize)
    }

    /// The best match found so far, if any (may grow with more input while
    /// [`Matcher::can_extend`] holds).
    pub fn current(&self) -> Option<(usize, u64)> {
        self.last
    }

    /// Total bytes consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Declares end of input and returns the verdict, taking `$` anchors
    /// into account.
    pub fn finish(&self) -> MatchVerdict {
        let mut best = self.last;
        if self.node != TRANS_DEAD {
            if let Some(p) = self.re.node_accept_at_eoi(self.node as usize) {
                let better = match best {
                    Some((bp, bl)) => self.consumed > bl || (self.consumed == bl && p < bp),
                    None => true,
                };
                if better {
                    best = Some((p, self.consumed));
                }
            }
        }
        match best {
            Some((pattern, len)) => MatchVerdict::Match { pattern, len },
            None => MatchVerdict::NoMatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, input: &[u8]) -> MatchVerdict {
        Regex::new(pat).unwrap().match_prefix(input)
    }

    fn match_len(pat: &str, input: &[u8]) -> Option<u64> {
        match m(pat, input) {
            MatchVerdict::Match { len, .. } => Some(len),
            MatchVerdict::NoMatch => None,
        }
    }

    #[test]
    fn literals() {
        assert_eq!(match_len("GET", b"GET /"), Some(3));
        assert_eq!(match_len("GET", b"GE"), None);
        assert_eq!(match_len("GET", b"POST"), None);
    }

    #[test]
    fn classes_and_ranges() {
        assert_eq!(match_len("[a-z]+", b"abc123"), Some(3));
        assert_eq!(match_len("[^ \\t\\r\\n]+", b"token rest"), Some(5));
        assert_eq!(match_len("[0-9]+\\.[0-9]+", b"1.15x"), Some(4));
        assert_eq!(match_len("[-a-z]+", b"-ab-"), Some(4)); // literal '-' first
    }

    #[test]
    fn alternation_and_groups() {
        assert_eq!(match_len("GET|POST|HEAD", b"POST /"), Some(4));
        assert_eq!(match_len("ab(cd|ef)+g", b"abcdefcdg!"), Some(9));
        assert_eq!(match_len("(?:ab)+", b"ababab"), Some(6));
    }

    #[test]
    fn quantifiers() {
        assert_eq!(match_len("a*", b"aaab"), Some(3));
        assert_eq!(match_len("a*", b"b"), Some(0)); // empty match allowed
        assert_eq!(match_len("a+", b"b"), None);
        assert_eq!(match_len("ab?c", b"ac"), Some(2));
        assert_eq!(match_len("ab?c", b"abc"), Some(3));
    }

    #[test]
    fn counted_repeats() {
        assert_eq!(match_len("a{3}", b"aaaa"), Some(3));
        assert_eq!(match_len("a{2,4}", b"aaaaa"), Some(4));
        assert_eq!(match_len("a{2,}", b"aaaaa"), Some(5));
        assert_eq!(match_len("a{3}", b"aa"), None);
        assert!(Regex::new("a{4,2}").is_err());
        assert!(Regex::new(&format!("a{{{}}}", MAX_REPEAT + 1)).is_err());
    }

    #[test]
    fn escapes() {
        assert_eq!(match_len("\\r?\\n", b"\r\nx"), Some(2));
        assert_eq!(match_len("\\r?\\n", b"\nx"), Some(1));
        assert_eq!(match_len("\\d+", b"42x"), Some(2));
        assert_eq!(match_len("\\w+", b"foo_bar baz"), Some(7));
        assert_eq!(match_len("\\s+", b"  \t x"), Some(4));
        assert_eq!(match_len("\\x41+", b"AAB"), Some(2));
        assert_eq!(match_len("HTTP\\/", b"HTTP/1.1"), Some(5));
    }

    #[test]
    fn dot_excludes_newline() {
        assert_eq!(match_len(".+", b"ab\ncd"), Some(2));
    }

    #[test]
    fn longest_match_wins() {
        // Leftmost-longest: prefer the longer alternative.
        assert_eq!(match_len("a|ab", b"ab"), Some(2));
        assert_eq!(match_len("ab|a", b"ab"), Some(2));
    }

    #[test]
    fn multi_pattern_ids() {
        let re = Regex::set(&["GET", "POST", "[A-Z]+"]).unwrap();
        match re.match_prefix(b"POST /x") {
            MatchVerdict::Match { pattern, len } => {
                assert_eq!((pattern, len), (1, 4));
            }
            _ => panic!("expected match"),
        }
        // Tie at same length: lowest pattern index wins.
        match re.match_prefix(b"GET") {
            MatchVerdict::Match { pattern, len } => {
                assert_eq!((pattern, len), (0, 3));
            }
            _ => panic!("expected match"),
        }
        // Only the generic pattern matches.
        match re.match_prefix(b"DELETE x") {
            MatchVerdict::Match { pattern, len } => {
                assert_eq!((pattern, len), (2, 6));
            }
            _ => panic!("expected match"),
        }
    }

    #[test]
    fn incremental_across_chunks() {
        let re = Regex::new("[A-Z]+ [^ ]+ HTTP\\/[0-9]\\.[0-9]").unwrap();
        let mut mt = re.matcher();
        assert_eq!(mt.feed(b"GET /ind"), MatchStatus::Ongoing);
        assert_eq!(mt.feed(b"ex.html HT"), MatchStatus::Ongoing);
        assert_eq!(mt.feed(b"TP/1.1"), MatchStatus::Ongoing);
        assert_eq!(
            mt.finish(),
            MatchVerdict::Match {
                pattern: 0,
                len: 24
            }
        );
    }

    #[test]
    fn incremental_failure_detected_early() {
        let re = Regex::new("GET ").unwrap();
        let mut mt = re.matcher();
        assert_eq!(mt.feed(b"GE"), MatchStatus::Ongoing);
        assert_eq!(mt.feed(b"X"), MatchStatus::Failed);
        assert!(!mt.can_extend());
        assert_eq!(mt.finish(), MatchVerdict::NoMatch);
        // Further feeds are harmless no-ops.
        assert_eq!(mt.feed(b"T "), MatchStatus::Failed);
    }

    #[test]
    fn incremental_match_can_grow() {
        let re = Regex::new("[0-9]+").unwrap();
        let mut mt = re.matcher();
        mt.feed(b"12");
        assert_eq!(mt.current(), Some((0, 2)));
        assert!(mt.can_extend());
        mt.feed(b"34");
        assert_eq!(mt.current(), Some((0, 4)));
        mt.feed(b"x");
        assert!(!mt.can_extend());
        assert_eq!(mt.finish(), MatchVerdict::Match { pattern: 0, len: 4 });
    }

    #[test]
    fn eoi_anchor() {
        let re = Regex::new("abc$").unwrap();
        assert_eq!(
            re.match_prefix(b"abc"),
            MatchVerdict::Match { pattern: 0, len: 3 }
        );
        assert_eq!(re.match_prefix(b"abcd"), MatchVerdict::NoMatch);
        let mut mt = re.matcher();
        mt.feed(b"abc");
        // Not final until finish(): more input could still arrive.
        assert_eq!(mt.current(), None);
        assert_eq!(mt.finish(), MatchVerdict::Match { pattern: 0, len: 3 });
    }

    #[test]
    fn leading_caret_is_noop() {
        assert_eq!(match_len("^GET", b"GET"), Some(3));
    }

    #[test]
    fn find_unanchored() {
        let re = Regex::new("needle").unwrap();
        assert_eq!(re.find(b"hay needle hay"), Some((4, 0, 6)));
        assert_eq!(re.find(b"nothing here"), None);
    }

    #[test]
    fn dfa_cache_grows_then_stabilizes() {
        let re = Regex::new("[a-z]+[0-9]+").unwrap();
        let before = re.dfa_nodes();
        for _ in 0..100 {
            let _ = re.match_prefix(b"abc123");
        }
        let after_first = re.dfa_nodes();
        for _ in 0..100 {
            let _ = re.match_prefix(b"abc123");
        }
        assert!(after_first > before);
        assert_eq!(re.dfa_nodes(), after_first, "cache must stabilize");
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new(")").is_err());
        assert!(Regex::new("[").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("\\xZZ").is_err());
        assert!(Regex::set(&[]).is_err());
    }

    #[test]
    fn paper_http_tokens() {
        // The token definitions from Figure 6(a) of the paper.
        let token = Regex::new("[^ \\t\\r\\n]+").unwrap();
        let newline = Regex::new("\\r?\\n").unwrap();
        let whitespace = Regex::new("[ \\t]+").unwrap();
        let version = Regex::new("HTTP\\/").unwrap();
        assert_eq!(
            token.match_prefix(b"GET rest"),
            MatchVerdict::Match { pattern: 0, len: 3 }
        );
        assert_eq!(
            newline.match_prefix(b"\r\n"),
            MatchVerdict::Match { pattern: 0, len: 2 }
        );
        assert_eq!(
            whitespace.match_prefix(b"   x"),
            MatchVerdict::Match { pattern: 0, len: 3 }
        );
        assert_eq!(
            version.match_prefix(b"HTTP/1.1"),
            MatchVerdict::Match { pattern: 0, len: 5 }
        );
    }

    #[test]
    fn paper_ssh_banner_tokens() {
        // Figure 7(a): SSH banner grammar tokens.
        let magic = Regex::new("SSH-").unwrap();
        let version = Regex::new("[^-]*").unwrap();
        let software = Regex::new("[^\\r\\n]*").unwrap();
        assert_eq!(
            magic.match_prefix(b"SSH-2.0-x"),
            MatchVerdict::Match { pattern: 0, len: 4 }
        );
        assert_eq!(
            version.match_prefix(b"2.0-OpenSSH"),
            MatchVerdict::Match { pattern: 0, len: 3 }
        );
        assert_eq!(
            software.match_prefix(b"OpenSSH_3.9p1\r\n"),
            MatchVerdict::Match {
                pattern: 0,
                len: 13
            }
        );
    }
}
