//! Timestamp and time-interval types with nanosecond resolution (§3.2).
//!
//! HILTI maintains *multiple independent notions of time* (network time
//! driven by packet timestamps vs. wall clock); [`Time`] is therefore just a
//! point on an abstract nanosecond axis with no tie to the system clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::str::FromStr;

use crate::error::RtError;

/// Nanoseconds per second.
pub const NSEC_PER_SEC: u64 = 1_000_000_000;

/// An absolute point in time, nanoseconds since an arbitrary epoch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Time(u64);

impl Time {
    /// The epoch itself; also the initial value of every timer manager.
    pub const ZERO: Time = Time(0);

    /// Builds a time from raw nanoseconds since the epoch.
    pub fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Builds a time from whole seconds since the epoch.
    pub fn from_secs(s: u64) -> Self {
        Time(s * NSEC_PER_SEC)
    }

    /// Builds a time from a floating-point seconds value (as found in pcap
    /// timestamps); sub-nanosecond precision is truncated.
    pub fn from_secs_f64(s: f64) -> Self {
        Time((s * NSEC_PER_SEC as f64) as u64)
    }

    /// Raw nanoseconds since the epoch.
    pub fn nanos(&self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / NSEC_PER_SEC as f64
    }

    /// Saturating difference between two times.
    pub fn since(&self, earlier: Time) -> Interval {
        Interval(self.0.saturating_sub(earlier.0) as i64)
    }
}

impl Add<Interval> for Time {
    type Output = Time;

    fn add(self, rhs: Interval) -> Time {
        Time(self.0.saturating_add_signed(rhs.0))
    }
}

impl AddAssign<Interval> for Time {
    fn add_assign(&mut self, rhs: Interval) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Interval;

    fn sub(self, rhs: Time) -> Interval {
        Interval(self.0 as i64 - rhs.0 as i64)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / NSEC_PER_SEC;
        let frac = self.0 % NSEC_PER_SEC;
        if frac == 0 {
            write!(f, "{secs}.000000")
        } else {
            // Microsecond display precision, like Bro's log timestamps.
            write!(f, "{secs}.{:06}", frac / 1_000)
        }
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({self})")
    }
}

/// A signed time interval with nanosecond resolution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Interval(i64);

impl Interval {
    pub const ZERO: Interval = Interval(0);

    pub fn from_nanos(ns: i64) -> Self {
        Interval(ns)
    }

    pub fn from_secs(s: i64) -> Self {
        Interval(s * NSEC_PER_SEC as i64)
    }

    pub fn from_millis(ms: i64) -> Self {
        Interval(ms * 1_000_000)
    }

    pub fn from_secs_f64(s: f64) -> Self {
        Interval((s * NSEC_PER_SEC as f64) as i64)
    }

    pub fn nanos(&self) -> i64 {
        self.0
    }

    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / NSEC_PER_SEC as f64
    }

    pub fn is_negative(&self) -> bool {
        self.0 < 0
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, rhs: Interval) -> Interval {
        Interval(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        write!(
            f,
            "{sign}{}.{:06}",
            abs / NSEC_PER_SEC,
            (abs % NSEC_PER_SEC) / 1_000
        )
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interval({self})")
    }
}

impl FromStr for Interval {
    type Err = RtError;

    /// Parses `"300"` or `"300.5"` as seconds, matching the paper's
    /// `interval(300)` literals.
    fn from_str(s: &str) -> Result<Self, RtError> {
        s.trim()
            .parse::<f64>()
            .map(Interval::from_secs_f64)
            .map_err(|_| RtError::value(format!("bad interval literal {s:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::from_secs(100);
        let i = Interval::from_secs(5);
        assert_eq!(t + i, Time::from_secs(105));
        assert_eq!(Time::from_secs(105) - t, i);
        assert_eq!(t.since(Time::from_secs(90)), Interval::from_secs(10));
    }

    #[test]
    fn negative_interval_addition_saturates_at_zero() {
        let t = Time::from_secs(1);
        assert_eq!(t + Interval::from_secs(-5), Time::ZERO);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Time::from_secs(1).since(Time::from_secs(5)), Interval::ZERO);
    }

    #[test]
    fn display_microsecond_precision() {
        let t = Time::from_nanos(1_500_000_000);
        assert_eq!(t.to_string(), "1.500000");
        assert_eq!(Time::from_secs(42).to_string(), "42.000000");
        assert_eq!(Interval::from_millis(-1500).to_string(), "-1.500000");
    }

    #[test]
    fn interval_parse() {
        assert_eq!("300".parse::<Interval>().unwrap(), Interval::from_secs(300));
        assert_eq!(
            "0.5".parse::<Interval>().unwrap(),
            Interval::from_millis(500)
        );
        assert!("abc".parse::<Interval>().is_err());
    }

    #[test]
    fn float_conversions() {
        let t = Time::from_secs_f64(1.25);
        assert_eq!(t.nanos(), 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-9);
    }
}
