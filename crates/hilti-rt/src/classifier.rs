//! ACL-style packet classification — HILTI's `classifier` type (§3.2).
//!
//! A classifier stores rules keyed by tuples of matchable fields (CIDR
//! networks, ports, exact integers, wildcards) and returns the value of the
//! highest-priority matching rule. The paper's prototype "implements the
//! classifier type as a linked list internally, which does not scale with
//! larger numbers of rules" and notes it would be "straightforward to later
//! transparently switch to a better data structure" (§5). We implement both:
//! the faithful [`Backend::LinearScan`] baseline and a
//! [`Backend::FieldIndexed`] variant that prunes candidates through a
//! per-field prefix index — the ablation benchmark A2 compares them.
//!
//! Usage mirrors the paper's firewall (Figure 5): `add` rules, `compile()`
//! to freeze, then `get`/`matches` per packet.

use std::collections::HashMap;

use crate::addr::{Addr, Network, Port};
use crate::error::{RtError, RtResult};

/// One matchable field of a rule key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldMatcher {
    /// CIDR prefix match on an address field.
    Net(Network),
    /// Exact address (sugar for a host network).
    Host(Addr),
    /// Exact port (number and protocol).
    Port(Port),
    /// Exact integer.
    Int(u64),
    /// Matches anything (the `*` in Figure 5).
    Wildcard,
}

/// One field of a lookup key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    Addr(Addr),
    Port(Port),
    Int(u64),
}

impl FieldMatcher {
    /// Does this matcher cover `value`? Type mismatches simply don't match
    /// (the HILTI type checker rules them out statically; at runtime we stay
    /// conservative).
    pub fn matches(&self, value: &FieldValue) -> bool {
        match (self, value) {
            (FieldMatcher::Wildcard, _) => true,
            (FieldMatcher::Net(n), FieldValue::Addr(a)) => n.contains(a),
            (FieldMatcher::Host(h), FieldValue::Addr(a)) => h == a,
            (FieldMatcher::Port(p), FieldValue::Port(q)) => p == q,
            (FieldMatcher::Int(i), FieldValue::Int(j)) => i == j,
            _ => false,
        }
    }

    /// Specificity for default priorities: more specific rules win. Network
    /// matchers score by prefix length, exact matchers max out, wildcards
    /// score zero.
    fn specificity(&self) -> u32 {
        match self {
            FieldMatcher::Wildcard => 0,
            FieldMatcher::Net(n) => u32::from(n.len()),
            FieldMatcher::Host(_) => 128,
            FieldMatcher::Port(_) | FieldMatcher::Int(_) => 128,
        }
    }
}

#[derive(Clone, Debug)]
struct Rule<V> {
    fields: Vec<FieldMatcher>,
    value: V,
    /// Higher wins; ties broken by insertion order (first added wins),
    /// which reproduces the paper's "applied in order of specification".
    priority: i64,
    seq: usize,
}

/// Which lookup structure a compiled classifier uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// The paper's baseline: scan rules in priority order.
    #[default]
    LinearScan,
    /// Candidate pruning through a per-field index on the first address
    /// field (prefix buckets), falling back to the scan for the survivors.
    FieldIndexed,
}

/// A priority-rule classifier mapping field tuples to values.
pub struct Classifier<V> {
    rules: Vec<Rule<V>>,
    arity: Option<usize>,
    compiled: bool,
    backend: Backend,
    /// FieldIndexed: rules bucketed by the first field's /16-masked prefix
    /// (IPv4) or /32-masked prefix (IPv6); rules whose first field cannot
    /// prune (wildcards, short prefixes, non-address) live in `always`.
    index: HashMap<u128, Vec<usize>>,
    always: Vec<usize>,
}

/// Prefix granularity of the FieldIndexed bucket key.
const INDEX_BITS_V4: u8 = 16;
const INDEX_BITS_V6: u8 = 32;

impl<V: Clone> Classifier<V> {
    pub fn new() -> Self {
        Classifier {
            rules: Vec::new(),
            arity: None,
            compiled: false,
            backend: Backend::default(),
            index: HashMap::new(),
            always: Vec::new(),
        }
    }

    pub fn with_backend(backend: Backend) -> Self {
        let mut c = Self::new();
        c.backend = backend;
        c
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Adds a rule with the default priority (field specificity, so more
    /// specific rules shadow broader ones; equal specificity keeps
    /// specification order, as in Figure 5).
    pub fn add(&mut self, fields: Vec<FieldMatcher>, value: V) -> RtResult<()> {
        let prio = fields.iter().map(|f| i64::from(f.specificity())).sum();
        self.add_with_priority(fields, value, prio)
    }

    /// Adds a rule with an explicit priority (higher wins).
    pub fn add_with_priority(
        &mut self,
        fields: Vec<FieldMatcher>,
        value: V,
        priority: i64,
    ) -> RtResult<()> {
        if self.compiled {
            return Err(RtError::frozen("classifier already compiled"));
        }
        match self.arity {
            None => self.arity = Some(fields.len()),
            Some(a) if a != fields.len() => {
                return Err(RtError::value(format!(
                    "rule arity {} does not match classifier arity {a}",
                    fields.len()
                )))
            }
            _ => {}
        }
        let seq = self.rules.len();
        self.rules.push(Rule {
            fields,
            value,
            priority,
            seq,
        });
        Ok(())
    }

    /// Freezes the rule set and builds the lookup structure
    /// (`classifier.compile` in HILTI).
    pub fn compile(&mut self) {
        if self.compiled {
            return;
        }
        self.compiled = true;
        // Priority order: higher priority first, then specification order.
        self.rules
            .sort_by(|a, b| b.priority.cmp(&a.priority).then(a.seq.cmp(&b.seq)));
        if self.backend == Backend::FieldIndexed {
            for (i, rule) in self.rules.iter().enumerate() {
                match rule.fields.first() {
                    Some(FieldMatcher::Net(n))
                        if n.prefix().is_v4() && n.len() >= INDEX_BITS_V4 =>
                    {
                        let key = n.prefix().mask(INDEX_BITS_V4).raw();
                        self.index.entry(key).or_default().push(i);
                    }
                    Some(FieldMatcher::Net(n))
                        if n.prefix().is_v6() && n.len() >= INDEX_BITS_V6 =>
                    {
                        let key = n.prefix().mask(INDEX_BITS_V6).raw();
                        self.index.entry(key).or_default().push(i);
                    }
                    Some(FieldMatcher::Host(a)) => {
                        let bits = if a.is_v4() {
                            INDEX_BITS_V4
                        } else {
                            INDEX_BITS_V6
                        };
                        let key = a.mask(bits).raw();
                        self.index.entry(key).or_default().push(i);
                    }
                    _ => self.always.push(i),
                }
            }
        }
    }

    pub fn is_compiled(&self) -> bool {
        self.compiled
    }

    fn rule_matches(rule: &Rule<V>, key: &[FieldValue]) -> bool {
        rule.fields.len() == key.len() && rule.fields.iter().zip(key).all(|(f, v)| f.matches(v))
    }

    /// Returns the value of the best-matching rule, or `IndexError` if no
    /// rule matches (mirroring `classifier.get` raising `Hilti::IndexError`,
    /// Figure 5).
    pub fn get(&self, key: &[FieldValue]) -> RtResult<V> {
        self.matches(key)
            .ok_or_else(|| RtError::index("no matching rule"))
    }

    /// Returns the best-matching rule's value, if any.
    pub fn matches(&self, key: &[FieldValue]) -> Option<V> {
        debug_assert!(self.compiled, "lookup before compile()");
        match self.backend {
            Backend::LinearScan => self
                .rules
                .iter()
                .find(|r| Self::rule_matches(r, key))
                .map(|r| r.value.clone()),
            Backend::FieldIndexed => {
                // `rules` is sorted by priority, so the matching rule with
                // the lowest index wins.
                let mut best: Option<usize> = None;
                let mut consider = |idx: usize| {
                    if best.is_none_or(|b| idx < b) && Self::rule_matches(&self.rules[idx], key) {
                        best = Some(idx);
                    }
                };
                if let Some(FieldValue::Addr(a)) = key.first() {
                    let bits = if a.is_v4() {
                        INDEX_BITS_V4
                    } else {
                        INDEX_BITS_V6
                    };
                    if let Some(bucket) = self.index.get(&a.mask(bits).raw()) {
                        bucket.iter().for_each(|&i| consider(i));
                    }
                }
                self.always.iter().for_each(|&i| consider(i));
                best.map(|i| self.rules[i].value.clone())
            }
        }
    }
}

impl<V> std::fmt::Debug for Classifier<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Classifier {{ rules: {}, backend: {:?}, compiled: {} }}",
            self.rules.len(),
            self.backend,
            self.compiled
        )
    }
}

impl<V: Clone> Default for Classifier<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> FieldMatcher {
        FieldMatcher::Net(s.parse().unwrap())
    }

    fn akey(s: &str) -> FieldValue {
        FieldValue::Addr(s.parse().unwrap())
    }

    /// The rule set from Figure 5 of the paper.
    fn figure5(backend: Backend) -> Classifier<bool> {
        let mut c = Classifier::with_backend(backend);
        c.add(vec![net("10.3.2.1/32"), net("10.1.0.0/16")], true)
            .unwrap();
        c.add(vec![net("10.12.0.0/16"), net("10.1.0.0/16")], false)
            .unwrap();
        c.add(vec![net("10.1.6.0/24"), FieldMatcher::Wildcard], true)
            .unwrap();
        c.add(vec![net("10.1.7.0/24"), FieldMatcher::Wildcard], true)
            .unwrap();
        c.compile();
        c
    }

    #[test]
    fn figure5_semantics_linear() {
        let c = figure5(Backend::LinearScan);
        assert!(c.get(&[akey("10.3.2.1"), akey("10.1.99.1")]).unwrap());
        assert!(!c.get(&[akey("10.12.5.5"), akey("10.1.0.1")]).unwrap());
        assert!(c.get(&[akey("10.1.6.100"), akey("8.8.8.8")]).unwrap());
        assert!(c.get(&[akey("10.1.7.1"), akey("1.2.3.4")]).unwrap());
        // No rule: IndexError, the firewall's default-deny path.
        assert!(c.get(&[akey("172.16.0.1"), akey("10.1.0.1")]).is_err());
    }

    #[test]
    fn backends_agree_on_figure5() {
        let lin = figure5(Backend::LinearScan);
        let idx = figure5(Backend::FieldIndexed);
        let probes = [
            ("10.3.2.1", "10.1.99.1"),
            ("10.12.5.5", "10.1.0.1"),
            ("10.1.6.100", "8.8.8.8"),
            ("10.1.7.1", "1.2.3.4"),
            ("172.16.0.1", "10.1.0.1"),
            ("10.3.2.2", "10.1.0.1"),
            ("10.12.1.1", "10.2.0.1"),
        ];
        for (s, d) in probes {
            assert_eq!(
                lin.matches(&[akey(s), akey(d)]),
                idx.matches(&[akey(s), akey(d)]),
                "probe ({s},{d})"
            );
        }
    }

    #[test]
    fn specificity_priority() {
        let mut c = Classifier::new();
        c.add(vec![net("10.0.0.0/8")], "broad").unwrap();
        c.add(vec![net("10.1.0.0/16")], "narrow").unwrap();
        c.compile();
        assert_eq!(c.matches(&[akey("10.1.2.3")]), Some("narrow"));
        assert_eq!(c.matches(&[akey("10.2.2.3")]), Some("broad"));
    }

    #[test]
    fn explicit_priority_overrides() {
        let mut c = Classifier::new();
        c.add_with_priority(vec![net("10.0.0.0/8")], "broad-high", 1000)
            .unwrap();
        c.add_with_priority(vec![net("10.1.0.0/16")], "narrow-low", 1)
            .unwrap();
        c.compile();
        assert_eq!(c.matches(&[akey("10.1.2.3")]), Some("broad-high"));
    }

    #[test]
    fn insertion_order_breaks_ties() {
        let mut c = Classifier::new();
        c.add_with_priority(vec![FieldMatcher::Wildcard], "first", 0)
            .unwrap();
        c.add_with_priority(vec![FieldMatcher::Wildcard], "second", 0)
            .unwrap();
        c.compile();
        assert_eq!(c.matches(&[akey("1.2.3.4")]), Some("first"));
    }

    #[test]
    fn arity_enforced() {
        let mut c = Classifier::new();
        c.add(vec![FieldMatcher::Wildcard, FieldMatcher::Wildcard], 1)
            .unwrap();
        assert!(c.add(vec![FieldMatcher::Wildcard], 2).is_err());
    }

    #[test]
    fn add_after_compile_fails() {
        let mut c = Classifier::new();
        c.add(vec![FieldMatcher::Wildcard], 1).unwrap();
        c.compile();
        assert!(c.add(vec![FieldMatcher::Wildcard], 2).is_err());
    }

    #[test]
    fn port_and_int_fields() {
        let mut c = Classifier::new();
        c.add(
            vec![FieldMatcher::Port(Port::tcp(80)), FieldMatcher::Int(4)],
            "web4",
        )
        .unwrap();
        c.add(
            vec![FieldMatcher::Port(Port::tcp(80)), FieldMatcher::Wildcard],
            "web",
        )
        .unwrap();
        c.compile();
        assert_eq!(
            c.matches(&[FieldValue::Port(Port::tcp(80)), FieldValue::Int(4)]),
            Some("web4")
        );
        assert_eq!(
            c.matches(&[FieldValue::Port(Port::tcp(80)), FieldValue::Int(6)]),
            Some("web")
        );
        assert_eq!(
            c.matches(&[FieldValue::Port(Port::udp(80)), FieldValue::Int(4)]),
            None
        );
    }

    #[test]
    fn wildcard_type_tolerance() {
        // A wildcard matches values of any type.
        assert!(FieldMatcher::Wildcard.matches(&FieldValue::Int(7)));
        // Typed matchers never match mistyped values.
        assert!(!FieldMatcher::Port(Port::tcp(80)).matches(&FieldValue::Int(80)));
    }

    #[test]
    fn backends_agree_on_large_ruleset() {
        let mut lin = Classifier::with_backend(Backend::LinearScan);
        let mut idx = Classifier::with_backend(Backend::FieldIndexed);
        for i in 0..200u32 {
            let net_s = format!("10.{}.{}.0/24", i % 16, i % 256);
            let action = i % 3 == 0;
            lin.add(vec![net(&net_s), FieldMatcher::Wildcard], action)
                .unwrap();
            idx.add(vec![net(&net_s), FieldMatcher::Wildcard], action)
                .unwrap();
        }
        // Plus a catch-all with low priority.
        lin.add_with_priority(
            vec![FieldMatcher::Wildcard, FieldMatcher::Wildcard],
            true,
            -1,
        )
        .unwrap();
        idx.add_with_priority(
            vec![FieldMatcher::Wildcard, FieldMatcher::Wildcard],
            true,
            -1,
        )
        .unwrap();
        lin.compile();
        idx.compile();
        for i in 0..500u32 {
            let probe = [
                FieldValue::Addr(Addr::v4(10, (i % 20) as u8, (i % 250) as u8, 1)),
                FieldValue::Addr(Addr::v4(192, 168, 0, 1)),
            ];
            assert_eq!(lin.matches(&probe), idx.matches(&probe), "probe {i}");
        }
    }

    #[test]
    fn v6_rules() {
        let mut c = Classifier::new();
        c.add(vec![net("2001:db8::/32")], "doc").unwrap();
        c.compile();
        assert_eq!(c.matches(&[akey("2001:db8::1")]), Some("doc"));
        assert_eq!(c.matches(&[akey("2001:db9::1")]), None);
        // v4 probe against v6 rule: no match.
        assert_eq!(c.matches(&[akey("10.0.0.1")]), None);
    }
}
