//! SHA-1, implemented from FIPS 180-1.
//!
//! Bro's `files.log` records a SHA-1 hash of every extracted message body
//! (§6.4); the evaluation reproduces that log, so the platform needs the
//! digest. Implemented from scratch per the workspace's no-new-dependencies
//! rule. SHA-1 is used here strictly as a content identifier, as in Bro —
//! not for any security purpose.

/// Streaming SHA-1 context.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Sha1 {
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// Feeds more data into the digest.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finalizes and returns the 20-byte digest.
    pub fn finish(mut self) -> [u8; 20] {
        let len_bits = self.length_bits;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Length was already counted for the padding bytes; splice in the
        // original bit length directly.
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&len_bits.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Finalizes to the conventional lowercase-hex representation.
    pub fn finish_hex(self) -> String {
        hex(&self.finish())
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot convenience over a byte slice.
pub fn sha1_hex(data: &[u8]) -> String {
    let mut h = Sha1::new();
    h.update(data);
    h.finish_hex()
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_test_vectors() {
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(h.finish_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = sha1_hex(&data);
        for split in [1usize, 7, 63, 64, 65, 500, 999] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish_hex(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Messages of length 55, 56, 64 exercise the padding edge cases.
        assert_eq!(sha1_hex(&[b'x'; 55]), {
            let mut h = Sha1::new();
            for _ in 0..55 {
                h.update(b"x");
            }
            h.finish_hex()
        });
        for n in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![b'q'; n];
            let mut h = Sha1::new();
            h.update(&data);
            assert_eq!(h.finish_hex(), sha1_hex(&data), "length {n}");
        }
    }
}
