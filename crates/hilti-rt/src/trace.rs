//! Flight-recorder tracing: bounded rings of per-stage spans with
//! monotonic-nanosecond timestamps, per-stage latency histograms, and
//! fault-triggered postmortem dumps.
//!
//! Design constraints, in order:
//!
//! * **Recording-off is a single branch.** Producers hold an
//!   `Option<FlightRecorder>` (or a shared cell of one); when tracing is
//!   disabled nothing is allocated and the hot path pays one `is_some()`
//!   test per would-be span.
//! * **The hot path is lock-free.** A recorder is owned by exactly one
//!   thread (`&mut` writes into a pre-sized ring); cross-thread handoff
//!   happens only at harvest time, after the owning thread is done. The
//!   only timestamps that cross threads are plain `u64`s stamped by the
//!   producer (e.g. a dispatcher enqueue time consumed by a shard).
//! * **Wall-clock data never enters deterministic outputs.** Spans,
//!   latency reports, and dumps travel in side-channels
//!   ([`TraceReport`]); the *structure* of a dump (stage/packet/uid
//!   sequence) is deterministic for a fixed input and worker count, only
//!   the `*_ns` fields vary run to run.
//!
//! The JSON export (`hilti.trace.v1`) is the Chrome trace-event format —
//! an object with a `traceEvents` array of complete (`"ph":"X"`) events,
//! timestamps in microseconds — so `chrome://tracing` and Perfetto load
//! it directly; the schema marker rides as an extra top-level key that
//! those viewers ignore.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::telemetry::{json, HistogramSnapshot};

/// Number of pipeline stages a span can be attributed to.
pub const STAGES: usize = 6;

/// Shard id used for spans recorded on the dispatcher thread.
pub const DISPATCHER: u32 = u32::MAX;

/// Default ring capacity per recorder (spans retained for export and
/// postmortem dumps; histograms see every span regardless of wrap).
pub const DEFAULT_RING_CAP: usize = 1 << 15;

/// Number of most-recent spans drained into a postmortem dump.
pub const POSTMORTEM_SPANS: usize = 256;

/// Slowest-deliveries kept per shard in a [`LatencyReport`].
pub const TOP_K: usize = 5;

/// The six stages of the delivery path. `hiltic` (no packet pipeline)
/// reuses `Parse` for its front end and `Script` for program execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Dispatcher: staging + pushing a batch into a shard's ring
    /// (includes any backpressure park under `OverloadPolicy::Block`).
    Dispatch = 0,
    /// Between dispatcher staging and the shard popping the item.
    QueueWait = 1,
    /// Dispatcher: ethernet/IP/transport decode + flow-table upkeep.
    Decode = 2,
    /// Parser feed (binpac or standard stack) for one delivery.
    Parse = 3,
    /// Script event execution for one delivery's event batch.
    Script = 4,
    /// Dispatcher: deterministic epoch merge of shard effects.
    Merge = 5,
}

impl Stage {
    pub const ALL: [Stage; STAGES] = [
        Stage::Dispatch,
        Stage::QueueWait,
        Stage::Decode,
        Stage::Parse,
        Stage::Script,
        Stage::Merge,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Dispatch => "dispatch",
            Stage::QueueWait => "queue_wait",
            Stage::Decode => "decode",
            Stage::Parse => "parse",
            Stage::Script => "script",
            Stage::Merge => "merge",
        }
    }

    pub fn index(self) -> usize {
        self as usize
    }
}

/// Nanoseconds since a process-global monotonic epoch. All recorders in
/// a process share the epoch, so timestamps stamped on one thread (a
/// dispatcher enqueue) compare meaningfully against timestamps read on
/// another (the shard's dequeue) — which is what makes the `QueueWait`
/// stage measurable at all.
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// One fixed-size span record. `uid` is a cheap refcounted handle to the
/// interned flow uid (no string copy on the hot path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub stage: Stage,
    pub shard: u32,
    /// Packet slot (merge major) for delivery stages; item/descriptor
    /// count for the batch-level `Dispatch`/`Merge` stages.
    pub packet: u64,
    pub uid: Option<Arc<str>>,
    pub begin_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// Non-atomic power-of-two histogram for single-owner recorders: same
/// bucketing as `telemetry::Histogram`, but plain `u64` adds (the
/// recorder is `&mut`-owned, so atomics would buy nothing).
#[derive(Clone)]
struct LocalHist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for LocalHist {
    fn default() -> Self {
        LocalHist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHist {
    fn observe(&mut self, v: u64) {
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let upper = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                (upper, n)
            })
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets,
        }
    }
}

/// A bounded ring of [`SpanRecord`]s plus per-stage latency histograms.
/// Owned by one thread; see the module docs for the concurrency model.
pub struct FlightRecorder {
    shard: u32,
    cap: usize,
    ring: Vec<SpanRecord>,
    /// Overwrite cursor, meaningful once `ring.len() == cap`.
    next: usize,
    total: u64,
    stage_ns: [LocalHist; STAGES],
    delivery_ns: LocalHist,
}

/// Single-thread shared handle: lets a pipeline and the parsers it owns
/// (e.g. `BinpacHttp`) record into the same ring without threading
/// `&mut` through every call signature. `Rc` keeps it off the
/// cross-thread path by construction.
pub type SharedRecorder = Rc<RefCell<FlightRecorder>>;

impl FlightRecorder {
    pub fn new(shard: u32) -> Self {
        Self::with_capacity(shard, DEFAULT_RING_CAP)
    }

    pub fn with_capacity(shard: u32, cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder {
            shard,
            cap,
            ring: Vec::with_capacity(cap),
            next: 0,
            total: 0,
            stage_ns: std::array::from_fn(|_| LocalHist::default()),
            delivery_ns: LocalHist::default(),
        }
    }

    pub fn shared(self) -> SharedRecorder {
        Rc::new(RefCell::new(self))
    }

    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Timestamp for a span about to begin.
    pub fn begin(&self) -> u64 {
        monotonic_ns()
    }

    /// Records a span ending now.
    pub fn record(&mut self, stage: Stage, packet: u64, uid: Option<&Arc<str>>, begin_ns: u64) {
        self.record_span(stage, packet, uid, begin_ns, monotonic_ns());
    }

    /// Records a span with both endpoints supplied (used when the begin
    /// timestamp was stamped on another thread, e.g. queue wait).
    pub fn record_span(
        &mut self,
        stage: Stage,
        packet: u64,
        uid: Option<&Arc<str>>,
        begin_ns: u64,
        end_ns: u64,
    ) {
        self.stage_ns[stage.index()].observe(end_ns.saturating_sub(begin_ns));
        let rec = SpanRecord {
            stage,
            shard: self.shard,
            packet,
            uid: uid.cloned(),
            begin_ns,
            end_ns,
        };
        if self.ring.len() < self.cap {
            self.ring.push(rec);
        } else {
            self.ring[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Feeds the end-to-end delivery latency histogram (enqueue → script
    /// done for the sharded pipeline; decode → script done sequentially).
    pub fn observe_delivery(&mut self, ns: u64) {
        self.delivery_ns.observe(ns);
    }

    /// Spans ever recorded (retained + overwritten).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Spans lost to ring wrap.
    pub fn dropped(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.next..]);
        out.extend_from_slice(&self.ring[..self.next]);
        out
    }

    /// The most recent `n` spans, oldest first.
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let all = self.spans();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }

    /// Drains the last [`POSTMORTEM_SPANS`] records into a dump.
    pub fn postmortem(&self, reason: &str) -> PostmortemDump {
        PostmortemDump {
            shard: self.shard,
            reason: reason.to_string(),
            records: self.recent(POSTMORTEM_SPANS),
        }
    }

    /// Freezes the recorder into a `Send`-able part for merging.
    pub fn finish(self) -> RecorderPart {
        RecorderPart {
            shard: self.shard,
            spans: {
                let mut out = Vec::with_capacity(self.ring.len());
                let (tail, head) = self.ring.split_at(self.next.min(self.ring.len()));
                out.extend_from_slice(head);
                out.extend_from_slice(tail);
                out
            },
            stage_ns: self.stage_ns.iter().map(LocalHist::snapshot).collect(),
            delivery_ns: self.delivery_ns.snapshot(),
            dropped: self.total - self.ring.len() as u64,
        }
    }
}

/// A frozen recorder: retained spans (oldest first) plus per-stage and
/// delivery histograms. Plain data, `Send`.
#[derive(Clone, Debug)]
pub struct RecorderPart {
    pub shard: u32,
    pub spans: Vec<SpanRecord>,
    /// One snapshot per [`Stage`], indexed by `Stage::index()`.
    pub stage_ns: Vec<HistogramSnapshot>,
    pub delivery_ns: HistogramSnapshot,
    pub dropped: u64,
}

impl RecorderPart {
    /// The last [`POSTMORTEM_SPANS`] retained spans as a dump — the
    /// post-join counterpart of [`FlightRecorder::postmortem`], for faults
    /// the dispatcher only learns about after harvesting the shard.
    pub fn postmortem(&self, reason: &str) -> PostmortemDump {
        let skip = self.spans.len().saturating_sub(POSTMORTEM_SPANS);
        PostmortemDump {
            shard: self.shard,
            reason: reason.to_string(),
            records: self.spans[skip..].to_vec(),
        }
    }
}

/// Per-stage latency summary line.
#[derive(Clone, Debug)]
pub struct StageLatency {
    pub stage: Stage,
    pub count: u64,
    pub total_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

/// One slow delivery with its per-stage breakdown.
#[derive(Clone, Debug)]
pub struct SlowDelivery {
    pub shard: u32,
    pub packet: u64,
    pub uid: Option<Arc<str>>,
    pub total_ns: u64,
    pub stage_ns: [u64; STAGES],
}

/// Latency attribution across all recorders of a run: per-stage
/// quantiles, end-to-end delivery quantiles, and the per-shard top-K
/// slowest deliveries.
#[derive(Clone, Debug, Default)]
pub struct LatencyReport {
    /// Stages with at least one span, in [`Stage::ALL`] order.
    pub stages: Vec<StageLatency>,
    pub delivery_count: u64,
    pub delivery_p50_ns: u64,
    pub delivery_p95_ns: u64,
    pub delivery_p99_ns: u64,
    /// Top-[`TOP_K`] slowest deliveries per shard, grouped by shard,
    /// slowest first within a shard.
    pub slowest: Vec<SlowDelivery>,
}

impl LatencyReport {
    /// Human-readable multi-line summary (for `--stats` output).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("latency (per stage, ns):\n");
        s.push_str("  stage        count        p50        p95        p99\n");
        for st in &self.stages {
            s.push_str(&format!(
                "  {:<10} {:>7} {:>10} {:>10} {:>10}\n",
                st.stage.name(),
                st.count,
                st.p50_ns,
                st.p95_ns,
                st.p99_ns
            ));
        }
        if self.delivery_count > 0 {
            s.push_str(&format!(
                "  delivery   {:>7} {:>10} {:>10} {:>10}\n",
                self.delivery_count,
                self.delivery_p50_ns,
                self.delivery_p95_ns,
                self.delivery_p99_ns
            ));
        }
        if !self.slowest.is_empty() {
            s.push_str("slowest deliveries (per shard):\n");
            for d in &self.slowest {
                let shard = if d.shard == DISPATCHER {
                    "disp".to_string()
                } else {
                    format!("s{}", d.shard)
                };
                let mut stages = String::new();
                for st in Stage::ALL {
                    let ns = d.stage_ns[st.index()];
                    if ns > 0 {
                        stages.push_str(&format!(" {}={}", st.name(), ns));
                    }
                }
                s.push_str(&format!(
                    "  {:<5} pkt {:>6} {:>10} ns{} uid={}\n",
                    shard,
                    d.packet,
                    d.total_ns,
                    stages,
                    d.uid.as_deref().unwrap_or("-"),
                ));
            }
        }
        s
    }
}

/// A fault-triggered dump: the last N spans of the faulting shard.
#[derive(Clone, Debug)]
pub struct PostmortemDump {
    pub shard: u32,
    pub reason: String,
    pub records: Vec<SpanRecord>,
}

impl PostmortemDump {
    /// JSONL rendering: one header line, then one line per record.
    pub fn to_jsonl(&self) -> String {
        let mut s = format!(
            "{{\"schema\":\"hilti.trace.v1\",\"kind\":\"postmortem\",\"shard\":{},\"reason\":{},\"records\":{}}}\n",
            self.shard,
            json::quote(&self.reason),
            self.records.len()
        );
        for r in &self.records {
            s.push_str(&format!(
                "{{\"stage\":{},\"shard\":{},\"packet\":{},\"uid\":{},\"begin_ns\":{},\"end_ns\":{}}}\n",
                json::quote(r.stage.name()),
                r.shard,
                r.packet,
                r.uid.as_deref().map(json::quote).unwrap_or_else(|| "null".into()),
                r.begin_ns,
                r.end_ns
            ));
        }
        s
    }

    /// The timestamp-free projection of the dump: what the determinism
    /// tests compare across runs.
    pub fn structure(&self) -> Vec<(String, u64, Option<String>)> {
        self.records
            .iter()
            .map(|r| {
                (
                    r.stage.name().to_string(),
                    r.packet,
                    r.uid.as_deref().map(str::to_string),
                )
            })
            .collect()
    }
}

/// The full trace side-channel of a run: latency attribution, retained
/// spans, and any fault-triggered dumps. Lives *next to* deterministic
/// results (like `dispatch_telemetry`), never inside them.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    pub latency: LatencyReport,
    /// Retained spans from all recorders, shard order then ring order.
    pub spans: Vec<SpanRecord>,
    /// Spans lost to ring wrap across all recorders.
    pub spans_dropped: u64,
    pub postmortems: Vec<PostmortemDump>,
}

impl TraceReport {
    /// Builds the report from frozen recorders plus any dumps collected
    /// by supervision.
    pub fn from_parts(mut parts: Vec<RecorderPart>, postmortems: Vec<PostmortemDump>) -> Self {
        parts.sort_by_key(|p| p.shard); // shards ascending, dispatcher (MAX) last
        let mut stages = Vec::new();
        for st in Stage::ALL {
            let merged = HistogramSnapshot::merge(
                &parts
                    .iter()
                    .filter_map(|p| p.stage_ns.get(st.index()).cloned())
                    .collect::<Vec<_>>(),
            );
            if merged.count > 0 {
                stages.push(StageLatency {
                    stage: st,
                    count: merged.count,
                    total_ns: merged.sum,
                    p50_ns: merged.quantile(0.50),
                    p95_ns: merged.quantile(0.95),
                    p99_ns: merged.quantile(0.99),
                });
            }
        }
        let delivery = HistogramSnapshot::merge(
            &parts
                .iter()
                .map(|p| p.delivery_ns.clone())
                .collect::<Vec<_>>(),
        );
        let slowest = Self::slowest_deliveries(&parts);
        let mut spans = Vec::new();
        let mut dropped = 0u64;
        for p in &parts {
            spans.extend(p.spans.iter().cloned());
            dropped += p.dropped;
        }
        TraceReport {
            latency: LatencyReport {
                stages,
                delivery_count: delivery.count,
                delivery_p50_ns: delivery.quantile(0.50),
                delivery_p95_ns: delivery.quantile(0.95),
                delivery_p99_ns: delivery.quantile(0.99),
                slowest,
            },
            spans,
            spans_dropped: dropped,
            postmortems,
        }
    }

    /// Groups retained per-delivery spans (queue wait, decode, parse,
    /// script) by packet slot and keeps the top-K slowest per shard.
    /// Works on retained spans only, so under heavy ring wrap the table
    /// reflects the recent window — which is the window that matters for
    /// tail diagnosis.
    fn slowest_deliveries(parts: &[RecorderPart]) -> Vec<SlowDelivery> {
        use std::collections::BTreeMap;
        // packet -> (owning shard, uid, per-stage ns)
        type PacketAgg = (u32, Option<Arc<str>>, [u64; STAGES]);
        let mut by_packet: BTreeMap<u64, PacketAgg> = BTreeMap::new();
        for p in parts {
            for r in &p.spans {
                if matches!(r.stage, Stage::Dispatch | Stage::Merge) {
                    continue;
                }
                let e = by_packet
                    .entry(r.packet)
                    .or_insert((DISPATCHER, None, [0; STAGES]));
                if r.shard != DISPATCHER {
                    e.0 = e.0.min(r.shard);
                }
                if e.1.is_none() {
                    e.1 = r.uid.clone();
                }
                e.2[r.stage.index()] += r.duration_ns();
            }
        }
        let mut by_shard: BTreeMap<u32, Vec<SlowDelivery>> = BTreeMap::new();
        for (packet, (shard, uid, stage_ns)) in by_packet {
            by_shard.entry(shard).or_default().push(SlowDelivery {
                shard,
                packet,
                uid,
                total_ns: stage_ns.iter().sum(),
                stage_ns,
            });
        }
        let mut out = Vec::new();
        for (_, mut v) in by_shard {
            v.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.packet.cmp(&b.packet)));
            v.truncate(TOP_K);
            out.extend(v);
        }
        out
    }

    /// Chrome trace-event / Perfetto-compatible JSON (`hilti.trace.v1`).
    /// `tid` 0 is the dispatcher, `tid` w+1 is shard w; timestamps are
    /// microseconds with nanosecond precision kept in the fraction.
    pub fn to_chrome_json(&self) -> String {
        let tid = |shard: u32| -> u64 {
            if shard == DISPATCHER {
                0
            } else {
                shard as u64 + 1
            }
        };
        let us = |ns: u64| -> String { format!("{}.{:03}", ns / 1000, ns % 1000) };
        let mut s = String::from(
            "{\"schema\":\"hilti.trace.v1\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
        );
        let mut first = true;
        let mut push = |s: &mut String, ev: String| {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&ev);
        };
        push(
            &mut s,
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"hilti\"}}".to_string(),
        );
        let mut shards: Vec<u32> = self.spans.iter().map(|r| r.shard).collect();
        shards.sort_unstable();
        shards.dedup();
        for sh in &shards {
            let name = if *sh == DISPATCHER {
                "dispatcher".to_string()
            } else {
                format!("shard{sh}")
            };
            push(
                &mut s,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
                    tid(*sh),
                    json::quote(&name)
                ),
            );
        }
        for r in &self.spans {
            let mut args = format!("\"packet\":{}", r.packet);
            if let Some(uid) = &r.uid {
                args.push_str(&format!(",\"uid\":{}", json::quote(uid)));
            }
            push(
                &mut s,
                format!(
                    "{{\"name\":{},\"cat\":\"hilti\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
                    json::quote(r.stage.name()),
                    tid(r.shard),
                    us(r.begin_ns),
                    us(r.duration_ns()),
                    args
                ),
            );
        }
        s.push_str(&format!("],\"spans_dropped\":{}}}", self.spans_dropped));
        s
    }

    /// All postmortem dumps as one JSONL document.
    pub fn postmortems_jsonl(&self) -> String {
        self.postmortems
            .iter()
            .map(PostmortemDump::to_jsonl)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn monotonic_ns_is_monotone_and_shared() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
        let c = std::thread::spawn(monotonic_ns).join().unwrap();
        // Same epoch across threads: a later read on another thread is
        // not before an earlier read here.
        assert!(c >= a);
    }

    #[test]
    fn ring_bounds_and_wraps_oldest_first() {
        let mut r = FlightRecorder::with_capacity(0, 4);
        for i in 0..6u64 {
            r.record_span(Stage::Parse, i, None, i * 10, i * 10 + 5);
        }
        assert_eq!(r.total(), 6);
        assert_eq!(r.dropped(), 2);
        let spans = r.spans();
        assert_eq!(
            spans.iter().map(|s| s.packet).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        assert_eq!(
            r.recent(2).iter().map(|s| s.packet).collect::<Vec<_>>(),
            vec![4, 5]
        );
        // Histograms saw all 6 spans despite the wrap.
        let part = r.finish();
        assert_eq!(part.stage_ns[Stage::Parse.index()].count, 6);
        assert_eq!(part.dropped, 2);
        assert_eq!(
            part.spans.iter().map(|s| s.packet).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn report_merges_stages_and_ranks_slowest() {
        let mut disp = FlightRecorder::new(DISPATCHER);
        let mut shard = FlightRecorder::new(0);
        let u = uid("C1");
        // Two deliveries: packet 1 slow, packet 2 fast.
        disp.record_span(Stage::Decode, 1, Some(&u), 0, 100);
        disp.record_span(Stage::Decode, 2, Some(&u), 100, 150);
        shard.record_span(Stage::QueueWait, 1, Some(&u), 100, 2100);
        shard.record_span(Stage::Parse, 1, Some(&u), 2100, 12_100);
        shard.record_span(Stage::Script, 1, Some(&u), 12_100, 13_100);
        shard.record_span(Stage::Parse, 2, Some(&u), 200, 700);
        shard.observe_delivery(13_000);
        shard.observe_delivery(600);
        disp.record_span(Stage::Merge, 2, None, 20_000, 21_000);
        let report = TraceReport::from_parts(vec![disp.finish(), shard.finish()], vec![]);
        let names: Vec<_> = report
            .latency
            .stages
            .iter()
            .map(|s| s.stage.name())
            .collect();
        assert_eq!(
            names,
            vec!["queue_wait", "decode", "parse", "script", "merge"]
        );
        assert_eq!(report.latency.delivery_count, 2);
        assert!(report.latency.delivery_p99_ns >= report.latency.delivery_p50_ns);
        // Slowest delivery is packet 1, attributed to shard 0, with its
        // stage breakdown populated.
        let top = &report.latency.slowest[0];
        assert_eq!((top.shard, top.packet), (0, 1));
        assert_eq!(top.stage_ns[Stage::Parse.index()], 10_000);
        assert_eq!(top.stage_ns[Stage::Decode.index()], 100);
        assert!(!report.latency.render().is_empty());
    }

    #[test]
    fn chrome_json_validates_and_covers_stages() {
        let mut r = FlightRecorder::new(3);
        let u = uid("C\"quote");
        for st in Stage::ALL {
            r.record_span(st, 7, Some(&u), 1000, 2500);
        }
        let report = TraceReport::from_parts(vec![r.finish()], vec![]);
        let doc = report.to_chrome_json();
        json::validate(&doc).expect("chrome trace must be valid JSON");
        assert!(doc.contains("\"schema\":\"hilti.trace.v1\""));
        assert!(doc.contains("\"traceEvents\":["));
        for st in Stage::ALL {
            assert!(
                doc.contains(&format!("\"name\":\"{}\"", st.name())),
                "{}",
                st.name()
            );
        }
        // ts is µs with ns precision: 1000 ns -> 1.000.
        assert!(doc.contains("\"ts\":1.000"), "{doc}");
        assert!(doc.contains("\"dur\":1.500"), "{doc}");
        assert!(doc.contains("\"tid\":4"));
    }

    #[test]
    fn postmortem_jsonl_lines_validate_and_structure_is_ts_free() {
        let mut r = FlightRecorder::new(1);
        let u = uid("C9");
        r.record_span(Stage::Parse, 5, Some(&u), 10, 20);
        r.record_span(Stage::Script, 5, Some(&u), 20, 40);
        let dump = r.postmortem("ShardPanic: boom");
        let jsonl = dump.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            json::validate(l).unwrap_or_else(|e| panic!("{l}: {e}"));
        }
        assert!(lines[0].contains("\"kind\":\"postmortem\""));
        assert!(lines[0].contains("\"shard\":1"));
        let st = dump.structure();
        assert_eq!(
            st,
            vec![
                ("parse".to_string(), 5, Some("C9".to_string())),
                ("script".to_string(), 5, Some("C9".to_string())),
            ]
        );
    }

    #[test]
    fn recent_caps_postmortem_size() {
        let mut r = FlightRecorder::new(0);
        for i in 0..(POSTMORTEM_SPANS as u64 + 50) {
            r.record_span(Stage::Script, i, None, i, i + 1);
        }
        let d = r.postmortem("Shed");
        assert_eq!(d.records.len(), POSTMORTEM_SPANS);
        assert_eq!(d.records.first().unwrap().packet, 50);
    }
}
