//! # hilti-rt — the HILTI runtime library
//!
//! This crate implements the runtime substrate of the HILTI abstract machine
//! (Vallentin et al., IMC 2014, §3.2 and §5 "Runtime Library"): the
//! domain-specific value types, the stateful containers with built-in
//! expiration, timers and timer managers, thread-safe channels, the
//! incremental multi-pattern regular-expression engine, the ACL-style packet
//! classifier, overlay unpacking primitives, profiling support, and small
//! utilities (SHA-1, FNV hashing) that the host applications need.
//!
//! Everything here is engine-agnostic: both the HILTI bytecode VM and the
//! reference IR interpreter (crate `hilti`) call into these types, exactly as
//! the paper's generated LLVM code calls into its C runtime library.
//!
//! The modules deliberately avoid global state. Where the paper's runtime
//! keeps per-virtual-thread context objects, the corresponding state here is
//! owned by the caller and passed explicitly (e.g. containers take the
//! current [`time::Time`] when the expiration policy needs it).

pub mod addr;
pub mod bytestring;
pub mod channel;
pub mod classifier;
pub mod containers;
pub mod error;
pub mod file;
pub mod hashutil;
pub mod limits;
pub mod overlay;
pub mod profile;
pub mod regexp;
pub mod sha1;
pub mod spsc;
pub mod telemetry;
pub mod time;
pub mod timer;
pub mod trace;

pub use addr::{Addr, Network, Port, Protocol};
pub use bytestring::Bytes;
pub use error::{RtError, RtResult};
pub use limits::{AllocBudget, FuelMeter, ResourceLimits};
pub use telemetry::{Telemetry, TelemetrySnapshot};
pub use time::{Interval, Time};
