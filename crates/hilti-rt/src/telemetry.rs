//! Unified telemetry: metrics registry and structured event sink.
//!
//! The paper's evaluation (§6) attributes cost to components; keeping that
//! attribution honest as the runtime grows tiers (specialized bytecode,
//! governance) needs cheap, always-on instrumentation. This module is the
//! shared substrate: a [`Registry`] of named counters/gauges/histograms
//! whose handles are pre-interned `Arc<AtomicU64>`s — hot paths touch one
//! relaxed atomic and never allocate — plus an [`EventSink`] that records
//! structured events (flow open/close, parser error, quarantine, timer
//! expiry, fiber suspend/resume, resource-limit trips) and renders them as
//! JSONL.
//!
//! Everything here is counting-based and deterministic: a
//! [`TelemetrySnapshot`] contains no wall-time fields, so two runs over the
//! same input produce byte-identical JSON. Wall-clock attribution stays in
//! [`crate::profile::Profiler`], which shares this registry for its named
//! counters.
//!
//! The metric and event names wired through the engines and the analysis
//! pipeline are a stable interface, documented in DESIGN.md
//! ("Observability").

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Events buffered per sink before further emissions are counted as
/// dropped instead of stored. Generous for any test trace; bounds memory
/// on pathological inputs.
const EVENT_CAP: usize = 1 << 18;

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// whose bit width is `i`, i.e. `v == 0` lands in bucket 0 and
/// `u64::MAX` in bucket 64.
const BUCKETS: usize = 65;

/// A monotonically increasing counter handle. Cloning shares the cell;
/// incrementing is one relaxed atomic add.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins cell with a saturating `set_max` for tracking peaks.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger than the current value.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A power-of-two histogram: values are bucketed by bit width, so the
/// bucket upper bounds are 0, 1, 3, 7, … `u64::MAX`. Recording touches
/// three relaxed atomics and never allocates.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; BUCKETS]>,
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    pub fn observe(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile of the observed values. See
    /// [`HistogramSnapshot::quantile`] for the interpolation contract.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                let upper = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                buckets.push((upper, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metrics registry. Interning a name allocates once; subsequent
/// lookups by `&str` take the lock but allocate nothing, and the returned
/// handles bypass the registry entirely. Clones share state.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or retrieves) the counter `name` and returns its handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        inner.counters.insert(name.to_owned(), c.clone());
        c
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        inner.gauges.insert(name.to_owned(), g.clone());
        g
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock();
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        let h = Histogram::default();
        inner.histograms.insert(name.to_owned(), h.clone());
        h
    }

    /// Current value of a counter, zero if it was never interned.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).map_or(0, Counter::get)
    }

    /// All counters with a non-zero value, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .counters
            .iter()
            .filter(|(_, c)| c.get() > 0)
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// Zeroes every metric. Handles stay valid and keep pointing at the
    /// same (now zeroed) cells.
    pub fn reset(&self) {
        let inner = self.inner.lock();
        for c in inner.counters.values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in inner.gauges.values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in inner.histograms.values() {
            h.reset();
        }
    }
}

/// A single structured event field value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    Str(String),
    U64(u64),
    I64(i64),
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

/// One structured event: a kind plus ordered fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    pub kind: &'static str,
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Renders the event as one JSON object (one JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "{{\"event\":{}", json::quote(self.kind));
        for (k, v) in &self.fields {
            s.push(',');
            s.push_str(&json::quote(k));
            s.push(':');
            match v {
                FieldValue::Str(t) => s.push_str(&json::quote(t)),
                FieldValue::U64(n) => {
                    let _ = write!(s, "{n}");
                }
                FieldValue::I64(n) => {
                    let _ = write!(s, "{n}");
                }
            }
        }
        s.push('}');
        s
    }
}

#[derive(Default)]
struct SinkInner {
    events: Vec<Event>,
    dropped: u64,
}

/// A bounded, shared buffer of structured events. Clones share the buffer.
#[derive(Clone, Default)]
pub struct EventSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl EventSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event; field order is preserved in the JSONL output.
    pub fn emit(&self, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        let mut inner = self.inner.lock();
        if inner.events.len() >= EVENT_CAP {
            inner.dropped += 1;
            return;
        }
        inner.events.push(Event { kind, fields });
    }

    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// All buffered events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    /// Events from index `start` on, in emission order. Lets incremental
    /// consumers (the sharded pipeline attributing engine events to packet
    /// slots) drain only what is new instead of copying the whole buffer.
    pub fn events_since(&self, start: usize) -> Vec<Event> {
        let inner = self.inner.lock();
        inner.events[start.min(inner.events.len())..].to_vec()
    }

    /// Events of one kind, in emission order.
    pub fn events_of(&self, kind: &str) -> Vec<Event> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.events.clear();
        inner.dropped = 0;
    }
}

/// The bundle handed to producers: one registry plus one event sink.
#[derive(Clone, Default)]
pub struct Telemetry {
    pub registry: Registry,
    pub sink: EventSink,
}

impl Telemetry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(name)
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(name)
    }

    pub fn emit(&self, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        self.sink.emit(kind, fields);
    }

    /// Freezes the current state into a deterministic, comparable value.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.registry.inner.lock();
        let counters = inner
            .counters
            .iter()
            .filter(|(_, c)| c.get() > 0)
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let gauges = inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let histograms = inner
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        drop(inner);
        let sink = self.sink.inner.lock();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
            events: sink.events.iter().map(Event::to_json).collect(),
            events_dropped: sink.dropped,
        }
    }
}

/// A frozen histogram: non-empty buckets as `(upper_bound, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Lower bound of the bucket whose upper bound is `upper`: power-of-two
    /// buckets hold {0}, {1}, then [2^(i-1), 2^i - 1].
    fn bucket_lower(upper: u64) -> u64 {
        match upper {
            0 | 1 => upper,
            _ => (upper >> 1) + 1,
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) of the observed
    /// values.
    ///
    /// Contract: the target rank is `q * (count - 1)` (0-based, so `q = 0`
    /// is the smallest observation's bucket and `q = 1` the largest's). The
    /// cumulative bucket counts locate the bucket holding that rank, and the
    /// estimate interpolates linearly between the bucket's lower and upper
    /// bound by the rank's fractional position inside the bucket. The result
    /// is therefore always within the correct power-of-two bucket — exact to
    /// the bucket, approximate inside it (buckets are ~2x wide, so the
    /// estimate is within 2x of the true quantile).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * (self.count - 1) as f64;
        let mut cum = 0u64;
        for &(upper, n) in &self.buckets {
            if (cum + n) as f64 > target {
                let lower = Self::bucket_lower(upper);
                let frac = (target - cum as f64) / n as f64;
                let est = lower as f64 + (upper - lower) as f64 * frac;
                return est.min(u64::MAX as f64) as u64;
            }
            cum += n;
        }
        self.buckets.last().map(|&(upper, _)| upper).unwrap_or(0)
    }

    /// Bucket-wise merge of snapshots from independent producers: counts and
    /// sums are added, buckets with equal upper bounds combined.
    pub fn merge(parts: &[HistogramSnapshot]) -> HistogramSnapshot {
        let mut buckets: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let mut count = 0u64;
        let mut sum = 0u64;
        for p in parts {
            count += p.count;
            sum = sum.wrapping_add(p.sum);
            for &(upper, n) in &p.buckets {
                *buckets.entry(upper).or_default() += n;
            }
        }
        HistogramSnapshot {
            count,
            sum,
            buckets: buckets.into_iter().collect(),
        }
    }
}

/// An immutable, deterministic view of a [`Telemetry`] bundle. Contains
/// no wall-time fields, so equal inputs yield equal snapshots — the
/// determinism tests compare these with `==` and byte-compare the JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Non-zero counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// All histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Events rendered as JSONL lines, in emission order.
    pub events: Vec<String>,
    pub events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Merges snapshots from independent producers (e.g. one per pipeline
    /// shard) into one combined view. Counters are summed, gauges
    /// max-merged (they track peaks), histograms merged bucket-wise with
    /// counts and sums added, `events_dropped` summed, and event lists
    /// concatenated in the order given — callers that need a specific
    /// global event order should arrange `parts` (or rewrite `events`)
    /// accordingly.
    pub fn merge(parts: &[TelemetrySnapshot]) -> TelemetrySnapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, (u64, u64, BTreeMap<u64, u64>)> = BTreeMap::new();
        let mut events = Vec::new();
        let mut events_dropped = 0u64;
        for p in parts {
            for (n, v) in &p.counters {
                *counters.entry(n.clone()).or_default() += v;
            }
            for (n, v) in &p.gauges {
                let g = gauges.entry(n.clone()).or_default();
                *g = (*g).max(*v);
            }
            for (n, h) in &p.histograms {
                let e = histograms
                    .entry(n.clone())
                    .or_insert_with(|| (0, 0, BTreeMap::new()));
                e.0 += h.count;
                e.1 += h.sum;
                for (upper, c) in &h.buckets {
                    *e.2.entry(*upper).or_default() += c;
                }
            }
            events.extend(p.events.iter().cloned());
            events_dropped += p.events_dropped;
        }
        TelemetrySnapshot {
            counters: counters.into_iter().filter(|(_, v)| *v > 0).collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms
                .into_iter()
                .map(|(n, (count, sum, buckets))| {
                    (
                        n,
                        HistogramSnapshot {
                            count,
                            sum,
                            buckets: buckets.into_iter().collect(),
                        },
                    )
                })
                .collect(),
            events,
            events_dropped,
        }
    }

    /// Value of a counter, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Renders the snapshot as one deterministic JSON document
    /// (`hilti.telemetry.v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"hilti.telemetry.v1\",\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", json::quote(n));
        }
        s.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v}", json::quote(n));
        }
        s.push_str("},\"histograms\":{");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":{{",
                json::quote(n),
                h.count,
                h.sum
            );
            for (j, (upper, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"le_{upper}\":{c}");
            }
            s.push_str("}}");
        }
        let _ = write!(
            s,
            "}},\"events_dropped\":{},\"events\":[",
            self.events_dropped
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(e);
        }
        s.push_str("]}");
        s
    }

    /// Number of captured events of the given kind.
    pub fn events_of_kind(&self, kind: &str) -> usize {
        let prefix = format!("{{\"event\":{}", json::quote(kind));
        self.events
            .iter()
            .filter(|e| {
                e.strip_prefix(&prefix)
                    .is_some_and(|rest| rest.starts_with(',') || rest.starts_with('}'))
            })
            .count()
    }

    /// The events as a JSONL document (one event per line).
    pub fn events_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(e);
            s.push('\n');
        }
        s
    }
}

/// Minimal hand-rolled JSON support: quoting and validation. The repo
/// deliberately takes no JSON dependency; emitters in `hiltic` and the
/// `repro` driver build documents by hand and self-check with
/// [`json::validate`].
pub mod json {
    /// Renders `s` as a quoted JSON string with all required escapes.
    pub fn quote(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Validates that `s` is exactly one well-formed JSON value. Returns
    /// a short error description on failure. This is a recognizer, not a
    /// parser — it builds no tree, which is all the artifact self-checks
    /// need.
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        skip_ws(b, &mut pos);
        value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, "true"),
            Some(b'f') => literal(b, pos, "false"),
            Some(b'n') => literal(b, pos, "null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos}", pos = *pos))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        if *pos == start {
            Err(format!("bad number at byte {start}"))
        } else {
            Ok(())
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // opening quote
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => *pos += 2,
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_owned())
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '{'
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {pos}", pos = *pos));
            }
            string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}", pos = *pos));
            }
            *pos += 1;
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '['
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_and_intern_once() {
        let reg = Registry::new();
        let a = reg.counter("pipeline.packets");
        let b = reg.counter("pipeline.packets");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter_value("pipeline.packets"), 4);
        assert_eq!(reg.counters(), vec![("pipeline.packets".to_owned(), 4)]);
        assert_eq!(reg.counter_value("missing"), 0);
    }

    #[test]
    fn gauges_track_peaks() {
        let reg = Registry::new();
        let g = reg.gauge("peak");
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(255);
        h.observe(256);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 512);
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (255, 1), (511, 1)]);
        h.observe(u64::MAX);
        assert_eq!(h.snapshot().buckets.last().unwrap().0, u64::MAX);
    }

    #[test]
    fn events_render_as_jsonl_in_order() {
        let t = Telemetry::new();
        t.emit(
            "flow_open",
            vec![("uid", "C1".into()), ("ts_ns", 5u64.into())],
        );
        t.emit(
            "quarantine",
            vec![("kind", "Hilti::ResourceExhausted".into())],
        );
        let snap = t.snapshot();
        assert_eq!(
            snap.events,
            vec![
                "{\"event\":\"flow_open\",\"uid\":\"C1\",\"ts_ns\":5}",
                "{\"event\":\"quarantine\",\"kind\":\"Hilti::ResourceExhausted\"}",
            ]
        );
        assert_eq!(snap.events_jsonl().lines().count(), 2);
    }

    #[test]
    fn snapshots_are_deterministic_and_comparable() {
        let mk = || {
            let t = Telemetry::new();
            t.counter("b").add(2);
            t.counter("a").inc();
            t.gauge("g").set_max(9);
            t.histogram("h").observe(100);
            t.emit("parser_error", vec![("uid", "C2".into())]);
            t.snapshot()
        };
        let (x, y) = (mk(), mk());
        assert_eq!(x, y);
        assert_eq!(x.to_json(), y.to_json());
        // Counters render sorted by name regardless of intern order.
        assert_eq!(x.counters, vec![("a".to_owned(), 1), ("b".to_owned(), 2)]);
        assert_eq!(x.counter("b"), 2);
        assert_eq!(x.gauge("g"), 9);
        json::validate(&x.to_json()).expect("snapshot JSON must validate");
    }

    #[test]
    fn zero_counters_are_elided() {
        let t = Telemetry::new();
        t.counter("never");
        t.counter("hit").inc();
        assert_eq!(t.snapshot().counters, vec![("hit".to_owned(), 1)]);
    }

    #[test]
    fn registry_reset_keeps_handles_valid() {
        let reg = Registry::new();
        let c = reg.counter("x");
        c.add(5);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(reg.counter_value("x"), 1);
    }

    #[test]
    fn sink_caps_and_counts_drops() {
        let sink = EventSink::new();
        for _ in 0..EVENT_CAP + 10 {
            sink.emit("e", vec![]);
        }
        assert_eq!(sink.len(), EVENT_CAP);
        assert_eq!(sink.dropped(), 10);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn sink_drop_counting_survives_concurrent_clones() {
        // Stress the overflow accounting: many threads hammer clones of one
        // sink well past EVENT_CAP; every emit must be either buffered or
        // counted as dropped, never lost.
        let sink = EventSink::new();
        let threads = 8usize;
        let per_thread = EVENT_CAP / 4; // 8 * cap/4 = 2x the cap in total
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let s = sink.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        s.emit("stress", vec![]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * per_thread) as u64;
        assert_eq!(sink.len(), EVENT_CAP);
        assert_eq!(sink.dropped(), total - EVENT_CAP as u64);
    }

    #[test]
    fn quantile_of_point_mass_stays_in_bucket() {
        let h = Histogram::default();
        for _ in 0..1000 {
            h.observe(100); // bucket [64, 127]
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((64..=127).contains(&v), "q={q} -> {v}");
        }
        assert_eq!(h.quantile(0.0), 64); // rank 0, no intra-bucket offset
    }

    #[test]
    fn quantile_splits_bimodal_distribution() {
        // 50 observations of 1, 50 of 1000 (bucket [512, 1023]).
        let h = Histogram::default();
        for _ in 0..50 {
            h.observe(1);
            h.observe(1000);
        }
        // Ranks 0..=49 live in the {1} bucket: p25 and even p50 (target rank
        // 49.5 is still inside the first bucket's cumulative range).
        assert_eq!(h.quantile(0.25), 1);
        assert_eq!(h.quantile(0.5), 1);
        // p75 and up land in the [512, 1023] bucket.
        for q in [0.75, 0.99] {
            let v = h.quantile(q);
            assert!((512..=1023).contains(&v), "q={q} -> {v}");
        }
    }

    #[test]
    fn quantile_is_monotone_and_bucket_exact_on_uniform() {
        let h = Histogram::default();
        for v in 0..1024u64 {
            h.observe(v);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // True p99 is ~1013; the estimate must land in its bucket.
        assert!((512..=1023).contains(&p99), "{p99}");
        // True p50 is ~511; buckets are power-of-two so the estimate may sit
        // in [256,511] or [512,1023].
        assert!((256..=1023).contains(&p50), "{p50}");
    }

    #[test]
    fn quantile_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0); // empty
        h.observe(0);
        h.observe(0);
        assert_eq!(h.quantile(1.0), 0); // zero bucket
        let single = Histogram::default();
        single.observe(u64::MAX);
        let v = single.quantile(0.5);
        assert!(v >= u64::MAX / 2); // top bucket, no overflow
    }

    #[test]
    fn histogram_snapshot_merge_combines_buckets() {
        let a = Histogram::default();
        a.observe(100);
        a.observe(3);
        let b = Histogram::default();
        b.observe(100);
        let m = HistogramSnapshot::merge(&[a.snapshot(), b.snapshot()]);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 203);
        assert!(m.buckets.contains(&(127, 2)), "{:?}", m.buckets);
        assert!(m.buckets.contains(&(3, 1)), "{:?}", m.buckets);
        // Quantiles work on merged snapshots.
        assert!((64..=127).contains(&m.quantile(1.0)));
    }

    #[test]
    fn events_since_reads_incrementally() {
        let sink = EventSink::new();
        sink.emit("a", vec![]);
        sink.emit("b", vec![]);
        assert_eq!(sink.events_since(1).len(), 1);
        assert_eq!(sink.events_since(1)[0].kind, "b");
        assert!(sink.events_since(2).is_empty());
        assert!(sink.events_since(99).is_empty());
        sink.emit("c", vec![]);
        assert_eq!(sink.events_since(2)[0].kind, "c");
    }

    #[test]
    fn snapshot_merge_sums_counters_maxes_gauges_merges_buckets() {
        let mk = |c: u64, g: u64, obs: &[u64]| {
            let t = Telemetry::new();
            t.counter("pipeline.packets").add(c);
            t.gauge("pipeline.peak").set_max(g);
            for &v in obs {
                t.histogram("pipeline.payload_bytes").observe(v);
            }
            t.emit("e", vec![("n", c.into())]);
            t.snapshot()
        };
        let a = mk(3, 10, &[1, 255]);
        let b = mk(4, 7, &[255, 300]);
        let m = TelemetrySnapshot::merge(&[a.clone(), b.clone()]);
        assert_eq!(m.counter("pipeline.packets"), 7);
        assert_eq!(m.gauge("pipeline.peak"), 10);
        let h = &m.histograms[0].1;
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 811);
        // Bucket (255, 1) from each part combines into (255, 2).
        assert!(h.buckets.contains(&(255, 2)), "{:?}", h.buckets);
        // Events concatenate in part order; drops sum.
        assert_eq!(m.events.len(), 2);
        assert_eq!(m.events_dropped, 0);
        // Merging one part is the identity.
        assert_eq!(TelemetrySnapshot::merge(&[a.clone()]), a);
        // Merge order does not affect the metric view.
        let m2 = TelemetrySnapshot::merge(&[b, a]);
        assert_eq!(m.counters, m2.counters);
        assert_eq!(m.gauges, m2.gauges);
        assert_eq!(m.histograms, m2.histograms);
    }

    #[test]
    fn snapshot_merge_of_nothing_is_default() {
        assert_eq!(TelemetrySnapshot::merge(&[]), TelemetrySnapshot::default());
    }

    #[test]
    fn json_quote_escapes() {
        assert_eq!(json::quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json::quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_validate_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "{\"a\":[1,2.5,-3,true,false,null],\"b\":{\"c\":\"d\"}}",
            "  42  ",
            "\"str\"",
        ] {
            json::validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in ["{", "{\"a\":}", "[1,]", "{\"a\":1} extra", "{'a':1}", ""] {
            assert!(json::validate(bad).is_err(), "{bad} should fail");
        }
    }
}
