//! Overlays: type-safe dissection of binary wire structures (§3.2, §4 BPF).
//!
//! An overlay describes the layout of a packet header — field names, byte
//! offsets, unpack formats, optional bit sub-ranges — and provides
//! transparent access to fields while "accounting for specifics such as
//! alignment and endianness" (Figure 4 shows the paper's `IP::Header`
//! overlay). This module implements the unpack primitives and an
//! [`OverlayType`] descriptor that the HILTI VM binds the `overlay.get`
//! instruction to; it is also used directly by the BPF host application.

use std::collections::HashMap;

use crate::addr::Addr;
use crate::bytestring::Bytes;
use crate::error::{RtError, RtResult};

/// How a field is decoded from raw bytes — HILTI's `unpack` formats.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnpackFormat {
    /// Unsigned integer, big-endian (network order), 1/2/4/8 bytes.
    UIntBE(u8),
    /// Unsigned integer, little-endian.
    UIntLE(u8),
    /// Big-endian integer restricted to bits `[lo, hi]` (inclusive,
    /// numbering from the least-significant bit of the decoded integer) —
    /// the `(4,7)` suffix in Figure 4.
    BitsBE { bytes: u8, lo: u8, hi: u8 },
    /// IPv4 address in network order (4 bytes).
    IPv4,
    /// IPv6 address in network order (16 bytes).
    IPv6,
    /// Fixed-length run of raw bytes.
    BytesRun(u32),
}

impl UnpackFormat {
    /// The number of input bytes the format consumes.
    pub fn width(&self) -> u32 {
        match self {
            UnpackFormat::UIntBE(n) | UnpackFormat::UIntLE(n) => u32::from(*n),
            UnpackFormat::BitsBE { bytes, .. } => u32::from(*bytes),
            UnpackFormat::IPv4 => 4,
            UnpackFormat::IPv6 => 16,
            UnpackFormat::BytesRun(n) => *n,
        }
    }
}

/// A decoded field value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Unpacked {
    UInt(u64),
    Addr(Addr),
    Bytes(Vec<u8>),
}

impl Unpacked {
    pub fn as_uint(&self) -> RtResult<u64> {
        match self {
            Unpacked::UInt(v) => Ok(*v),
            other => Err(RtError::type_error(format!("expected uint, got {other:?}"))),
        }
    }

    pub fn as_addr(&self) -> RtResult<Addr> {
        match self {
            Unpacked::Addr(a) => Ok(*a),
            other => Err(RtError::type_error(format!("expected addr, got {other:?}"))),
        }
    }

    pub fn as_bytes(&self) -> RtResult<&[u8]> {
        match self {
            Unpacked::Bytes(b) => Ok(b),
            other => Err(RtError::type_error(format!(
                "expected bytes, got {other:?}"
            ))),
        }
    }
}

/// Decodes one value at `offset` within `data` per `fmt`. All bounds are
/// validated; short input yields WouldBlock/IndexError via [`Bytes::extract`].
pub fn unpack(data: &Bytes, offset: u64, fmt: UnpackFormat) -> RtResult<Unpacked> {
    let raw = data.extract(offset, offset + u64::from(fmt.width()))?;
    unpack_slice(&raw, fmt)
}

/// Decodes from a plain slice (must be exactly the format's width or wider).
pub fn unpack_slice(raw: &[u8], fmt: UnpackFormat) -> RtResult<Unpacked> {
    let width = fmt.width() as usize;
    if raw.len() < width {
        return Err(RtError::index(format!(
            "unpack needs {width} bytes, have {}",
            raw.len()
        )));
    }
    let raw = &raw[..width];
    Ok(match fmt {
        UnpackFormat::UIntBE(n) => {
            if !matches!(n, 1 | 2 | 4 | 8) {
                return Err(RtError::value(format!("bad uint width {n}")));
            }
            let mut v: u64 = 0;
            for &b in raw {
                v = (v << 8) | u64::from(b);
            }
            Unpacked::UInt(v)
        }
        UnpackFormat::UIntLE(n) => {
            if !matches!(n, 1 | 2 | 4 | 8) {
                return Err(RtError::value(format!("bad uint width {n}")));
            }
            let mut v: u64 = 0;
            for &b in raw.iter().rev() {
                v = (v << 8) | u64::from(b);
            }
            Unpacked::UInt(v)
        }
        UnpackFormat::BitsBE { bytes, lo, hi } => {
            let max_bit = bytes * 8;
            if lo > hi || hi >= max_bit {
                return Err(RtError::value(format!("bad bit range ({lo},{hi})")));
            }
            let mut v: u64 = 0;
            for &b in raw {
                v = (v << 8) | u64::from(b);
            }
            let width = hi - lo + 1;
            let mask = if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            Unpacked::UInt((v >> lo) & mask)
        }
        UnpackFormat::IPv4 => Unpacked::Addr(Addr::from_v4_bytes([raw[0], raw[1], raw[2], raw[3]])),
        UnpackFormat::IPv6 => {
            let mut b = [0u8; 16];
            b.copy_from_slice(raw);
            Unpacked::Addr(Addr::from_v6_bytes(b))
        }
        UnpackFormat::BytesRun(_) => Unpacked::Bytes(raw.to_vec()),
    })
}

/// One field of an overlay: name, byte offset, and unpack format.
#[derive(Clone, Debug)]
pub struct OverlayField {
    pub name: String,
    pub offset: u64,
    pub format: UnpackFormat,
}

/// A user-definable composite type specifying the layout of a binary
/// structure in wire format (the paper's `overlay` type).
#[derive(Clone, Debug)]
pub struct OverlayType {
    pub name: String,
    fields: Vec<OverlayField>,
    by_name: HashMap<String, usize>,
}

impl OverlayType {
    pub fn new(name: impl Into<String>) -> Self {
        OverlayType {
            name: name.into(),
            fields: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Adds a field; duplicate names are rejected.
    pub fn field(
        mut self,
        name: impl Into<String>,
        offset: u64,
        format: UnpackFormat,
    ) -> RtResult<Self> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(RtError::value(format!(
                "duplicate overlay field {name:?} in {}",
                self.name
            )));
        }
        self.by_name.insert(name.clone(), self.fields.len());
        self.fields.push(OverlayField {
            name,
            offset,
            format,
        });
        Ok(self)
    }

    pub fn fields(&self) -> &[OverlayField] {
        &self.fields
    }

    /// Decodes the named field from `data` starting at `base` — the
    /// `overlay.get` instruction.
    pub fn get(&self, data: &Bytes, base: u64, field: &str) -> RtResult<Unpacked> {
        let idx = self.by_name.get(field).ok_or_else(|| {
            RtError::index(format!("overlay {} has no field {field:?}", self.name))
        })?;
        let f = &self.fields[*idx];
        unpack(data, base + f.offset, f.format)
    }

    /// The standard IPv4 header overlay from Figure 4 of the paper,
    /// extended with the remaining fixed-header fields.
    pub fn ipv4_header() -> OverlayType {
        OverlayType::new("IP::Header")
            .field(
                "version",
                0,
                UnpackFormat::BitsBE {
                    bytes: 1,
                    lo: 4,
                    hi: 7,
                },
            )
            .and_then(|o| {
                o.field(
                    "hdr_len",
                    0,
                    UnpackFormat::BitsBE {
                        bytes: 1,
                        lo: 0,
                        hi: 3,
                    },
                )
            })
            .and_then(|o| o.field("tos", 1, UnpackFormat::UIntBE(1)))
            .and_then(|o| o.field("len", 2, UnpackFormat::UIntBE(2)))
            .and_then(|o| o.field("id", 4, UnpackFormat::UIntBE(2)))
            .and_then(|o| o.field("ttl", 8, UnpackFormat::UIntBE(1)))
            .and_then(|o| o.field("proto", 9, UnpackFormat::UIntBE(1)))
            .and_then(|o| o.field("chksum", 10, UnpackFormat::UIntBE(2)))
            .and_then(|o| o.field("src", 12, UnpackFormat::IPv4))
            .and_then(|o| o.field("dst", 16, UnpackFormat::IPv4))
            .expect("static layout is valid")
    }

    /// UDP header overlay.
    pub fn udp_header() -> OverlayType {
        OverlayType::new("UDP::Header")
            .field("sport", 0, UnpackFormat::UIntBE(2))
            .and_then(|o| o.field("dport", 2, UnpackFormat::UIntBE(2)))
            .and_then(|o| o.field("len", 4, UnpackFormat::UIntBE(2)))
            .and_then(|o| o.field("chksum", 6, UnpackFormat::UIntBE(2)))
            .expect("static layout is valid")
    }

    /// TCP header overlay (fixed part).
    pub fn tcp_header() -> OverlayType {
        OverlayType::new("TCP::Header")
            .field("sport", 0, UnpackFormat::UIntBE(2))
            .and_then(|o| o.field("dport", 2, UnpackFormat::UIntBE(2)))
            .and_then(|o| o.field("seq", 4, UnpackFormat::UIntBE(4)))
            .and_then(|o| o.field("ack", 8, UnpackFormat::UIntBE(4)))
            .and_then(|o| {
                o.field(
                    "data_off",
                    12,
                    UnpackFormat::BitsBE {
                        bytes: 1,
                        lo: 4,
                        hi: 7,
                    },
                )
            })
            .and_then(|o| o.field("flags", 13, UnpackFormat::UIntBE(1)))
            .and_then(|o| o.field("window", 14, UnpackFormat::UIntBE(2)))
            .expect("static layout is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built IPv4 header: version 4, IHL 5, total len 40, TTL 64,
    /// proto TCP(6), src 192.168.1.1, dst 10.0.5.9.
    fn sample_ipv4() -> Bytes {
        let mut h = vec![
            0x45, 0x00, 0x00, 0x28, // ver/ihl, tos, len
            0x12, 0x34, 0x40, 0x00, // id, flags/frag
            0x40, 0x06, 0xab, 0xcd, // ttl, proto, checksum
            192, 168, 1, 1, // src
            10, 0, 5, 9, // dst
        ];
        h.extend_from_slice(&[0u8; 20]); // fake TCP header
        Bytes::frozen_from_slice(&h)
    }

    #[test]
    fn uint_be_le() {
        let b = Bytes::frozen_from_slice(&[0x01, 0x02, 0x03, 0x04]);
        assert_eq!(
            unpack(&b, 0, UnpackFormat::UIntBE(2)).unwrap(),
            Unpacked::UInt(0x0102)
        );
        assert_eq!(
            unpack(&b, 0, UnpackFormat::UIntLE(2)).unwrap(),
            Unpacked::UInt(0x0201)
        );
        assert_eq!(
            unpack(&b, 0, UnpackFormat::UIntBE(4)).unwrap(),
            Unpacked::UInt(0x01020304)
        );
        assert_eq!(
            unpack(&b, 2, UnpackFormat::UIntBE(1)).unwrap(),
            Unpacked::UInt(3)
        );
    }

    #[test]
    fn uint_widths_validated() {
        let b = Bytes::frozen_from_slice(&[0; 8]);
        assert!(unpack(&b, 0, UnpackFormat::UIntBE(3)).is_err());
        assert!(unpack(&b, 0, UnpackFormat::UIntLE(5)).is_err());
        assert!(unpack(&b, 0, UnpackFormat::UIntBE(8)).is_ok());
    }

    #[test]
    fn bits_subrange() {
        // 0x45 = version 4 (bits 4-7), IHL 5 (bits 0-3) — Figure 4's encoding.
        let b = Bytes::frozen_from_slice(&[0x45]);
        let version = unpack(
            &b,
            0,
            UnpackFormat::BitsBE {
                bytes: 1,
                lo: 4,
                hi: 7,
            },
        )
        .unwrap();
        let ihl = unpack(
            &b,
            0,
            UnpackFormat::BitsBE {
                bytes: 1,
                lo: 0,
                hi: 3,
            },
        )
        .unwrap();
        assert_eq!(version, Unpacked::UInt(4));
        assert_eq!(ihl, Unpacked::UInt(5));
    }

    #[test]
    fn bits_bad_ranges_rejected() {
        let b = Bytes::frozen_from_slice(&[0xff, 0xff]);
        assert!(unpack(
            &b,
            0,
            UnpackFormat::BitsBE {
                bytes: 1,
                lo: 5,
                hi: 3
            }
        )
        .is_err());
        assert!(unpack(
            &b,
            0,
            UnpackFormat::BitsBE {
                bytes: 1,
                lo: 0,
                hi: 8
            }
        )
        .is_err());
        assert!(unpack(
            &b,
            0,
            UnpackFormat::BitsBE {
                bytes: 2,
                lo: 0,
                hi: 15
            }
        )
        .is_ok());
    }

    #[test]
    fn addr_formats() {
        let b = Bytes::frozen_from_slice(&[192, 168, 1, 1]);
        assert_eq!(
            unpack(&b, 0, UnpackFormat::IPv4).unwrap(),
            Unpacked::Addr(Addr::v4(192, 168, 1, 1))
        );
        let mut v6 = [0u8; 16];
        v6[0] = 0x20;
        v6[1] = 0x01;
        v6[15] = 0x01;
        let b6 = Bytes::frozen_from_slice(&v6);
        let got = unpack(&b6, 0, UnpackFormat::IPv6)
            .unwrap()
            .as_addr()
            .unwrap();
        assert_eq!(got.to_string(), "2001::1");
    }

    #[test]
    fn bytes_run() {
        let b = Bytes::frozen_from_slice(b"abcdef");
        assert_eq!(
            unpack(&b, 1, UnpackFormat::BytesRun(3)).unwrap(),
            Unpacked::Bytes(b"bcd".to_vec())
        );
    }

    #[test]
    fn short_input_blocks_or_errors() {
        let open = Bytes::from_slice(&[1, 2]);
        assert_eq!(
            unpack(&open, 0, UnpackFormat::UIntBE(4)).unwrap_err().kind,
            crate::error::ExceptionKind::WouldBlock
        );
        open.freeze();
        assert_eq!(
            unpack(&open, 0, UnpackFormat::UIntBE(4)).unwrap_err().kind,
            crate::error::ExceptionKind::IndexError
        );
    }

    #[test]
    fn figure4_overlay_fields() {
        let overlay = OverlayType::ipv4_header();
        let pkt = sample_ipv4();
        assert_eq!(overlay.get(&pkt, 0, "version").unwrap(), Unpacked::UInt(4));
        assert_eq!(overlay.get(&pkt, 0, "hdr_len").unwrap(), Unpacked::UInt(5));
        assert_eq!(overlay.get(&pkt, 0, "ttl").unwrap(), Unpacked::UInt(64));
        assert_eq!(overlay.get(&pkt, 0, "proto").unwrap(), Unpacked::UInt(6));
        assert_eq!(
            overlay.get(&pkt, 0, "src").unwrap(),
            Unpacked::Addr(Addr::v4(192, 168, 1, 1))
        );
        assert_eq!(
            overlay.get(&pkt, 0, "dst").unwrap(),
            Unpacked::Addr(Addr::v4(10, 0, 5, 9))
        );
        assert!(overlay.get(&pkt, 0, "nonexistent").is_err());
    }

    #[test]
    fn overlay_with_base_offset() {
        // Same header, but prefixed by a 14-byte Ethernet header.
        let overlay = OverlayType::ipv4_header();
        let mut frame = vec![0u8; 14];
        frame.extend_from_slice(&sample_ipv4().to_vec());
        let pkt = Bytes::frozen_from_slice(&frame);
        assert_eq!(overlay.get(&pkt, 14, "version").unwrap(), Unpacked::UInt(4));
        assert_eq!(
            overlay.get(&pkt, 14, "src").unwrap(),
            Unpacked::Addr(Addr::v4(192, 168, 1, 1))
        );
    }

    #[test]
    fn duplicate_field_rejected() {
        let r = OverlayType::new("X")
            .field("a", 0, UnpackFormat::UIntBE(1))
            .and_then(|o| o.field("a", 1, UnpackFormat::UIntBE(1)));
        assert!(r.is_err());
    }

    #[test]
    fn tcp_and_udp_overlays() {
        let udp = OverlayType::udp_header();
        let data = Bytes::frozen_from_slice(&[0x00, 0x35, 0x04, 0xd2, 0x00, 0x10, 0x00, 0x00]);
        assert_eq!(udp.get(&data, 0, "sport").unwrap(), Unpacked::UInt(53));
        assert_eq!(udp.get(&data, 0, "dport").unwrap(), Unpacked::UInt(1234));

        let tcp = OverlayType::tcp_header();
        let mut th = vec![0u8; 20];
        th[0] = 0x00;
        th[1] = 0x50; // sport 80
        th[12] = 0x50; // data offset 5
        th[13] = 0x12; // SYN|ACK
        let data = Bytes::frozen_from_slice(&th);
        assert_eq!(tcp.get(&data, 0, "sport").unwrap(), Unpacked::UInt(80));
        assert_eq!(tcp.get(&data, 0, "data_off").unwrap(), Unpacked::UInt(5));
        assert_eq!(tcp.get(&data, 0, "flags").unwrap(), Unpacked::UInt(0x12));
    }
}
