//! Containers with built-in state management (§2 "State Management", §3.2).
//!
//! HILTI's maps and sets can be given an expiration policy
//! ([`ExpireStrategy`]): entries are evicted automatically once they have not
//! been created/accessed for a configured timeout, relative to the clock of
//! the timer manager the container is attached to. This is the mechanism the
//! paper's firewall example uses (`set.timeout dyn ExpireStrategy::Access
//! interval(300)`, Figure 5) and the foundation of every long-running
//! session table.
//!
//! Eviction is driven by `advance(now)`: the owner (a HILTI timer manager,
//! or the host directly) pushes the clock forward and the container drops
//! expired entries. Internally each container keeps a deadline-ordered queue
//! with lazy invalidation — re-touching an entry does not have to search the
//! queue, it just enqueues a fresh deadline and the stale one is discarded
//! when popped.

use std::cmp::Reverse;
use std::collections::hash_map::Entry as HmEntry;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

use crate::error::RtResult;
use crate::limits::AllocBudget;
use crate::time::{Interval, Time};

/// Flat per-entry overhead charged against an attached [`AllocBudget`],
/// approximating the hash-map slot plus one deadline-queue record.
const ENTRY_OVERHEAD: u64 = 48;

/// Bytes charged per live entry against an attached budget.
fn entry_cost<K, V>() -> u64 {
    (std::mem::size_of::<K>() + std::mem::size_of::<V>()) as u64 + ENTRY_OVERHEAD
}

/// When the expiration timeout for an entry restarts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpireStrategy {
    /// Timeout counts from entry creation; accesses do not refresh it.
    Create,
    /// Timeout counts from the most recent access (read or write).
    Access,
}

#[derive(Clone, Debug)]
struct Stamped<V> {
    value: V,
    /// Deadline currently considered authoritative for this entry.
    deadline: Time,
    /// Sequence number of the queue record carrying that deadline; stale
    /// queue records (from earlier touches) carry older numbers.
    stamp_seq: u64,
}

/// A hash map with optional per-entry expiration — HILTI's `map` type.
pub struct ExpiringMap<K, V> {
    entries: HashMap<K, Stamped<V>>,
    /// Deadline-ordered queue of (deadline, seq) records; `seq_keys` maps a
    /// record back to its key. Records whose seq no longer matches the
    /// entry's authoritative `stamp_seq` are stale and skipped on pop.
    queue: BinaryHeap<Reverse<(Time, u64)>>,
    seq_keys: HashMap<u64, K>,
    next_seq: u64,
    policy: Option<(ExpireStrategy, Interval)>,
    /// Entries evicted over the container's lifetime (observability; the
    /// paper stresses measuring state-management behaviour, §3.3).
    evicted: u64,
    /// Optional shared byte budget: live entries are charged a flat
    /// per-entry cost; removal/eviction/teardown credit it back.
    budget: Option<AllocBudget>,
}

impl<K: Eq + Hash + Clone, V> ExpiringMap<K, V> {
    /// A map without expiration (plain hash map semantics).
    pub fn new() -> Self {
        ExpiringMap {
            entries: HashMap::new(),
            queue: BinaryHeap::new(),
            seq_keys: HashMap::new(),
            next_seq: 0,
            policy: None,
            evicted: 0,
            budget: None,
        }
    }

    /// Bytes charged per live entry against an attached budget.
    fn entry_cost() -> u64 {
        entry_cost::<K, V>()
    }

    /// Attaches a shared byte budget; entries already present are charged
    /// (without enforcement) so accounting stays consistent.
    pub fn set_budget(&mut self, budget: AllocBudget) {
        if let Some(old) = self.budget.take() {
            old.credit(self.entries.len() as u64 * Self::entry_cost());
        }
        budget.charge_unchecked(self.entries.len() as u64 * Self::entry_cost());
        self.budget = Some(budget);
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<&AllocBudget> {
        self.budget.as_ref()
    }

    fn charge_entry(&self) -> RtResult<()> {
        match &self.budget {
            Some(b) => b.charge(Self::entry_cost()),
            None => Ok(()),
        }
    }

    fn credit_entries(&self, n: u64) {
        if let Some(b) = &self.budget {
            b.credit(n * Self::entry_cost());
        }
    }

    /// Sets the expiration policy, like `map.timeout` / `set.timeout`.
    /// Affects entries inserted or touched from now on.
    pub fn set_timeout(&mut self, strategy: ExpireStrategy, timeout: Interval) {
        self.policy = Some((strategy, timeout));
    }

    /// Clears the expiration policy; existing deadlines are forgotten.
    pub fn clear_timeout(&mut self) {
        self.policy = None;
        self.queue.clear();
        self.seq_keys.clear();
    }

    pub fn policy(&self) -> Option<(ExpireStrategy, Interval)> {
        self.policy
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries evicted by expiration so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Enqueues a fresh deadline record for `key`, returning
    /// (deadline, seq). With no policy, returns the never-expires sentinel.
    fn stamp(&mut self, key: &K, now: Time) -> (Time, u64) {
        match self.policy {
            Some((_, timeout)) => {
                let deadline = now + timeout;
                let seq = self.next_seq;
                self.next_seq += 1;
                self.queue.push(Reverse((deadline, seq)));
                self.seq_keys.insert(seq, key.clone());
                (deadline, seq)
            }
            None => (Time::from_nanos(u64::MAX), u64::MAX),
        }
    }

    /// Inserts or replaces; the entry's timeout (re)starts at `now`.
    ///
    /// An attached budget is charged for genuinely new keys but *not*
    /// enforced here; use [`ExpiringMap::try_insert`] on paths where
    /// growth must be capped.
    pub fn insert(&mut self, key: K, value: V, now: Time) -> Option<V> {
        if let Some(b) = &self.budget {
            if !self.entries.contains_key(&key) {
                b.charge_unchecked(Self::entry_cost());
            }
        }
        let (deadline, stamp_seq) = self.stamp(&key, now);
        self.entries
            .insert(
                key,
                Stamped {
                    value,
                    deadline,
                    stamp_seq,
                },
            )
            .map(|s| s.value)
    }

    /// Like [`ExpiringMap::insert`], but fails with
    /// `Hilti::ResourceExhausted` (leaving the map unchanged) when an
    /// attached budget cannot cover a new entry.
    pub fn try_insert(&mut self, key: K, value: V, now: Time) -> RtResult<Option<V>> {
        if !self.entries.contains_key(&key) {
            self.charge_entry()?;
        }
        let (deadline, stamp_seq) = self.stamp(&key, now);
        Ok(self
            .entries
            .insert(
                key,
                Stamped {
                    value,
                    deadline,
                    stamp_seq,
                },
            )
            .map(|s| s.value))
    }

    /// Reads an entry. Under [`ExpireStrategy::Access`] this refreshes the
    /// entry's deadline.
    pub fn get(&mut self, key: &K, now: Time) -> Option<&V> {
        let refresh = matches!(self.policy, Some((ExpireStrategy::Access, _)));
        if refresh && self.entries.contains_key(key) {
            let (deadline, stamp_seq) = self.stamp(key, now);
            if let Some(s) = self.entries.get_mut(key) {
                s.deadline = deadline;
                s.stamp_seq = stamp_seq;
            }
        }
        self.entries.get(key).map(|s| &s.value)
    }

    /// Mutable access; always counts as an access for the policy.
    pub fn get_mut(&mut self, key: &K, now: Time) -> Option<&mut V> {
        if matches!(self.policy, Some((ExpireStrategy::Access, _)))
            && self.entries.contains_key(key)
        {
            let (deadline, stamp_seq) = self.stamp(key, now);
            if let Some(s) = self.entries.get_mut(key) {
                s.deadline = deadline;
                s.stamp_seq = stamp_seq;
            }
        }
        self.entries.get_mut(key).map(|s| &mut s.value)
    }

    /// Membership test without refreshing the deadline (HILTI's
    /// `map.exists` does not count as an access).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts `default()` if missing, then returns mutable access.
    pub fn entry_or_insert_with(
        &mut self,
        key: K,
        now: Time,
        default: impl FnOnce() -> V,
    ) -> &mut V {
        let refresh = match self.policy {
            Some((ExpireStrategy::Access, _)) => true,
            Some((ExpireStrategy::Create, _)) => !self.entries.contains_key(&key),
            None => false,
        };
        let (deadline, stamp_seq) = if refresh {
            self.stamp(&key, now)
        } else {
            self.entries
                .get(&key)
                .map(|s| (s.deadline, s.stamp_seq))
                .unwrap_or((Time::from_nanos(u64::MAX), u64::MAX))
        };
        match self.entries.entry(key) {
            HmEntry::Occupied(o) => {
                let s = o.into_mut();
                if refresh {
                    s.deadline = deadline;
                    s.stamp_seq = stamp_seq;
                }
                &mut s.value
            }
            HmEntry::Vacant(v) => {
                if let Some(b) = &self.budget {
                    b.charge_unchecked(Self::entry_cost());
                }
                &mut v
                    .insert(Stamped {
                        value: default(),
                        deadline,
                        stamp_seq,
                    })
                    .value
            }
        }
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.entries.remove(key).map(|s| s.value);
        if removed.is_some() {
            self.credit_entries(1);
        }
        removed
    }

    /// Drops every entry whose deadline has passed, returning the evicted
    /// pairs (so callers can run cleanup hooks, as HILTI timers would).
    pub fn advance(&mut self, now: Time) -> Vec<(K, V)> {
        let mut out = Vec::new();
        while let Some(Reverse((deadline, _))) = self.queue.peek() {
            if *deadline > now {
                break;
            }
            let Reverse((_, seq)) = self.queue.pop().expect("peeked entry");
            let Some(key) = self.seq_keys.remove(&seq) else {
                continue;
            };
            // Only evict if this queue record is still the authoritative
            // one; otherwise the entry was refreshed or replaced since.
            let live = self.entries.get(&key).is_some_and(|s| s.stamp_seq == seq);
            if live {
                if let Some(s) = self.entries.remove(&key) {
                    self.evicted += 1;
                    out.push((key, s.value));
                }
            }
        }
        self.credit_entries(out.len() as u64);
        out
    }

    /// Iterates over live entries (no deadline refresh).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, s)| (k, &s.value))
    }

    /// Drains all entries, e.g. at shutdown.
    pub fn clear(&mut self) {
        self.credit_entries(self.entries.len() as u64);
        self.entries.clear();
        self.queue.clear();
        self.seq_keys.clear();
    }
}

impl<K, V> Drop for ExpiringMap<K, V> {
    fn drop(&mut self) {
        if let Some(b) = &self.budget {
            b.credit(self.entries.len() as u64 * entry_cost::<K, V>());
        }
    }
}

impl<K: Eq + Hash + Clone, V> Default for ExpiringMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> std::fmt::Debug for ExpiringMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ExpiringMap {{ len: {}, policy: {:?} }}",
            self.entries.len(),
            self.policy
        )
    }
}

/// A hash set with optional per-entry expiration — HILTI's `set` type.
///
/// Implemented as a thin wrapper over [`ExpiringMap`] with unit values, the
/// same way the paper's runtime implements sets over its hash map.
pub struct ExpiringSet<K> {
    map: ExpiringMap<K, ()>,
}

impl<K: Eq + Hash + Clone> ExpiringSet<K> {
    pub fn new() -> Self {
        ExpiringSet {
            map: ExpiringMap::new(),
        }
    }

    pub fn set_timeout(&mut self, strategy: ExpireStrategy, timeout: Interval) {
        self.map.set_timeout(strategy, timeout);
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn evicted(&self) -> u64 {
        self.map.evicted()
    }

    /// Attaches a shared byte budget (see [`ExpiringMap::set_budget`]).
    pub fn set_budget(&mut self, budget: AllocBudget) {
        self.map.set_budget(budget);
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<&AllocBudget> {
        self.map.budget()
    }

    /// Inserts a member; returns true if it was new.
    pub fn insert(&mut self, key: K, now: Time) -> bool {
        self.map.insert(key, (), now).is_none()
    }

    /// Budget-enforcing insert; see [`ExpiringMap::try_insert`].
    pub fn try_insert(&mut self, key: K, now: Time) -> RtResult<bool> {
        Ok(self.map.try_insert(key, (), now)?.is_none())
    }

    /// Membership test. Under `Access` strategy this *does* refresh the
    /// deadline — `set.exists` is the firewall's per-packet touch (Fig. 5).
    pub fn exists(&mut self, key: &K, now: Time) -> bool {
        self.map.get(key, now).is_some()
    }

    /// Membership test that never refreshes.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains(key)
    }

    pub fn remove(&mut self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }

    pub fn advance(&mut self, now: Time) -> Vec<K> {
        self.map.advance(now).into_iter().map(|(k, _)| k).collect()
    }

    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.map.iter().map(|(k, _)| k)
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl<K: Eq + Hash + Clone> Default for ExpiringSet<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K> std::fmt::Debug for ExpiringSet<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExpiringSet {{ len: {} }}", self.map.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> Time {
        Time::from_secs(s)
    }

    #[test]
    fn plain_map_never_expires() {
        let mut m = ExpiringMap::new();
        m.insert("k", 1, t(0));
        assert!(m.advance(t(1_000_000)).is_empty());
        assert_eq!(m.get(&"k", t(1_000_000)), Some(&1));
    }

    #[test]
    fn create_strategy_ignores_accesses() {
        let mut m = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Create, Interval::from_secs(10));
        m.insert("k", 1, t(0));
        // Touch repeatedly; the creation deadline must stand.
        for s in 1..=9 {
            assert_eq!(m.get(&"k", t(s)), Some(&1));
        }
        let evicted = m.advance(t(10));
        assert_eq!(evicted, vec![("k", 1)]);
        assert!(m.is_empty());
    }

    #[test]
    fn access_strategy_refreshes() {
        let mut m = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Access, Interval::from_secs(10));
        m.insert("k", 1, t(0));
        assert_eq!(m.get(&"k", t(8)), Some(&1)); // deadline now 18
        assert!(m.advance(t(12)).is_empty());
        assert_eq!(m.len(), 1);
        let evicted = m.advance(t(18));
        assert_eq!(evicted.len(), 1);
        assert_eq!(m.evicted(), 1);
    }

    #[test]
    fn reinsert_restarts_timeout() {
        let mut m = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Create, Interval::from_secs(10));
        m.insert("k", 1, t(0));
        m.insert("k", 2, t(5)); // new creation at t=5 → deadline 15
        assert!(m.advance(t(10)).is_empty());
        assert_eq!(m.advance(t(15)), vec![("k", 2)]);
    }

    #[test]
    fn remove_then_expire_is_silent() {
        let mut m = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Create, Interval::from_secs(10));
        m.insert("k", 1, t(0));
        assert_eq!(m.remove(&"k"), Some(1));
        assert!(m.advance(t(20)).is_empty());
        assert_eq!(m.evicted(), 0);
    }

    #[test]
    fn contains_does_not_refresh() {
        let mut m = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Access, Interval::from_secs(10));
        m.insert("k", 1, t(0));
        assert!(m.contains(&"k")); // at t≈0, but contains() takes no time
        assert_eq!(m.advance(t(10)).len(), 1);
    }

    #[test]
    fn entry_or_insert_with_policies() {
        let mut m = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Create, Interval::from_secs(10));
        *m.entry_or_insert_with("k", t(0), || 0) += 1;
        *m.entry_or_insert_with("k", t(5), || 0) += 1; // not a creation
        assert_eq!(m.get(&"k", t(5)), Some(&2));
        assert_eq!(m.advance(t(10)), vec![("k", 2)]);
    }

    #[test]
    fn set_access_touch_keeps_pair_alive() {
        // The firewall pattern from Figure 5: 300s inactivity timeout,
        // each matching packet refreshes the pair.
        let mut s = ExpiringSet::new();
        s.set_timeout(ExpireStrategy::Access, Interval::from_secs(300));
        s.insert(("a", "b"), t(0));
        for k in 1..10 {
            s.advance(t(k * 100));
            assert!(s.exists(&("a", "b"), t(k * 100)), "alive at {k}");
        }
        // Now go quiet for > 300s.
        assert_eq!(s.advance(t(10 * 100 + 301)).len(), 1);
        assert!(!s.contains(&("a", "b")));
    }

    #[test]
    fn set_insert_reports_novelty() {
        let mut s = ExpiringSet::new();
        assert!(s.insert(1, t(0)));
        assert!(!s.insert(1, t(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn eviction_order_is_deadline_order() {
        let mut m = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Create, Interval::from_secs(10));
        m.insert("a", 1, t(3));
        m.insert("b", 2, t(1));
        m.insert("c", 3, t(2));
        let evicted: Vec<_> = m.advance(t(100)).into_iter().map(|(k, _)| k).collect();
        assert_eq!(evicted, vec!["b", "c", "a"]);
    }

    #[test]
    fn budget_enforced_by_try_insert_and_credited_on_removal() {
        use crate::limits::AllocBudget;
        let cost = entry_cost::<u64, u64>();
        let budget = AllocBudget::with_limit(3 * cost);
        let mut m: ExpiringMap<u64, u64> = ExpiringMap::new();
        m.set_budget(budget.clone());
        for i in 0..3 {
            m.try_insert(i, i, t(0)).unwrap();
        }
        assert_eq!(budget.used(), 3 * cost);
        // Fourth entry exceeds the cap; map unchanged.
        assert!(m.try_insert(9, 9, t(0)).is_err());
        assert_eq!(m.len(), 3);
        // Replacing an existing key is not growth.
        m.try_insert(1, 100, t(0)).unwrap();
        // Removal frees room.
        m.remove(&0);
        assert_eq!(budget.used(), 2 * cost);
        m.try_insert(9, 9, t(0)).unwrap();
        drop(m);
        assert_eq!(budget.used(), 0, "drop credits live entries");
    }

    #[test]
    fn budget_credited_on_expiration_eviction() {
        use crate::limits::AllocBudget;
        let cost = entry_cost::<&str, u64>();
        let budget = AllocBudget::unlimited();
        let mut m: ExpiringMap<&str, u64> = ExpiringMap::new();
        m.set_budget(budget.clone());
        m.set_timeout(ExpireStrategy::Create, Interval::from_secs(10));
        m.insert("a", 1, t(0));
        m.insert("b", 2, t(5));
        assert_eq!(budget.used(), 2 * cost);
        assert_eq!(m.advance(t(10)).len(), 1);
        assert_eq!(budget.used(), cost);
        m.clear();
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn set_budget_adopts_existing_entries() {
        use crate::limits::AllocBudget;
        let cost = entry_cost::<u64, ()>();
        let mut s: ExpiringSet<u64> = ExpiringSet::new();
        s.insert(1, t(0));
        s.insert(2, t(0));
        let budget = AllocBudget::with_limit(2 * cost);
        s.set_budget(budget.clone());
        assert_eq!(budget.used(), 2 * cost);
        assert!(s.try_insert(3, t(0)).is_err());
        // Re-inserting an existing member is not growth and still succeeds.
        assert!(!s.try_insert(1, t(0)).unwrap());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn heavy_churn_does_not_leak_queue() {
        let mut m = ExpiringMap::new();
        m.set_timeout(ExpireStrategy::Access, Interval::from_secs(5));
        for i in 0..10_000u64 {
            m.insert(i % 100, i, t(i / 100));
            m.advance(t(i / 100));
        }
        assert!(m.len() <= 100);
        // Stale queue records get drained as time advances.
        m.advance(t(10_000));
        assert!(m.is_empty());
        assert!(m.queue.is_empty());
    }
}
