//! Runtime errors, mirroring HILTI's exception model (§3.2).
//!
//! HILTI instructions validate their operands and raise well-defined
//! exceptions instead of exhibiting undefined behaviour (§7 "Safe Execution
//! Environment"). At the runtime-library level every fallible operation
//! returns an [`RtError`] whose [`ExceptionKind`] corresponds to one of the
//! exception types the abstract machine exposes to programs (e.g.
//! `Hilti::IndexError` in Figure 5 of the paper).

use std::fmt;

/// The exception classes the HILTI runtime can raise.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExceptionKind {
    /// Lookup of a missing element (`Hilti::IndexError`).
    IndexError,
    /// Malformed value or operand (bad literal, bad conversion).
    ValueError,
    /// Arithmetic fault: division by zero, overflow in checked ops.
    ArithmeticError,
    /// Iterator moved outside its container or the container changed.
    InvalidIterator,
    /// `bytes` operation needed data past the frozen end of input.
    WouldBlock,
    /// Operation on a frozen/finalized object that forbids it.
    Frozen,
    /// Pattern-compilation or matching fault in the regexp engine.
    PatternError,
    /// Channel operation on a closed/empty channel that cannot proceed.
    ChannelError,
    /// Type-confusion detected at runtime (engine bug or unchecked input).
    TypeError,
    /// Resource exhaustion (e.g. container hit a hard size cap).
    ResourceExhausted,
    /// I/O failure in `file`/`iosrc` functionality.
    IoError,
    /// Generic runtime error raised by host applications.
    RuntimeError,
}

impl ExceptionKind {
    /// The HILTI-level name of the exception type, as programs see it.
    pub fn name(&self) -> &'static str {
        match self {
            ExceptionKind::IndexError => "Hilti::IndexError",
            ExceptionKind::ValueError => "Hilti::ValueError",
            ExceptionKind::ArithmeticError => "Hilti::ArithmeticError",
            ExceptionKind::InvalidIterator => "Hilti::InvalidIterator",
            ExceptionKind::WouldBlock => "Hilti::WouldBlock",
            ExceptionKind::Frozen => "Hilti::Frozen",
            ExceptionKind::PatternError => "Hilti::PatternError",
            ExceptionKind::ChannelError => "Hilti::ChannelError",
            ExceptionKind::TypeError => "Hilti::TypeError",
            ExceptionKind::ResourceExhausted => "Hilti::ResourceExhausted",
            ExceptionKind::IoError => "Hilti::IoError",
            ExceptionKind::RuntimeError => "Hilti::RuntimeError",
        }
    }
}

impl fmt::Display for ExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime error: an exception kind plus a human-readable message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RtError {
    pub kind: ExceptionKind,
    pub message: String,
}

impl RtError {
    pub fn new(kind: ExceptionKind, message: impl Into<String>) -> Self {
        RtError {
            kind,
            message: message.into(),
        }
    }

    pub fn index(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::IndexError, message)
    }

    pub fn value(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::ValueError, message)
    }

    pub fn arithmetic(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::ArithmeticError, message)
    }

    pub fn would_block() -> Self {
        Self::new(ExceptionKind::WouldBlock, "insufficient input")
    }

    pub fn frozen(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::Frozen, message)
    }

    pub fn pattern(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::PatternError, message)
    }

    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::TypeError, message)
    }

    pub fn io(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::IoError, message)
    }

    pub fn runtime(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::RuntimeError, message)
    }

    pub fn resource_exhausted(message: impl Into<String>) -> Self {
        Self::new(ExceptionKind::ResourceExhausted, message)
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for RtError {}

/// Convenience alias used throughout the runtime.
pub type RtResult<T> = Result<T, RtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = RtError::index("no such element");
        assert_eq!(e.to_string(), "Hilti::IndexError: no such element");
    }

    #[test]
    fn kind_names_are_namespaced() {
        assert_eq!(ExceptionKind::WouldBlock.name(), "Hilti::WouldBlock");
        assert_eq!(ExceptionKind::PatternError.name(), "Hilti::PatternError");
    }

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(RtError::would_block().kind, ExceptionKind::WouldBlock);
        assert_eq!(RtError::value("x").kind, ExceptionKind::ValueError);
        assert_eq!(RtError::io("x").kind, ExceptionKind::IoError);
    }
}
