//! Thread-safe channels for inter-thread communication (§3.2).
//!
//! HILTI's execution model forbids shared mutable state between virtual
//! threads; channels are the sanctioned way to exchange data. The runtime
//! *deep-copies all mutable data* on send "so that the sender will not see
//! any modifications that the receiver may make" — our [`Channel`] enforces
//! this by requiring the payload to implement [`DeepCopy`], applied on the
//! sending side.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::{ExceptionKind, RtError, RtResult};

/// Value-semantics duplication, applied when a value crosses a thread
/// boundary. For plain-old-data this is a clone; reference types (like
/// [`crate::Bytes`]) must produce an independent copy.
pub trait DeepCopy {
    fn deep_copy(&self) -> Self;
}

macro_rules! pod_deep_copy {
    ($($t:ty),* $(,)?) => {
        $(impl DeepCopy for $t {
            fn deep_copy(&self) -> Self { self.clone() }
        })*
    };
}

pod_deep_copy!(
    bool,
    u8,
    u16,
    u32,
    u64,
    i8,
    i16,
    i32,
    i64,
    usize,
    isize,
    f64,
    String,
    crate::addr::Addr,
    crate::addr::Network,
    crate::addr::Port,
    crate::time::Time,
    crate::time::Interval
);

impl DeepCopy for crate::bytestring::Bytes {
    fn deep_copy(&self) -> Self {
        crate::bytestring::Bytes::deep_copy(self)
    }
}

impl<T: DeepCopy> DeepCopy for Vec<T> {
    fn deep_copy(&self) -> Self {
        self.iter().map(DeepCopy::deep_copy).collect()
    }
}

impl<T: DeepCopy> DeepCopy for Option<T> {
    fn deep_copy(&self) -> Self {
        self.as_ref().map(DeepCopy::deep_copy)
    }
}

impl<A: DeepCopy, B: DeepCopy> DeepCopy for (A, B) {
    fn deep_copy(&self) -> Self {
        (self.0.deep_copy(), self.1.deep_copy())
    }
}

impl<A: DeepCopy, B: DeepCopy, C: DeepCopy> DeepCopy for (A, B, C) {
    fn deep_copy(&self) -> Self {
        (self.0.deep_copy(), self.1.deep_copy(), self.2.deep_copy())
    }
}

struct Shared<T> {
    queue: Mutex<ChanState<T>>,
    readable: Condvar,
    writable: Condvar,
}

struct ChanState<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    closed: bool,
}

/// A multi-producer multi-consumer FIFO channel with optional capacity.
///
/// Cloning the channel yields another handle to the same queue (HILTI's
/// `ref<channel<T>>` semantics).
pub struct Channel<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let q = self.shared.queue.lock();
        write!(
            f,
            "Channel {{ len: {}, closed: {} }}",
            q.items.len(),
            q.closed
        )
    }
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel {
            shared: self.shared.clone(),
        }
    }
}

impl<T: DeepCopy> Channel<T> {
    /// An unbounded channel (`capacity` 0 in HILTI means unbounded).
    pub fn unbounded() -> Self {
        Self::with_capacity(None)
    }

    /// A channel holding at most `cap` in-flight items; sends block beyond.
    pub fn bounded(cap: usize) -> Self {
        Self::with_capacity(Some(cap.max(1)))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        Channel {
            shared: Arc::new(Shared {
                queue: Mutex::new(ChanState {
                    items: VecDeque::new(),
                    capacity,
                    closed: false,
                }),
                readable: Condvar::new(),
                writable: Condvar::new(),
            }),
        }
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the channel: further sends fail; reads drain the remainder.
    pub fn close(&self) {
        let mut q = self.shared.queue.lock();
        q.closed = true;
        self.shared.readable.notify_all();
        self.shared.writable.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.shared.queue.lock().closed
    }

    /// Blocking send; deep-copies the value before enqueueing.
    pub fn write(&self, value: &T) -> RtResult<()> {
        let copy = value.deep_copy();
        let mut q = self.shared.queue.lock();
        loop {
            if q.closed {
                return Err(RtError::new(
                    ExceptionKind::ChannelError,
                    "write to closed channel",
                ));
            }
            match q.capacity {
                Some(cap) if q.items.len() >= cap => self.shared.writable.wait(&mut q),
                _ => break,
            }
        }
        q.items.push_back(copy);
        self.shared.readable.notify_one();
        Ok(())
    }

    /// Non-blocking send.
    pub fn try_write(&self, value: &T) -> RtResult<bool> {
        let mut q = self.shared.queue.lock();
        if q.closed {
            return Err(RtError::new(
                ExceptionKind::ChannelError,
                "write to closed channel",
            ));
        }
        if let Some(cap) = q.capacity {
            if q.items.len() >= cap {
                return Ok(false);
            }
        }
        q.items.push_back(value.deep_copy());
        self.shared.readable.notify_one();
        Ok(true)
    }

    /// Blocking receive; `Err(ChannelError)` once closed and drained.
    pub fn read(&self) -> RtResult<T> {
        let mut q = self.shared.queue.lock();
        loop {
            if let Some(item) = q.items.pop_front() {
                self.shared.writable.notify_one();
                return Ok(item);
            }
            if q.closed {
                return Err(RtError::new(
                    ExceptionKind::ChannelError,
                    "read from closed, drained channel",
                ));
            }
            self.shared.readable.wait(&mut q);
        }
    }

    /// Non-blocking receive.
    pub fn try_read(&self) -> RtResult<Option<T>> {
        let mut q = self.shared.queue.lock();
        if let Some(item) = q.items.pop_front() {
            self.shared.writable.notify_one();
            return Ok(Some(item));
        }
        if q.closed {
            return Err(RtError::new(
                ExceptionKind::ChannelError,
                "read from closed, drained channel",
            ));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytestring::Bytes;
    use std::thread;

    #[test]
    fn fifo_order() {
        let c = Channel::unbounded();
        for i in 0..10u64 {
            c.write(&i).unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(c.read().unwrap(), i);
        }
    }

    #[test]
    fn deep_copy_isolates_sender() {
        let c = Channel::unbounded();
        let b = Bytes::from_slice(b"abc");
        c.write(&b).unwrap();
        b.append(b"MORE").unwrap(); // mutate after send
        let received = c.read().unwrap();
        assert_eq!(received.to_vec(), b"abc");
        assert!(!received.same(&b));
    }

    #[test]
    fn bounded_try_write_fills_up() {
        let c = Channel::bounded(2);
        assert!(c.try_write(&1).unwrap());
        assert!(c.try_write(&2).unwrap());
        assert!(!c.try_write(&3).unwrap());
        assert_eq!(c.read().unwrap(), 1);
        assert!(c.try_write(&3).unwrap());
    }

    #[test]
    fn close_semantics() {
        let c = Channel::unbounded();
        c.write(&1).unwrap();
        c.close();
        assert!(c.write(&2).is_err());
        assert_eq!(c.read().unwrap(), 1); // drains remainder
        assert_eq!(c.read().unwrap_err().kind, ExceptionKind::ChannelError);
        assert!(c.try_read().is_err());
    }

    #[test]
    fn try_read_empty_open_channel() {
        let c = Channel::<u64>::unbounded();
        assert_eq!(c.try_read().unwrap(), None);
    }

    #[test]
    fn cross_thread_transfer() {
        let c = Channel::unbounded();
        let tx = c.clone();
        let producer = thread::spawn(move || {
            for i in 0..1000u64 {
                tx.write(&i).unwrap();
            }
            tx.close();
        });
        let mut sum = 0u64;
        while let Ok(v) = c.read() {
            sum += v;
        }
        producer.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn bounded_blocking_backpressure() {
        let c = Channel::bounded(4);
        let tx = c.clone();
        let producer = thread::spawn(move || {
            for i in 0..100u64 {
                tx.write(&i).unwrap(); // must block when full, not fail
            }
            tx.close();
        });
        let mut got = Vec::new();
        while let Ok(v) = c.read() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_consumers_partition_items() {
        let c = Channel::unbounded();
        for i in 0..100u64 {
            c.write(&i).unwrap();
        }
        c.close();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = c.clone();
                thread::spawn(move || {
                    let mut n = 0;
                    while rx.read().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
