//! Timers and timer managers (§3.2): schedule work for the future and
//! maintain multiple independent notions of time.
//!
//! A [`TimerMgr`] owns a virtual clock and a set of pending timers. Advancing
//! the clock (`timer_mgr.advance` in HILTI, driven e.g. by packet
//! timestamps) fires every timer whose deadline has passed, in deadline
//! order. The manager is generic over the payload `T`; the HILTI VM
//! instantiates it with "call this closure", containers instantiate it with
//! eviction records.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

use crate::time::Time;

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(u64);

#[derive(PartialEq, Eq)]
struct Entry<T> {
    deadline: Time,
    seq: u64,
    payload: T,
}

impl<T: Eq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest deadline first; FIFO among equal deadlines.
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

impl<T: Eq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A timer manager: a virtual clock plus a deadline-ordered queue of timers.
pub struct TimerMgr<T> {
    now: Time,
    heap: BinaryHeap<Reverse<Entry<T>>>,
    /// Sequence numbers of timers that are scheduled but have neither
    /// fired nor been cancelled. This is the authoritative liveness set:
    /// it makes `cancel` exact (cancelling an already-fired timer is a
    /// recognizable no-op, not a phantom tombstone) and `len` safe.
    pending: HashSet<u64>,
    /// Cancelled-but-still-heaped records, filtered lazily on pop.
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<T: Eq> TimerMgr<T> {
    /// A manager whose clock starts at the epoch.
    pub fn new() -> Self {
        TimerMgr {
            now: Time::ZERO,
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// The manager's current notion of time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of live (scheduled, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records physically on the heap, including cancelled
    /// tombstones awaiting lazy removal. Diagnostic: `heaped() - len()`
    /// is the tombstone count, bounded by `len() + 1` thanks to
    /// compaction in [`TimerMgr::cancel`].
    pub fn heaped(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `payload` to fire at `deadline`. Deadlines in the past fire
    /// on the next `advance` call (HILTI semantics: never synchronously).
    pub fn schedule(&mut self, deadline: Time, payload: T) -> TimerId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Reverse(Entry {
            deadline,
            seq,
            payload,
        }));
        TimerId(seq)
    }

    /// Cancels a pending timer. Cancelling an already-fired, already-
    /// cancelled, or unknown timer is a no-op returning `false`.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if !self.pending.remove(&id.0) {
            return false;
        }
        // The heap record stays until popped; mark it for lazy removal.
        self.cancelled.insert(id.0);
        // Tombstones with far deadlines are never popped, so repeated
        // schedule/cancel cycles (idle-timer re-arming does exactly this)
        // would grow the heap without bound. Compact once tombstones
        // outnumber live timers: each compaction is O(n) over a heap at
        // least half dead, so the cost is amortized O(1) per cancel.
        if self.cancelled.len() > self.pending.len() {
            self.compact();
        }
        true
    }

    /// Rebuilds the heap without cancelled records.
    fn compact(&mut self) {
        let cancelled = &mut self.cancelled;
        self.heap = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .filter(|Reverse(e)| !cancelled.remove(&e.seq))
            .collect();
        debug_assert!(
            cancelled.is_empty(),
            "every cancelled id has exactly one heap record"
        );
    }

    /// Moves the clock forward to `to` (never backwards) and returns the
    /// payloads of all timers that fired, in deadline order.
    pub fn advance(&mut self, to: Time) -> Vec<T> {
        if to > self.now {
            self.now = to;
        }
        let mut fired = Vec::new();
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.deadline > self.now {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked entry");
            if !self.cancelled.remove(&e.seq) {
                self.pending.remove(&e.seq);
                fired.push(e.payload);
            }
        }
        fired
    }

    /// The deadline of the next pending timer, if any.
    pub fn next_deadline(&mut self) -> Option<Time> {
        while let Some(Reverse(top)) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                let Reverse(e) = self.heap.pop().expect("peeked entry");
                self.cancelled.remove(&e.seq);
                continue;
            }
            return Some(top.deadline);
        }
        None
    }
}

impl<T: Eq> Default for TimerMgr<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for TimerMgr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TimerMgr {{ now: {}, pending: {} }}",
            self.now,
            self.pending.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Interval;

    #[test]
    fn fires_in_deadline_order() {
        let mut m = TimerMgr::new();
        m.schedule(Time::from_secs(30), "b");
        m.schedule(Time::from_secs(10), "a");
        m.schedule(Time::from_secs(50), "c");
        assert_eq!(m.advance(Time::from_secs(40)), vec!["a", "b"]);
        assert_eq!(m.advance(Time::from_secs(60)), vec!["c"]);
        assert!(m.is_empty());
    }

    #[test]
    fn fifo_among_equal_deadlines() {
        let mut m = TimerMgr::new();
        let t = Time::from_secs(5);
        m.schedule(t, 1);
        m.schedule(t, 2);
        m.schedule(t, 3);
        assert_eq!(m.advance(t), vec![1, 2, 3]);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut m = TimerMgr::<u32>::new();
        m.advance(Time::from_secs(100));
        m.advance(Time::from_secs(50));
        assert_eq!(m.now(), Time::from_secs(100));
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let mut m = TimerMgr::new();
        m.advance(Time::from_secs(100));
        m.schedule(Time::from_secs(10), "late");
        assert_eq!(m.advance(Time::from_secs(100)), vec!["late"]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut m = TimerMgr::new();
        let a = m.schedule(Time::from_secs(10), "a");
        m.schedule(Time::from_secs(10), "b");
        assert!(m.cancel(a));
        assert!(!m.cancel(a));
        assert_eq!(m.advance(Time::from_secs(10)), vec!["b"]);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut m = TimerMgr::new();
        let a = m.schedule(Time::from_secs(10), 1);
        m.schedule(Time::from_secs(20), 2);
        assert_eq!(m.len(), 2);
        m.cancel(a);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn next_deadline_skips_cancelled() {
        let mut m = TimerMgr::new();
        let a = m.schedule(Time::from_secs(10), 1);
        m.schedule(Time::from_secs(20), 2);
        m.cancel(a);
        assert_eq!(m.next_deadline(), Some(Time::from_secs(20)));
    }

    #[test]
    fn equal_deadline_firing_order_is_schedule_order() {
        // Regression: eviction order must be reproducible run-to-run.
        // Interleave two deadlines and verify strict FIFO within each.
        let mut m = TimerMgr::new();
        let t1 = Time::from_secs(10);
        let t2 = Time::from_secs(20);
        for i in 0..50u64 {
            m.schedule(if i % 2 == 0 { t2 } else { t1 }, i);
        }
        let first = m.advance(t1);
        assert_eq!(first, (0..50).filter(|i| i % 2 == 1).collect::<Vec<_>>());
        let second = m.advance(t2);
        assert_eq!(second, (0..50).filter(|i| i % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_after_fire_is_noop_and_len_stays_exact() {
        // Regression: cancelling an already-fired timer used to leave a
        // permanent tombstone that made len() underflow.
        let mut m = TimerMgr::new();
        let a = m.schedule(Time::from_secs(1), "a");
        assert_eq!(m.advance(Time::from_secs(1)), vec!["a"]);
        assert!(!m.cancel(a), "already fired");
        assert_eq!(m.len(), 0);
        m.schedule(Time::from_secs(2), "b");
        assert_eq!(m.len(), 1);
        assert_eq!(m.advance(Time::from_secs(2)), vec!["b"]);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn double_cancel_counts_once() {
        let mut m = TimerMgr::new();
        let a = m.schedule(Time::from_secs(5), 1);
        m.schedule(Time::from_secs(5), 2);
        assert!(m.cancel(a));
        assert!(!m.cancel(a));
        assert_eq!(m.len(), 1);
        assert_eq!(m.advance(Time::from_secs(5)), vec![2]);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn schedule_cancel_churn_keeps_heap_compact() {
        // Regression: cancelled-but-heaped tombstones were only dropped on
        // pop, so schedule/cancel cycles on far deadlines (idle-timer
        // re-arming) grew the heap without bound.
        let mut m = TimerMgr::new();
        let keeper = m.schedule(Time::from_secs(1_000_000), 0u64);
        for i in 1..=10_000u64 {
            let id = m.schedule(Time::from_secs(1_000_000), i);
            m.cancel(id);
        }
        assert_eq!(m.len(), 1);
        assert!(
            m.heaped() <= 3,
            "heap kept {} records for 1 live timer",
            m.heaped()
        );
        assert!(m.cancel(keeper));
        assert_eq!(m.heaped(), 0, "compaction drops the last tombstone");
        assert!(m.advance(Time::from_secs(2_000_000)).is_empty());
    }

    #[test]
    fn rearmed_payload_fires_once_at_new_deadline() {
        // Cancel + re-arm the same payload ("uid") at a later deadline:
        // advancing past the old deadline must not fire the cancelled
        // record, and the re-armed one fires exactly once — also when
        // compaction runs between cancel and re-arm.
        let mut m = TimerMgr::new();
        let old = m.schedule(Time::from_secs(10), "uid-1");
        assert!(m.cancel(old));
        m.schedule(Time::from_secs(30), "uid-1");
        assert_eq!(m.advance(Time::from_secs(10)), Vec::<&str>::new());
        assert_eq!(m.advance(Time::from_secs(30)), vec!["uid-1"]);
        assert_eq!(m.advance(Time::from_secs(100)), Vec::<&str>::new());
        assert_eq!(m.len(), 0);
        assert_eq!(m.heaped(), 0);
    }

    #[test]
    fn compaction_preserves_firing_order() {
        // Heavy churn interleaved with live timers must not disturb
        // deadline order or FIFO-within-deadline.
        let mut m = TimerMgr::new();
        let mut live = Vec::new();
        for i in 0..200u64 {
            let id = m.schedule(Time::from_secs(100 + (i % 7)), i);
            if i % 3 == 0 {
                live.push(i);
            } else {
                m.cancel(id);
            }
        }
        assert_eq!(m.len(), live.len());
        assert!(m.heaped() <= 2 * live.len() + 1);
        let fired = m.advance(Time::from_secs(200));
        let mut expected: Vec<u64> = live;
        expected.sort_by_key(|i| (100 + (i % 7), *i));
        assert_eq!(fired, expected);
    }

    #[test]
    fn many_timers_interleaved() {
        let mut m = TimerMgr::new();
        for i in 0..1000u64 {
            m.schedule(Time::from_secs(i % 97), i);
        }
        let mut t = Time::ZERO;
        let mut seen = Vec::new();
        for step in 0..100 {
            t += Interval::from_secs(1);
            let fired = m.advance(t);
            for f in &fired {
                assert!(f % 97 <= step + 1);
            }
            seen.extend(fired);
        }
        assert_eq!(seen.len(), 1000);
    }
}
