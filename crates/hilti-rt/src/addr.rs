//! Networking domain types: IP addresses, CIDR networks, transport ports.
//!
//! HILTI's `addr` type transparently supports both IPv4 and IPv6 (§3.2).
//! Internally we follow the same trick the paper's runtime uses: every
//! address is stored as a 128-bit value, with IPv4 addresses mapped into
//! `::ffff:0:0/96` so that ordering, hashing and masking work uniformly.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use crate::error::RtError;

/// An IP address; IPv4 and IPv6 handled transparently, as in HILTI's `addr`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(u128);

/// Offset of the IPv4-mapped range `::ffff:0:0/96` within the 128-bit space.
const V4_MAPPED_PREFIX: u128 = 0xffff_0000_0000u128;

impl Addr {
    /// Builds an IPv4 address from its four octets.
    pub fn v4(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(V4_MAPPED_PREFIX | u128::from(u32::from_be_bytes([a, b, c, d])))
    }

    /// Builds an IPv4 address from a host-order `u32`.
    pub fn from_v4_u32(raw: u32) -> Self {
        Addr(V4_MAPPED_PREFIX | u128::from(raw))
    }

    /// Builds an IPv6 address from a host-order `u128`.
    pub fn from_v6_u128(raw: u128) -> Self {
        Addr(raw)
    }

    /// Builds an address from the 16-byte network-order representation.
    pub fn from_v6_bytes(bytes: [u8; 16]) -> Self {
        Addr(u128::from_be_bytes(bytes))
    }

    /// Builds an IPv4 address from the 4-byte network-order representation.
    pub fn from_v4_bytes(bytes: [u8; 4]) -> Self {
        Addr::from_v4_u32(u32::from_be_bytes(bytes))
    }

    /// True if this address lies in the IPv4-mapped range.
    pub fn is_v4(&self) -> bool {
        (self.0 >> 32) == 0xffff && (self.0 >> 48) == 0
    }

    /// True for IPv6 (i.e. not IPv4-mapped).
    pub fn is_v6(&self) -> bool {
        !self.is_v4()
    }

    /// The raw 128-bit representation (IPv4 mapped into `::ffff:0:0/96`).
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// The IPv4 host-order value, if this is an IPv4 address.
    pub fn as_v4_u32(&self) -> Option<u32> {
        self.is_v4().then_some(self.0 as u32)
    }

    /// Masks the address, keeping the top `bits` bits. For IPv4 addresses
    /// `bits` counts from the top of the 32-bit value, as users expect
    /// (`mask(24)` on `10.0.5.1` yields `10.0.5.0`).
    pub fn mask(&self, bits: u8) -> Addr {
        let effective = if self.is_v4() {
            96 + u32::from(bits.min(32))
        } else {
            u32::from(bits.min(128))
        };
        if effective == 0 {
            // A /0 on IPv6; keep nothing.
            return Addr(0);
        }
        let keep = u128::MAX << (128 - effective);
        Addr(self.0 & keep)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v4) = self.as_v4_u32() {
            write!(f, "{}", Ipv4Addr::from(v4))
        } else {
            write!(f, "{}", Ipv6Addr::from(self.0))
        }
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Addr {
    type Err = RtError;

    fn from_str(s: &str) -> Result<Self, RtError> {
        if let Ok(v4) = s.parse::<Ipv4Addr>() {
            return Ok(Addr::from_v4_u32(u32::from(v4)));
        }
        if let Ok(v6) = s.parse::<Ipv6Addr>() {
            return Ok(Addr(u128::from(v6)));
        }
        Err(RtError::value(format!("invalid address literal: {s:?}")))
    }
}

/// A CIDR-style network mask, HILTI's `net` type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Network {
    prefix: Addr,
    /// Prefix length in the address family's own terms (0..=32 for IPv4,
    /// 0..=128 for IPv6).
    len: u8,
}

impl Network {
    /// Builds a network, normalizing the prefix by masking off host bits.
    pub fn new(prefix: Addr, len: u8) -> Result<Self, RtError> {
        let max = if prefix.is_v4() { 32 } else { 128 };
        if len > max {
            return Err(RtError::value(format!(
                "prefix length {len} exceeds maximum {max}"
            )));
        }
        Ok(Network {
            prefix: prefix.mask(len),
            len,
        })
    }

    /// The (masked) network prefix.
    pub fn prefix(&self) -> Addr {
        self.prefix
    }

    /// The prefix length.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True if the network is the family's default route (`/0`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test: does `addr` fall inside this network? Mixed-family
    /// comparisons are always false, matching HILTI semantics.
    pub fn contains(&self, addr: &Addr) -> bool {
        if addr.is_v4() != self.prefix.is_v4() {
            return false;
        }
        addr.mask(self.len) == self.prefix
    }

    /// A network matching a single host.
    pub fn host(addr: Addr) -> Self {
        let len = if addr.is_v4() { 32 } else { 128 };
        Network { prefix: addr, len }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.prefix, self.len)
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Network {
    type Err = RtError;

    fn from_str(s: &str) -> Result<Self, RtError> {
        match s.split_once('/') {
            Some((addr, len)) => {
                let addr: Addr = addr.trim().parse()?;
                let len: u8 = len
                    .trim()
                    .parse()
                    .map_err(|_| RtError::value(format!("bad prefix length in {s:?}")))?;
                Network::new(addr, len)
            }
            None => Ok(Network::host(s.trim().parse()?)),
        }
    }
}

/// Transport-layer protocol discriminator for [`Port`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Protocol {
    Tcp,
    Udp,
    Icmp,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Icmp => write!(f, "icmp"),
        }
    }
}

/// A transport-layer port, HILTI's `port` type: the number plus protocol
/// (`80/tcp`, `53/udp`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port {
    pub number: u16,
    pub protocol: Protocol,
}

impl Port {
    pub fn tcp(number: u16) -> Self {
        Port {
            number,
            protocol: Protocol::Tcp,
        }
    }

    pub fn udp(number: u16) -> Self {
        Port {
            number,
            protocol: Protocol::Udp,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.number, self.protocol)
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Port {
    type Err = RtError;

    fn from_str(s: &str) -> Result<Self, RtError> {
        let (num, proto) = s
            .split_once('/')
            .ok_or_else(|| RtError::value(format!("port literal needs proto: {s:?}")))?;
        let number: u16 = num
            .trim()
            .parse()
            .map_err(|_| RtError::value(format!("bad port number in {s:?}")))?;
        let protocol = match proto.trim() {
            "tcp" => Protocol::Tcp,
            "udp" => Protocol::Udp,
            "icmp" => Protocol::Icmp,
            other => return Err(RtError::value(format!("unknown protocol {other:?}"))),
        };
        Ok(Port { number, protocol })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_roundtrip_and_display() {
        let a = Addr::v4(192, 168, 1, 1);
        assert!(a.is_v4());
        assert!(!a.is_v6());
        assert_eq!(a.to_string(), "192.168.1.1");
        assert_eq!("192.168.1.1".parse::<Addr>().unwrap(), a);
    }

    #[test]
    fn v6_roundtrip_and_display() {
        let a: Addr = "2001:db8::1".parse().unwrap();
        assert!(a.is_v6());
        assert_eq!(a.to_string(), "2001:db8::1");
        assert_eq!(a.to_string().parse::<Addr>().unwrap(), a);
    }

    #[test]
    fn v4_mask_keeps_top_bits() {
        let a = Addr::v4(10, 0, 5, 77);
        assert_eq!(a.mask(24), Addr::v4(10, 0, 5, 0));
        assert_eq!(a.mask(16), Addr::v4(10, 0, 0, 0));
        assert_eq!(a.mask(32), a);
        assert_eq!(a.mask(0), Addr::v4(0, 0, 0, 0));
    }

    #[test]
    fn v4_mask_zero_stays_v4() {
        // Masking all bits away must not turn an IPv4 address into ::/0.
        assert!(Addr::v4(1, 2, 3, 4).mask(0).is_v4());
    }

    #[test]
    fn network_contains() {
        let n: Network = "10.0.5.0/24".parse().unwrap();
        assert!(n.contains(&Addr::v4(10, 0, 5, 200)));
        assert!(!n.contains(&Addr::v4(10, 0, 6, 1)));
        assert_eq!(n.to_string(), "10.0.5.0/24");
    }

    #[test]
    fn network_normalizes_host_bits() {
        let n: Network = "10.0.5.77/24".parse().unwrap();
        assert_eq!(n.prefix(), Addr::v4(10, 0, 5, 0));
    }

    #[test]
    fn network_rejects_bad_len() {
        assert!("10.0.0.0/33".parse::<Network>().is_err());
        assert!("2001:db8::/129".parse::<Network>().is_err());
        assert!("2001:db8::/64".parse::<Network>().is_ok());
    }

    #[test]
    fn network_family_mismatch_is_false() {
        let n: Network = "10.0.0.0/8".parse().unwrap();
        let v6: Addr = "2001:db8::1".parse().unwrap();
        assert!(!n.contains(&v6));
    }

    #[test]
    fn network_host_form() {
        let n: Network = "192.168.1.1".parse().unwrap();
        assert_eq!(n.len(), 32);
        assert!(n.contains(&Addr::v4(192, 168, 1, 1)));
        assert!(!n.contains(&Addr::v4(192, 168, 1, 2)));
    }

    #[test]
    fn v6_network() {
        let n: Network = "2001:db8::/32".parse().unwrap();
        assert!(n.contains(&"2001:db8:1::5".parse().unwrap()));
        assert!(!n.contains(&"2001:db9::1".parse().unwrap()));
    }

    #[test]
    fn port_parse_display() {
        let p: Port = "80/tcp".parse().unwrap();
        assert_eq!(p, Port::tcp(80));
        assert_eq!(p.to_string(), "80/tcp");
        let p: Port = "53/udp".parse().unwrap();
        assert_eq!(p, Port::udp(53));
        assert!("80".parse::<Port>().is_err());
        assert!("80/xyz".parse::<Port>().is_err());
    }

    #[test]
    fn addr_ordering_within_family() {
        assert!(Addr::v4(10, 0, 0, 1) < Addr::v4(10, 0, 0, 2));
        assert!(Addr::v4(9, 255, 255, 255) < Addr::v4(10, 0, 0, 0));
    }
}
