//! Hashing utilities: FNV-1a and 5-tuple flow hashing.
//!
//! HILTI's ID-based thread model "maps directly to hash-based load-balancing
//! schemes" (§3.2): to parallelize flow processing one hashes the flow's
//! 5-tuple into an integer and interprets it as a virtual-thread ID. The
//! hash must be *symmetric* in the endpoint pair so that both directions of
//! a connection land on the same thread — the property Suricata's and Bro's
//! flow hashing relies on.

use crate::addr::{Addr, Port};

/// 64-bit FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(data: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, data)
}

/// FNV-1a continuing from a previous state (for hashing in pieces).
pub fn fnv1a_continue(mut state: u64, data: &[u8]) -> u64 {
    for &b in data {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Hashes a flow 5-tuple symmetrically: `(a,pa) <-> (b,pb)` order does not
/// matter, so both directions of a connection map to the same value.
pub fn flow_hash(a: Addr, pa: Port, b: Addr, pb: Port) -> u64 {
    // Canonicalize endpoint order before hashing.
    let ((a1, p1), (a2, p2)) = if (a.raw(), pa.number) <= (b.raw(), pb.number) {
        ((a, pa), (b, pb))
    } else {
        ((b, pb), (a, pa))
    };
    let mut h = FNV_OFFSET;
    h = fnv1a_continue(h, &a1.raw().to_be_bytes());
    h = fnv1a_continue(h, &p1.number.to_be_bytes());
    h = fnv1a_continue(h, &a2.raw().to_be_bytes());
    h = fnv1a_continue(h, &p2.number.to_be_bytes());
    h = fnv1a_continue(h, &[p1.protocol as u8]);
    // FNV's low bits mix poorly for structured input; finalize with an
    // avalanche pass so `hash % n_threads` balances well.
    mix64(h)
}

/// SplitMix64 finalizer: full-avalanche mixing of a 64-bit value.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference values for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_continue_composes() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_continue(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn flow_hash_is_symmetric() {
        let a = Addr::v4(10, 0, 0, 1);
        let b = Addr::v4(192, 168, 1, 1);
        let h1 = flow_hash(a, Port::tcp(1234), b, Port::tcp(80));
        let h2 = flow_hash(b, Port::tcp(80), a, Port::tcp(1234));
        assert_eq!(h1, h2);
    }

    #[test]
    fn flow_hash_distinguishes_flows() {
        let a = Addr::v4(10, 0, 0, 1);
        let b = Addr::v4(192, 168, 1, 1);
        let h1 = flow_hash(a, Port::tcp(1234), b, Port::tcp(80));
        let h2 = flow_hash(a, Port::tcp(1235), b, Port::tcp(80));
        let h3 = flow_hash(a, Port::udp(1234), b, Port::udp(80));
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn flow_hash_spreads_over_buckets() {
        // Sanity: 10k distinct flows over 8 buckets should not collapse.
        let mut counts = [0usize; 8];
        for i in 0..10_000u32 {
            let a = Addr::from_v4_u32(0x0a00_0000 | i);
            let b = Addr::v4(192, 168, 0, 1);
            let h = flow_hash(a, Port::tcp(40000 + (i % 1000) as u16), b, Port::tcp(80));
            counts[(h % 8) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "bucket too empty: {counts:?}");
        }
    }
}
