//! File output (§3.2 `file`, §5 "Runtime Library").
//!
//! The paper's runtime serializes file writes from concurrent virtual
//! threads through a single manager; we achieve the same serialization with
//! an internal lock per file. [`LogFile`] additionally supports an in-memory
//! sink, which the evaluation harness uses to capture `http.log`-style
//! output for diffing without touching the filesystem.

use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{RtError, RtResult};

enum Sink {
    Memory(Vec<String>),
    Disk(fs::File),
}

/// A line-oriented output file, safe to share across threads.
#[derive(Clone)]
pub struct LogFile {
    name: String,
    sink: Arc<Mutex<Sink>>,
}

impl std::fmt::Debug for LogFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogFile({})", self.name)
    }
}

impl LogFile {
    /// A purely in-memory log (the default for tests and the repro harness).
    pub fn in_memory(name: impl Into<String>) -> Self {
        LogFile {
            name: name.into(),
            sink: Arc::new(Mutex::new(Sink::Memory(Vec::new()))),
        }
    }

    /// A log backed by a file on disk (truncates any existing file).
    pub fn on_disk(name: impl Into<String>, path: &Path) -> RtResult<Self> {
        let file = fs::File::create(path)
            .map_err(|e| RtError::io(format!("create {}: {e}", path.display())))?;
        Ok(LogFile {
            name: name.into(),
            sink: Arc::new(Mutex::new(Sink::Disk(file))),
        })
    }

    /// The logical log name (`http.log`, `dns.log`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one line (newline added automatically).
    pub fn write_line(&self, line: &str) -> RtResult<()> {
        let mut sink = self.sink.lock();
        match &mut *sink {
            Sink::Memory(lines) => {
                lines.push(line.to_owned());
                Ok(())
            }
            Sink::Disk(f) => {
                writeln!(f, "{line}").map_err(|e| RtError::io(format!("write {}: {e}", self.name)))
            }
        }
    }

    /// Lines captured so far (empty for disk-backed logs).
    pub fn lines(&self) -> Vec<String> {
        match &*self.sink.lock() {
            Sink::Memory(lines) => lines.clone(),
            Sink::Disk(_) => Vec::new(),
        }
    }

    /// Lines from index `start` on (in-memory sinks only). Incremental
    /// readers pair this with [`LogFile::len`] to avoid copying the whole
    /// log on every poll.
    pub fn lines_from(&self, start: usize) -> Vec<String> {
        match &*self.sink.lock() {
            Sink::Memory(lines) => lines[start.min(lines.len())..].to_vec(),
            Sink::Disk(_) => Vec::new(),
        }
    }

    /// Number of lines written (in-memory sinks only).
    pub fn len(&self) -> usize {
        match &*self.sink.lock() {
            Sink::Memory(lines) => lines.len(),
            Sink::Disk(_) => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears captured lines (in-memory sinks only).
    pub fn clear(&self) {
        if let Sink::Memory(lines) = &mut *self.sink.lock() {
            lines.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn memory_log_captures_lines() {
        let log = LogFile::in_memory("test.log");
        log.write_line("a\tb").unwrap();
        log.write_line("c\td").unwrap();
        assert_eq!(log.lines(), vec!["a\tb", "c\td"]);
        assert_eq!(log.len(), 2);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn clones_share_the_sink() {
        let log = LogFile::in_memory("x");
        let log2 = log.clone();
        log2.write_line("hello").unwrap();
        assert_eq!(log.lines(), vec!["hello"]);
    }

    #[test]
    fn concurrent_writers_do_not_interleave_lines() {
        let log = LogFile::in_memory("conc");
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let l = log.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        l.write_line(&format!("{t}:{i}")).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let lines = log.lines();
        assert_eq!(lines.len(), 400);
        // Every line is intact (no torn writes).
        for line in lines {
            let (t, i) = line.split_once(':').unwrap();
            assert!(t.parse::<u32>().unwrap() < 4);
            assert!(i.parse::<u32>().unwrap() < 100);
        }
    }

    #[test]
    fn disk_log_writes_file() {
        let dir = std::env::temp_dir().join("hilti_rt_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.log");
        let log = LogFile::on_disk("out.log", &path).unwrap();
        log.write_line("line1").unwrap();
        log.write_line("line2").unwrap();
        drop(log);
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "line1\nline2\n");
        std::fs::remove_file(&path).ok();
    }
}
