//! Resource governance: execution fuel, heap budgets, call-depth caps.
//!
//! The paper's pitch (§3.2, §7) is that the abstract machine makes traffic
//! analysis *safe by construction*: hostile input must not be able to wedge
//! the pipeline by spinning forever, growing state without bound, or
//! blowing the host stack. This module provides the shared vocabulary both
//! execution engines and all host applications use to enforce that:
//!
//! * [`ResourceLimits`] — a per-context configuration of the three caps.
//! * [`FuelMeter`] — a countdown of abstract execution steps; exhaustion
//!   raises the catchable `Hilti::ResourceExhausted` exception.
//! * [`AllocBudget`] — a shared byte budget charged by containers and byte
//!   strings on growth and credited on shrink/teardown, so per-flow state
//!   is capped and accounted.
//!
//! Fuel is charged in units of *IR-level execution*: one unit per body
//! instruction plus one per block terminator. The bytecode VM and the
//! tree-walking interpreter charge along the same schedule (the lowering
//! emits exactly one bytecode instruction per IR instruction plus one per
//! terminator; the fused compare-and-branch charges two), so a given
//! program exhausts a given fuel limit at the same observable point in
//! both engines — which the differential tests assert.

use std::cell::Cell;
use std::rc::Rc;

use crate::error::{RtError, RtResult};

/// Per-context execution limits. `None` means unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Abstract execution steps before `Hilti::ResourceExhausted`.
    pub fuel: Option<u64>,
    /// Cap on bytes held by budget-tracked containers and byte strings.
    pub max_heap_bytes: Option<u64>,
    /// Cap on the call stack depth (activation records).
    pub max_call_depth: Option<u32>,
    /// Wall-clock watchdog: execution armed with this must reach its next
    /// exit within the given number of milliseconds (measured from
    /// `set_limits`) or trip `Hilti::ResourceExhausted`. Unlike fuel —
    /// which bounds *work* — the deadline bounds *time*, catching wedged
    /// states that burn cheap instructions forever. Checked at fuel-charge
    /// points with an amortized clock read, so enforcement granularity is
    /// a few thousand instructions; `Some(0)` trips deterministically at
    /// the first check.
    pub deadline_ms: Option<u64>,
}

impl ResourceLimits {
    /// No limits at all — the default for contexts that never call
    /// `set_limits`.
    pub fn unlimited() -> Self {
        ResourceLimits::default()
    }
}

/// A countdown of abstract execution steps.
///
/// An unlimited meter carries `u64::MAX` units, which no realistic
/// execution can consume; the charge path is branch-predictable either
/// way, keeping governance nearly free on the fast path.
#[derive(Clone, Copy, Debug)]
pub struct FuelMeter {
    left: u64,
}

impl FuelMeter {
    pub fn new(limit: Option<u64>) -> Self {
        FuelMeter {
            left: limit.unwrap_or(u64::MAX),
        }
    }

    pub fn unlimited() -> Self {
        FuelMeter::new(None)
    }

    /// Consumes `cost` units; on exhaustion the meter pins to zero and
    /// every further charge fails too (execution cannot outrun its limit
    /// by catching the exception).
    #[inline]
    pub fn charge(&mut self, cost: u64) -> RtResult<()> {
        if self.left < cost {
            self.left = 0;
            return Err(RtError::resource_exhausted("execution fuel exhausted"));
        }
        self.left -= cost;
        Ok(())
    }

    /// Units remaining (meaningless for an unlimited meter).
    pub fn remaining(&self) -> u64 {
        self.left
    }

    /// Raw accessors for engines that keep the countdown in a local
    /// variable across a tight inner loop and write it back on exit.
    pub fn raw(&self) -> u64 {
        self.left
    }

    pub fn set_raw(&mut self, left: u64) {
        self.left = left;
    }
}

impl Default for FuelMeter {
    fn default() -> Self {
        FuelMeter::unlimited()
    }
}

struct BudgetInner {
    limit: Option<u64>,
    used: Cell<u64>,
    peak: Cell<u64>,
}

/// A shared byte budget. Cloning yields another handle onto the *same*
/// budget, so a flow's byte string and its session containers all draw
/// from one pool; dropping a tracked object credits its bytes back.
#[derive(Clone)]
pub struct AllocBudget {
    inner: Rc<BudgetInner>,
}

impl AllocBudget {
    pub fn unlimited() -> Self {
        AllocBudget {
            inner: Rc::new(BudgetInner {
                limit: None,
                used: Cell::new(0),
                peak: Cell::new(0),
            }),
        }
    }

    pub fn with_limit(limit: u64) -> Self {
        AllocBudget {
            inner: Rc::new(BudgetInner {
                limit: Some(limit),
                used: Cell::new(0),
                peak: Cell::new(0),
            }),
        }
    }

    /// Charges `n` bytes, failing with `Hilti::ResourceExhausted` when the
    /// charge would exceed the limit (usage is unchanged on failure).
    pub fn charge(&self, n: u64) -> RtResult<()> {
        let used = self.inner.used.get().saturating_add(n);
        if let Some(limit) = self.inner.limit {
            if used > limit {
                return Err(RtError::resource_exhausted(format!(
                    "heap budget exceeded: {used} of {limit} bytes"
                )));
            }
        }
        self.inner.used.set(used);
        if used > self.inner.peak.get() {
            self.inner.peak.set(used);
        }
        Ok(())
    }

    /// Records `n` bytes without enforcing the limit — used when adopting
    /// pre-existing state into a budget, so accounting stays consistent
    /// even if the adopted state is already over the cap.
    pub fn charge_unchecked(&self, n: u64) {
        let used = self.inner.used.get().saturating_add(n);
        self.inner.used.set(used);
        if used > self.inner.peak.get() {
            self.inner.peak.set(used);
        }
    }

    /// Returns `n` bytes to the budget.
    pub fn credit(&self, n: u64) {
        self.inner.used.set(self.inner.used.get().saturating_sub(n));
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.inner.used.get()
    }

    /// High-water mark of [`AllocBudget::used`].
    pub fn peak(&self) -> u64 {
        self.inner.peak.get()
    }

    pub fn limit(&self) -> Option<u64> {
        self.inner.limit
    }

    /// Do two handles share the same underlying budget?
    pub fn same(&self, other: &AllocBudget) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for AllocBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AllocBudget {{ used: {}, peak: {}, limit: {:?} }}",
            self.used(),
            self.peak(),
            self.limit()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExceptionKind;

    #[test]
    fn fuel_meter_counts_down_and_pins_at_zero() {
        let mut m = FuelMeter::new(Some(3));
        m.charge(2).unwrap();
        assert_eq!(m.remaining(), 1);
        let e = m.charge(2).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
        // Pinned: even a 1-unit charge now fails.
        assert!(m.charge(1).is_err());
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn unlimited_fuel_never_exhausts() {
        let mut m = FuelMeter::unlimited();
        for _ in 0..1000 {
            m.charge(u32::MAX as u64).unwrap();
        }
    }

    #[test]
    fn budget_charges_credits_and_tracks_peak() {
        let b = AllocBudget::with_limit(100);
        b.charge(60).unwrap();
        b.charge(40).unwrap();
        assert_eq!(b.used(), 100);
        let e = b.charge(1).unwrap_err();
        assert_eq!(e.kind, ExceptionKind::ResourceExhausted);
        assert_eq!(b.used(), 100, "failed charge must not change usage");
        b.credit(50);
        assert_eq!(b.used(), 50);
        b.charge(10).unwrap();
        assert_eq!(b.peak(), 100);
    }

    #[test]
    fn budget_is_shared_across_clones() {
        let a = AllocBudget::with_limit(10);
        let b = a.clone();
        a.charge(6).unwrap();
        assert!(b.charge(5).is_err());
        b.charge(4).unwrap();
        assert!(a.same(&b));
        assert!(!a.same(&AllocBudget::unlimited()));
    }

    #[test]
    fn unchecked_charge_can_exceed_limit() {
        let b = AllocBudget::with_limit(10);
        b.charge_unchecked(20);
        assert_eq!(b.used(), 20);
        assert!(b.charge(1).is_err());
        b.credit(15);
        b.charge(5).unwrap();
    }
}
