//! Profiling support (§3.3): measure where execution time goes.
//!
//! The paper instruments Bro to attribute CPU cycles to four components —
//! protocol parsing, script execution, HILTI-to-Bro glue, and "other" — and
//! plots the breakdown in Figures 9 and 10. [`Profiler`] reproduces that
//! attribution model: callers bracket work with [`Profiler::enter`] guards,
//! nesting is handled by charging inner spans to the inner component only,
//! and the result is a per-component total plus arbitrary named counters.
//!
//! We substitute `std::time::Instant` for the paper's PAPI cycle counters
//! (see DESIGN.md); the figures compare *relative* component shares, which
//! survive the substitution.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::telemetry::{Counter, Registry};

/// The component a span of work is attributed to — the four categories of
/// Figures 9/10.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Component {
    ProtocolParsing,
    ScriptExecution,
    Glue,
    Other,
}

impl Component {
    pub const ALL: [Component; 4] = [
        Component::ProtocolParsing,
        Component::ScriptExecution,
        Component::Glue,
        Component::Other,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Component::ProtocolParsing => "Protocol Parsing",
            Component::ScriptExecution => "Script Execution",
            Component::Glue => "HILTI-to-Bro Glue",
            Component::Other => "Other",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(Default)]
struct State {
    /// Nanoseconds charged per component.
    totals: HashMap<Component, u64>,
    /// Stack of (component, span start); the top is currently being charged.
    stack: Vec<(Component, Instant)>,
}

/// A component-attributing profiler, cheap enough to leave on.
///
/// The free-form named counters (allocations, events, cache hits, ...) are
/// backed by a [`telemetry::Registry`](crate::telemetry::Registry): interned
/// once, incremented via a relaxed atomic. The `&str` API below is a compat
/// shim; hot paths should hold a [`Counter`] handle from
/// [`Profiler::counter_handle`] instead.
#[derive(Clone, Default)]
pub struct Profiler {
    state: Arc<Mutex<State>>,
    counters: Registry,
}

/// RAII guard closing a span opened by [`Profiler::enter`].
pub struct Span {
    profiler: Profiler,
    /// Guards against double-close if mem::forget'ed patterns appear.
    closed: bool,
}

impl Profiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span attributed to `component`. While the span is open, time
    /// is charged to it; an enclosing span is paused (charged up to now) and
    /// resumes when this span closes.
    pub fn enter(&self, component: Component) -> Span {
        let now = Instant::now();
        let mut st = self.state.lock();
        if let Some((outer, started)) = st.stack.last_mut() {
            let outer = *outer;
            let elapsed = now.duration_since(*started).as_nanos() as u64;
            *started = now;
            *st.totals.entry(outer).or_default() += elapsed;
        }
        st.stack.push((component, now));
        Span {
            profiler: self.clone(),
            closed: false,
        }
    }

    fn exit(&self) {
        let now = Instant::now();
        let mut st = self.state.lock();
        if let Some((component, started)) = st.stack.pop() {
            let elapsed = now.duration_since(started).as_nanos() as u64;
            *st.totals.entry(component).or_default() += elapsed;
        }
        // Resume the enclosing span's clock.
        if let Some((_, started)) = st.stack.last_mut() {
            *started = now;
        }
    }

    /// Adds `n` to the named counter. Allocates only the first time a name
    /// is seen; prefer [`Profiler::counter_handle`] on hot paths to skip
    /// even the lookup.
    pub fn count(&self, name: &str, n: u64) {
        self.counters.counter(name).add(n);
    }

    /// Interns `name` and returns its live counter handle.
    pub fn counter_handle(&self, name: &str) -> Counter {
        self.counters.counter(name)
    }

    /// The registry backing the named counters.
    pub fn registry(&self) -> &Registry {
        &self.counters
    }

    /// Total nanoseconds charged to a component so far.
    pub fn total(&self, component: Component) -> u64 {
        self.state
            .lock()
            .totals
            .get(&component)
            .copied()
            .unwrap_or(0)
    }

    /// Value of a named counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.counter_value(name)
    }

    /// Snapshot of all component totals.
    pub fn snapshot(&self) -> Vec<(Component, u64)> {
        let st = self.state.lock();
        Component::ALL
            .iter()
            .map(|c| (*c, st.totals.get(c).copied().unwrap_or(0)))
            .collect()
    }

    /// Snapshot of all non-zero named counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters.counters()
    }

    /// Adds another profiler's component totals and named counters into
    /// this one — merging per-shard profilers after a parallel run. The
    /// other profiler must not share state with `self` (absorbing a clone
    /// of `self` would deadlock on the state mutex).
    pub fn absorb(&self, other: &Profiler) {
        debug_assert!(
            !Arc::ptr_eq(&self.state, &other.state),
            "absorbing a clone of self"
        );
        let other_totals = other.snapshot();
        let mut st = self.state.lock();
        for (c, ns) in other_totals {
            if ns > 0 {
                *st.totals.entry(c).or_default() += ns;
            }
        }
        drop(st);
        for (name, v) in other.counters.counters() {
            self.counters.counter(&name).add(v);
        }
    }

    /// Resets all measurements. Counter handles stay valid.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.totals.clear();
        st.stack.clear();
        drop(st);
        self.counters.reset();
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.profiler.exit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn charges_time_to_component() {
        let p = Profiler::new();
        {
            let _s = p.enter(Component::ProtocolParsing);
            spin(Duration::from_millis(5));
        }
        assert!(p.total(Component::ProtocolParsing) >= 4_000_000);
        assert_eq!(p.total(Component::ScriptExecution), 0);
    }

    #[test]
    fn nesting_charges_inner_to_inner() {
        let p = Profiler::new();
        {
            let _outer = p.enter(Component::ScriptExecution);
            spin(Duration::from_millis(3));
            {
                let _inner = p.enter(Component::Glue);
                spin(Duration::from_millis(6));
            }
            spin(Duration::from_millis(3));
        }
        let script = p.total(Component::ScriptExecution);
        let glue = p.total(Component::Glue);
        assert!(glue >= 5_000_000, "glue={glue}");
        assert!(script >= 4_000_000, "script={script}");
        // The inner time must not be double-charged to the outer span.
        assert!(script < 10_000_000, "script over-charged: {script}");
    }

    #[test]
    fn counters_accumulate() {
        let p = Profiler::new();
        p.count("allocations", 10);
        p.count("allocations", 5);
        p.count("events", 1);
        assert_eq!(p.counter("allocations"), 15);
        assert_eq!(p.counter("events"), 1);
        assert_eq!(p.counter("missing"), 0);
        assert_eq!(
            p.counters(),
            vec![("allocations".into(), 15), ("events".into(), 1)]
        );
    }

    #[test]
    fn snapshot_lists_all_components() {
        let p = Profiler::new();
        let snap = p.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.iter().all(|(_, ns)| *ns == 0));
    }

    #[test]
    fn reset_clears_everything() {
        let p = Profiler::new();
        {
            let _s = p.enter(Component::Other);
            spin(Duration::from_millis(1));
        }
        p.count("x", 1);
        p.reset();
        assert_eq!(p.total(Component::Other), 0);
        assert_eq!(p.counter("x"), 0);
    }

    #[test]
    fn counter_handles_bypass_the_string_api() {
        let p = Profiler::new();
        let h = p.counter_handle("events");
        h.add(3);
        p.count("events", 2);
        assert_eq!(p.counter("events"), 5);
        p.reset();
        h.inc(); // handle survives reset
        assert_eq!(p.counter("events"), 1);
    }

    #[test]
    fn clones_share_state() {
        let p = Profiler::new();
        let q = p.clone();
        q.count("shared", 2);
        assert_eq!(p.counter("shared"), 2);
    }

    #[test]
    fn absorb_sums_totals_and_counters() {
        let a = Profiler::new();
        let b = Profiler::new();
        {
            let _s = a.enter(Component::Glue);
            spin(Duration::from_millis(1));
        }
        {
            let _s = b.enter(Component::Glue);
            spin(Duration::from_millis(1));
        }
        a.count("events", 2);
        b.count("events", 3);
        b.count("only_b", 1);
        let glue_a = a.total(Component::Glue);
        let glue_b = b.total(Component::Glue);
        a.absorb(&b);
        assert_eq!(a.total(Component::Glue), glue_a + glue_b);
        assert_eq!(a.counter("events"), 5);
        assert_eq!(a.counter("only_b"), 1);
        // The absorbed profiler is untouched.
        assert_eq!(b.counter("events"), 3);
    }
}
