//! Bounded single-producer/single-consumer ring for batched hand-off.
//!
//! The parallel pipeline ships work from its dispatcher thread to each
//! shard through one of these rings: a fixed-capacity circular buffer
//! with wait-free push/pop on the fast path and condvar parking only when
//! the ring is full (backpressure) or empty (idle shard). Compared to an
//! unbounded MPMC channel this bounds memory, keeps the hot path free of
//! locks and allocation, and — because each endpoint is owned by exactly
//! one thread — needs no per-item CAS loops.
//!
//! Capacity is a hard bound: a producer pushing into a full ring blocks
//! until the consumer drains (or disappears). Closing the producer lets
//! the consumer drain whatever is still buffered before observing
//! end-of-stream, so no item is ever dropped on an orderly shutdown.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Pads a hot atomic to its own cache line so producer and consumer
/// indices don't false-share.
#[repr(align(64))]
struct CacheLine<T>(T);

struct RingInner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next index the consumer will read (monotonically increasing;
    /// slot = index % cap).
    head: CacheLine<AtomicUsize>,
    /// Next index the producer will write.
    tail: CacheLine<AtomicUsize>,
    /// Producer gone: the consumer drains the remainder, then sees EOF.
    tx_closed: AtomicBool,
    /// Consumer gone: further pushes are discarded instead of blocking.
    rx_closed: AtomicBool,
    prod_waiting: AtomicBool,
    cons_waiting: AtomicBool,
    lock: Mutex<()>,
    not_full: Condvar,
    not_empty: Condvar,
}

// Safety: only the Producer writes slots in [head, tail) transitions and
// only the Consumer reads them; the Release store on the index publishing
// a slot happens-before the Acquire load that observes it.
unsafe impl<T: Send> Sync for RingInner<T> {}
unsafe impl<T: Send> Send for RingInner<T> {}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        // Both endpoints are gone; indices are quiescent.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            unsafe { (*self.buf[i % self.cap].get()).assume_init_drop() };
        }
    }
}

/// Creates a bounded SPSC ring with room for `capacity` items (min 1).
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1);
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(RingInner {
        buf,
        cap,
        head: CacheLine(AtomicUsize::new(0)),
        tail: CacheLine(AtomicUsize::new(0)),
        tx_closed: AtomicBool::new(false),
        rx_closed: AtomicBool::new(false),
        prod_waiting: AtomicBool::new(false),
        cons_waiting: AtomicBool::new(false),
        lock: Mutex::new(()),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Producer {
            inner: inner.clone(),
            tail: 0,
        },
        Consumer { inner, head: 0 },
    )
}

/// The sending endpoint. Owned by exactly one thread; dropping it closes
/// the ring (the consumer drains the remainder, then sees end-of-stream).
pub struct Producer<T: Send> {
    inner: Arc<RingInner<T>>,
    /// Local copy of the tail index (only this endpoint advances it).
    tail: usize,
}

impl<T: Send> Producer<T> {
    /// Pushes one item, blocking while the ring is full. Returns `false`
    /// (dropping the item) if the consumer is gone.
    pub fn push(&mut self, item: T) -> bool {
        let r = &*self.inner;
        loop {
            if r.rx_closed.load(Ordering::Acquire) {
                return false;
            }
            let head = r.head.0.load(Ordering::Acquire);
            if self.tail - head < r.cap {
                unsafe { (*r.buf[self.tail % r.cap].get()).write(item) };
                self.tail += 1;
                r.tail.0.store(self.tail, Ordering::Release);
                if r.cons_waiting.load(Ordering::Relaxed) {
                    let _g = r.lock.lock().unwrap();
                    r.not_empty.notify_one();
                }
                return true;
            }
            // Full: park until the consumer drains. Re-check under the
            // lock so a pop between the load and the wait can't be lost.
            let mut g = r.lock.lock().unwrap();
            r.prod_waiting.store(true, Ordering::Relaxed);
            while self.tail - r.head.0.load(Ordering::Acquire) >= r.cap
                && !r.rx_closed.load(Ordering::Acquire)
            {
                g = r.not_full.wait(g).unwrap();
            }
            r.prod_waiting.store(false, Ordering::Relaxed);
        }
    }

    /// Pushes every item of `batch` (draining it), blocking as needed.
    /// Returns `false` if the consumer is gone (remaining items dropped).
    pub fn push_all(&mut self, batch: &mut Vec<T>) -> bool {
        for item in batch.drain(..) {
            if !self.push(item) {
                return false;
            }
        }
        true
    }

    /// Non-blocking, all-or-nothing variant of [`Producer::push_all`]:
    /// pushes the whole batch if the ring currently has room for every
    /// item, and otherwise returns `false` with `batch` untouched — the
    /// caller decides whether to retry, block, or shed the load. Also
    /// returns `false` (batch untouched) when the consumer is gone.
    ///
    /// The free-space check is safe without a retry loop: only the
    /// consumer advances `head`, so the observed room can only grow
    /// between the load and the writes.
    pub fn try_push_all(&mut self, batch: &mut Vec<T>) -> bool {
        let r = &*self.inner;
        if r.rx_closed.load(Ordering::Acquire) {
            return false;
        }
        let head = r.head.0.load(Ordering::Acquire);
        if r.cap - (self.tail - head) < batch.len() {
            return false;
        }
        for item in batch.drain(..) {
            unsafe { (*r.buf[self.tail % r.cap].get()).write(item) };
            self.tail += 1;
        }
        r.tail.0.store(self.tail, Ordering::Release);
        if r.cons_waiting.load(Ordering::Relaxed) {
            let _g = r.lock.lock().unwrap();
            r.not_empty.notify_one();
        }
        true
    }

    /// Closes the ring: the consumer drains buffered items, then sees
    /// end-of-stream. Equivalent to dropping the producer.
    pub fn close(self) {}
}

impl<T: Send> Drop for Producer<T> {
    fn drop(&mut self) {
        let r = &*self.inner;
        let _g = r.lock.lock().unwrap();
        r.tx_closed.store(true, Ordering::Release);
        r.not_empty.notify_all();
    }
}

/// The receiving endpoint. Owned by exactly one thread.
pub struct Consumer<T: Send> {
    inner: Arc<RingInner<T>>,
    /// Local copy of the head index (only this endpoint advances it).
    head: usize,
}

impl<T: Send> Consumer<T> {
    /// Pops up to `max` items into `out`, blocking while the ring is
    /// empty and the producer still lives. Returns the number of items
    /// appended; 0 means the producer closed and the ring is drained.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let r = &*self.inner;
        loop {
            let tail = r.tail.0.load(Ordering::Acquire);
            let avail = tail - self.head;
            if avail > 0 {
                let k = avail.min(max.max(1));
                for i in 0..k {
                    let slot = (self.head + i) % r.cap;
                    out.push(unsafe { (*r.buf[slot].get()).assume_init_read() });
                }
                self.head += k;
                r.head.0.store(self.head, Ordering::Release);
                if r.prod_waiting.load(Ordering::Relaxed) {
                    let _g = r.lock.lock().unwrap();
                    r.not_full.notify_one();
                }
                return k;
            }
            if r.tx_closed.load(Ordering::Acquire) {
                return 0;
            }
            let mut g = r.lock.lock().unwrap();
            r.cons_waiting.store(true, Ordering::Relaxed);
            while r.tail.0.load(Ordering::Acquire) == self.head
                && !r.tx_closed.load(Ordering::Acquire)
            {
                g = r.not_empty.wait(g).unwrap();
            }
            r.cons_waiting.store(false, Ordering::Relaxed);
        }
    }

    /// Items currently buffered (an instantaneous snapshot).
    pub fn len(&self) -> usize {
        self.inner.tail.0.load(Ordering::Acquire) - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.cap
    }
}

impl<T: Send> Drop for Consumer<T> {
    fn drop(&mut self) {
        let r = &*self.inner;
        let _g = r.lock.lock().unwrap();
        r.rx_closed.store(true, Ordering::Release);
        r.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (mut tx, mut rx) = ring::<u32>(8);
        for i in 0..5 {
            assert!(tx.push(i));
        }
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 16), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wraps_around_a_small_ring_many_times() {
        // Capacity 4, 1000 items: indices wrap the buffer 250 times and
        // occupancy may never exceed the capacity.
        let (mut tx, mut rx) = ring::<usize>(4);
        let h = std::thread::spawn(move || {
            for i in 0..1000 {
                assert!(tx.push(i));
            }
        });
        let mut got = Vec::new();
        let mut buf = Vec::new();
        loop {
            assert!(rx.len() <= rx.capacity(), "occupancy exceeded capacity");
            buf.clear();
            if rx.pop_batch(&mut buf, 3) == 0 {
                break;
            }
            got.extend_from_slice(&buf);
        }
        h.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn full_ring_backpressures_until_consumer_drains() {
        // Capacity 1: the producer cannot run ahead; every push after the
        // first must wait for the matching pop. Completion (join) proves
        // the blocked pushes were woken rather than lost.
        let (mut tx, mut rx) = ring::<u8>(1);
        let h = std::thread::spawn(move || {
            for b in [b'a', b'b', b'c', b'd'] {
                assert!(tx.push(b));
            }
        });
        let mut out = Vec::new();
        while rx.pop_batch(&mut out, 1) != 0 {}
        h.join().unwrap();
        assert_eq!(out, b"abcd");
    }

    #[test]
    fn shutdown_drains_buffered_items_then_reports_eof() {
        let (mut tx, mut rx) = ring::<u32>(8);
        let mut batch = vec![1, 2, 3, 4, 5];
        assert!(tx.push_all(&mut batch));
        assert!(batch.is_empty());
        tx.close();
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 2), 2);
        assert_eq!(rx.pop_batch(&mut out, 100), 3);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(rx.pop_batch(&mut out, 100), 0, "EOF after drain");
        assert_eq!(rx.pop_batch(&mut out, 100), 0, "EOF is sticky");
    }

    #[test]
    fn close_wakes_a_consumer_blocked_on_empty() {
        let (tx, mut rx) = ring::<u32>(4);
        let h = std::thread::spawn(move || {
            let mut out = Vec::new();
            rx.pop_batch(&mut out, 8)
        });
        // Give the consumer a moment to park, then close.
        std::thread::yield_now();
        drop(tx);
        assert_eq!(h.join().unwrap(), 0);
    }

    #[test]
    fn dead_consumer_unblocks_producer() {
        let (mut tx, rx) = ring::<u32>(1);
        assert!(tx.push(1));
        let h = std::thread::spawn(move || tx.push(2)); // blocks: ring full
        std::thread::yield_now();
        drop(rx);
        assert!(!h.join().unwrap(), "push reports the dead consumer");
    }

    #[test]
    fn try_push_all_is_all_or_nothing_on_a_saturated_ring() {
        // A stalled consumer leaves the ring full: the non-blocking push
        // must refuse without blocking and without consuming the batch.
        let (mut tx, mut rx) = ring::<u32>(4);
        let mut batch = vec![1, 2, 3];
        assert!(tx.try_push_all(&mut batch));
        assert!(batch.is_empty());
        let mut batch = vec![4, 5];
        assert!(!tx.try_push_all(&mut batch), "only one free slot for two");
        assert_eq!(batch, vec![4, 5], "refused batch must be untouched");
        let mut one = vec![4];
        assert!(tx.try_push_all(&mut one), "exactly-fits batch is accepted");
        // Consumer resumes: draining frees room and the refused batch fits.
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 4), 4);
        assert!(tx.try_push_all(&mut batch));
        drop(tx);
        out.clear();
        assert_eq!(rx.pop_batch(&mut out, 8), 2);
        assert_eq!(out, vec![4, 5]);
    }

    #[test]
    fn push_all_makes_partial_progress_under_a_slow_consumer() {
        // push_all drains item by item: with a capacity-2 ring and a
        // consumer that pops one item at a time with a pause, the producer
        // is repeatedly blocked mid-batch and must resume where it left
        // off, preserving order end to end.
        let (mut tx, mut rx) = ring::<usize>(2);
        let h = std::thread::spawn(move || {
            let mut batch: Vec<usize> = (0..64).collect();
            assert!(tx.push_all(&mut batch));
            assert!(batch.is_empty(), "push_all drains everything it sent");
        });
        let mut got = Vec::new();
        let mut buf = Vec::new();
        loop {
            // A slow consumer: one item per pop, with a yield between pops
            // so the producer experiences a full ring most of the time.
            std::thread::yield_now();
            buf.clear();
            if rx.pop_batch(&mut buf, 1) == 0 {
                break;
            }
            got.extend_from_slice(&buf);
        }
        h.join().unwrap();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn producer_blocked_on_full_wakes_when_consumer_resumes() {
        // The producer parks on a full ring while the consumer stalls;
        // a pop after the stall must wake it (join proves the wakeup).
        let (mut tx, mut rx) = ring::<u8>(1);
        assert!(tx.push(1));
        let h = std::thread::spawn(move || tx.push(2));
        // Stall the consumer long enough for the producer to park.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 1), 1);
        assert!(h.join().unwrap(), "blocked push completed after resume");
        assert_eq!(rx.pop_batch(&mut out, 1), 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn try_push_all_reports_dead_consumer_without_consuming() {
        let (mut tx, rx) = ring::<u32>(8);
        drop(rx);
        let mut batch = vec![1, 2, 3];
        assert!(!tx.try_push_all(&mut batch));
        assert_eq!(batch, vec![1, 2, 3]);
    }

    #[test]
    fn remaining_items_are_dropped_exactly_once() {
        // Leak check via Arc counts: items still in the ring when both
        // endpoints drop must be released by the ring's own Drop.
        let probe = Arc::new(());
        let (mut tx, rx) = ring::<Arc<()>>(8);
        for _ in 0..5 {
            assert!(tx.push(probe.clone()));
        }
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&probe), 1);
    }
}
