#!/usr/bin/env bash
# Soak gate: sustained-load robustness for the parallel pipeline.
#
# Runs the `soak` harness (crates/bench/src/bin/soak.rs): waves of fresh
# synthetic HTTP/DNS flows through the flow-sharded pipeline, asserting
# zero effect loss, zero shard faults, zero shedding under `Block`, a
# bounded per-flow parser heap, and a flat live-heap baseline across
# waves (leak check). The harness exits non-zero on any violation.
#
#   scripts/soak.sh --smoke     # CI profile: ~60k flows, 60 s box
#   scripts/soak.sh             # full profile: ~1M flows, 600 s box
#
# Extra arguments are passed straight to the harness (see `soak --help`
# output for --flows/--wave/--workers/--proto/--shed/--deadline-ms).
#
# Offline mirrors that stub the workspace dependencies (stubs/ in the
# manifest) skip: soak numbers only mean something against the real
# dependency set.

set -euo pipefail
cd "$(dirname "$0")/.."

if grep -q 'path = "stubs/' Cargo.toml; then
    echo "soak: SKIP (stubbed workspace detected)"
    exit 0
fi

out=target/soak-summary.json
cargo build -q --release -p bench --bin soak
./target/release/soak --out "$out" "$@"
echo "soak: summary written to $out"
