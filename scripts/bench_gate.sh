#!/usr/bin/env bash
# Bench-regression gate: measures the dispatch/pipeline/telemetry suites
# and compares them against the committed BENCH_*.json baselines
# (schema hilti.bench.v1). Fails on a >15% regression of a benchmark's
# best-of-samples time, warns on >5%.
#
# Runs identically in CI (the bench-regression job) and locally:
#
#   scripts/bench_gate.sh            compare against committed baselines
#   scripts/bench_gate.sh --update   re-measure and rewrite the baselines
#   scripts/bench_gate.sh --test     smoke run (tiny sizes, no comparison)
#
# Refresh baselines (--update) on a quiet machine only, and commit the
# resulting BENCH_*.json alongside the change that moved the numbers.
# Measured documents are also written to target/bench-gate/ so CI can
# upload them as artifacts.

set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo bench -q -p bench --bench gate -- "$@"
