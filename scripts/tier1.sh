#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   build (release)  — the artifacts the benchmarks run against
#   test             — unit + integration suites across the workspace
#   clippy           — lint wall; warnings are errors
#   repro smoke      — fig9/fig10 JSON artifacts regenerate and validate
#   bench smoke      — telemetry-overhead bench compiles and runs (test mode)
#
# The example/repro/bench steps need the real dev-dependencies; offline
# mirrors that stub them out (stubs/ in the workspace manifest) stop
# after the core build/test/clippy/parallel gates.
#
# Usage: scripts/tier1.sh [extra cargo args, e.g. --offline]

set -euo pipefail
cd "$(dirname "$0")/.."

# Propagate the tier ladder level to every test and smoke run below: the
# differential suites and the http_analyzer example read HILTI_TIERING
# (TieringMode::from_env), so `HILTI_TIERING=threaded scripts/tier1.sh`
# drives the whole gate at one tier. Exported explicitly so the setting
# survives into cargo's child processes even when passed inline.
export HILTI_TIERING="${HILTI_TIERING:-}"
if [ -n "$HILTI_TIERING" ]; then
    echo "tier1: running with HILTI_TIERING=$HILTI_TIERING"
fi

cargo build --release "$@"
cargo test -q "$@"
cargo clippy --workspace "$@" -- -D warnings

# Parallel-pipeline determinism gate: the differential suite (N workers
# vs 1 must be byte-identical).
cargo test -q -p broscript --test parallel "$@"
echo "tier1: parallel pipeline OK"

# Everything below may pull in dev-dependencies beyond what the stubbed
# workspace provides, so the stub check comes first.
if grep -q 'path = "stubs/' Cargo.toml; then
    echo "tier1: stubbed workspace detected, skipping example/repro/bench smoke"
    exit 0
fi

# 4-worker analyzer run that asserts its output against the sequential
# pipeline.
cargo run -q --release --example http_analyzer "$@" -- --workers 4 >/dev/null
echo "tier1: http_analyzer example OK"

# Repro artifacts: regenerate the figure JSON at the smallest scale and
# check each document carries all four component keys. Failures are
# accumulated so one bad artifact doesn't mask the next, then the script
# exits nonzero if anything was wrong.
out=target/repro-artifacts
rm -rf "$out"
REPRO_SCALE=1 REPRO_OUT="$out" cargo run -q --release -p bench --bin repro "$@" -- fig9 fig10
fail=0
for f in "$out"/fig9.json "$out"/fig10.json; do
    if [ ! -s "$f" ]; then
        echo "tier1: missing artifact $f"
        fail=1
        continue
    fi
    for key in protocol_parsing script_execution glue other; do
        if ! grep -q "\"$key\"" "$f"; then
            echo "tier1: $f lacks component $key"
            fail=1
        fi
    done
done
if [ "$fail" -ne 0 ]; then
    echo "tier1: repro artifact checks FAILED"
    exit 1
fi
echo "tier1: repro artifacts OK"

# Telemetry overhead bench in --test mode: one pass per benchmark, enough
# to prove the off/on pairs still build and run.
cargo bench -q -p bench --bench telemetry "$@" -- --test
