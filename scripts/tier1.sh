#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   build (release)  — the artifacts the benchmarks run against
#   test             — unit + integration suites across the workspace
#   clippy           — lint wall; warnings are errors
#   repro smoke      — fig9/fig10 JSON artifacts regenerate and validate
#   bench smoke      — telemetry-overhead bench compiles and runs (test mode)
#
# The last two need the real criterion/proptest crates; offline mirrors
# that stub out dev-dependencies (stubs/ in the workspace manifest) skip
# them.
#
# Usage: scripts/tier1.sh [extra cargo args, e.g. --offline]

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release "$@"
cargo test -q "$@"
cargo clippy --workspace "$@" -- -D warnings

# Parallel-pipeline determinism gate: the differential suite (N workers
# vs 1 must be byte-identical) plus a 4-worker analyzer run that asserts
# its output against the sequential pipeline.
cargo test -q -p broscript --test parallel "$@"
cargo run -q --release --example http_analyzer "$@" -- --workers 4 >/dev/null
echo "tier1: parallel pipeline OK"

if grep -q 'path = "stubs/' Cargo.toml; then
    echo "tier1: stubbed workspace detected, skipping repro/bench smoke"
    exit 0
fi

# Repro artifacts: regenerate the figure JSON at the smallest scale and
# check each document carries all four component keys.
out=target/repro-artifacts
rm -rf "$out"
REPRO_SCALE=1 REPRO_OUT="$out" cargo run -q --release -p bench --bin repro "$@" -- fig9 fig10
for f in "$out"/fig9.json "$out"/fig10.json; do
    [ -s "$f" ] || { echo "tier1: missing artifact $f"; exit 1; }
    for key in protocol_parsing script_execution glue other; do
        grep -q "\"$key\"" "$f" || { echo "tier1: $f lacks component $key"; exit 1; }
    done
done
echo "tier1: repro artifacts OK"

# Telemetry overhead bench in --test mode: one pass per benchmark, enough
# to prove the off/on pairs still build and run.
cargo bench -q -p bench --bench telemetry "$@" -- --test
