#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
#
#   build (release)  — the artifacts the benchmarks run against
#   test             — unit + integration suites across the workspace
#   clippy           — lint wall; warnings are errors
#
# Usage: scripts/tier1.sh [extra cargo args, e.g. --offline]

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release "$@"
cargo test -q "$@"
cargo clippy --workspace "$@" -- -D warnings
