//! Umbrella crate for the HILTI reproduction workspace.
//!
//! This crate only re-exports the member crates so that the workspace-level
//! examples (`examples/`) and integration tests (`tests/`) can exercise the
//! whole platform through one dependency. The actual functionality lives in
//! the member crates:
//!
//! * [`hilti`] — the abstract machine: IR, parser, type checker, optimizer,
//!   bytecode VM, interpreter, linker, fibers, virtual threads, host API.
//! * [`hilti_rt`] — the runtime library: domain types, containers with state
//!   management, timers, channels, regexp, classifier, profiler.
//! * [`netpkt`] — packet substrate: pcap I/O, decoding, reassembly, synthetic
//!   traces, and the handwritten baseline protocol parsers.
//! * [`hilti_bpf`], [`hilti_firewall`], [`binpac`], [`broscript`] — the four
//!   host applications from §4 of the paper.

pub use binpac;
pub use broscript;
pub use hilti;
pub use hilti_bpf;
pub use hilti_firewall;
pub use hilti_rt;
pub use netpkt;
