//! Figure 7 of the paper: the Bro/BinPAC++ interface, end to end.
//!
//! (a) the BinPAC++ grammar for SSH banners (`ssh.pac2`),
//! (b) the event configuration mapping a finished `SSH::Banner` unit to an
//!     `ssh_banner` event (`ssh.evt`),
//! (c) a script handler for that event (`ssh.bro`), and
//! (d) the run over a session, printing — like the paper —
//!     `OpenSSH_3.9p1, 1.99` and `OpenSSH_3.8.1p1, 2.0`.
//!
//! Run with: `cargo run --example ssh_banner`

use std::cell::RefCell;
use std::rc::Rc;

use binpac::grammar::ssh_banner_grammar;
use binpac::parser::BinpacParser;
use broscript::host::{Engine, ScriptHost};
use hilti::passes::OptLevel;
use hilti::value::Value;

/// (c) ssh.bro — the script handler from Figure 7.
const SSH_BRO: &str = r#"
event ssh_banner(version: string, software: string) {
    print cat(software, ", ", version);
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (a) ssh.pac2 — the grammar; (b) ssh.evt — the hook configuration:
    // `on SSH::Banner -> event ssh_banner(self.version, self.software)`.
    let mut grammar = ssh_banner_grammar();
    grammar.units[0].done_hook = Some("Bro::raise_ssh_banner".into());
    let mut parser = BinpacParser::compile(&grammar, &[], OptLevel::Full)?;

    // The Bro side: run the handler on either engine (compiled here, as in
    // the paper where the plugin JITs the scripts).
    let host: Rc<RefCell<ScriptHost>> = Rc::new(RefCell::new(ScriptHost::new(
        &[SSH_BRO],
        Engine::Compiled,
        None,
    )?));

    // The generated glue: when the parser finishes an SSH::Banner unit, it
    // calls this hook, which pulls the fields out of the unit struct and
    // triggers the script event — Figure 7's machinery.
    let host_for_hook = host.clone();
    parser.register_hook("Bro::raise_ssh_banner", move |args| {
        let unit = &args[0];
        let version = binpac::parser::field_text_from(unit, 0)?;
        let software = binpac::parser::field_text_from(unit, 1)?;
        host_for_hook
            .borrow_mut()
            .dispatch("ssh_banner", &[Value::str(&version), Value::str(&software)])?;
        Ok(Value::Null)
    });

    // (d) a single SSH session (both sides), as in the paper's output.
    println!("# bro -r ssh.trace ssh.evt ssh.bro");
    parser.parse_datagram("Banner", b"SSH-1.99-OpenSSH_3.9p1\r\n")?;
    parser.parse_datagram("Banner", b"SSH-2.0-OpenSSH_3.8.1p1\r\n")?;
    for line in host.borrow_mut().take_output() {
        println!("{line}");
    }
    Ok(())
}
