//! Virtual threads: Erlang-style concurrency with hash-based flow
//! placement (§3.2, §6.6).
//!
//! Compiles a small HILTI program whose thread-local state counts work per
//! virtual thread, schedules jobs by flow hash across a pool of hardware
//! workers, and shows that (i) each worker keeps private thread-local
//! globals, and (ii) per-flow processing is serialized without locks.
//!
//! Run with: `cargo run --release --example concurrency`

use std::sync::Arc;

use hilti::passes::OptLevel;
use hilti::threads::ThreadPool;
use hilti::value::Value;
use hilti_rt::addr::{Addr, Port};
use hilti_rt::hashutil::flow_hash;

const SRC: &str = r#"
module Counter

# Thread-local: each virtual thread's worker keeps its own copy (no truly
# global state in HILTI).
global int<64> jobs = 0
global int<64> checksum = 0

void work(int<64> x) {
    jobs = int.add jobs 1
    checksum = int.add checksum x
}

void report() {
    local string line
    line = string.fmt "worker handled {} jobs, checksum {}" jobs checksum
    call Hilti::print line
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 4;
    let factory = || {
        let p =
            hilti::Program::from_sources(&[SRC], OptLevel::Full).expect("counter program compiles");
        p.compiled().clone()
    };
    let pool = ThreadPool::new(factory, workers);
    println!("pool: {} hardware workers", pool.workers());

    // Simulate flows: both directions of each flow hash to the same
    // virtual thread, so per-flow work is serialized implicitly.
    let server = Addr::v4(93, 184, 216, 34);
    let mut scheduled = 0u64;
    for flow in 0..200u32 {
        let client = Addr::v4(10, 0, (flow / 250) as u8, (flow % 250) as u8 + 1);
        let cport = Port::tcp(40_000 + (flow % 1000) as u16);
        let vthread = flow_hash(client, cport, server, Port::tcp(80));
        // "Packets" in both directions: identical placement either way.
        let reverse = flow_hash(server, Port::tcp(80), client, cport);
        assert_eq!(vthread, reverse, "flow hash must be direction-symmetric");
        for pkt in 0..5u32 {
            pool.schedule(
                vthread,
                "Counter::work",
                &[Value::Int(i64::from(flow + pkt))],
            )?;
            scheduled += 1;
        }
    }
    for w in 0..workers as u64 {
        pool.schedule(w, "Counter::report", &[])?;
    }
    let reports = pool.shutdown();
    println!("scheduled {scheduled} jobs");
    let mut total = 0u64;
    for r in &reports {
        for line in &r.output {
            println!("worker {}: {line}", r.worker);
            if let Some(n) = line
                .strip_prefix("worker handled ")
                .and_then(|s| s.split(' ').next())
                .and_then(|s| s.parse::<u64>().ok())
            {
                total += n;
            }
        }
        if !r.errors.is_empty() {
            println!("worker {} errors: {:?}", r.worker, r.errors);
        }
    }
    println!("total jobs executed: {total} (expected {scheduled})");
    assert_eq!(total, scheduled);
    let _ = Arc::new(()); // keep Arc import meaningful across edits
    Ok(())
}
