//! Quickstart: build and run HILTI programs from source.
//!
//! Reproduces Figure 3 of the paper (`hello.hlt` → run), then shows the
//! pieces a host application typically touches: calling functions with
//! arguments, registering host functions (`call.c`), state containers with
//! expiration, and incremental processing with fibers.
//!
//! Run with: `cargo run --example quickstart`

use hilti::fiber::{Fiber, Step};
use hilti::host::Program;
use hilti::value::Value;
use hilti_rt::bytestring::Bytes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Figure 3: Hello, World! ------------------------------------------
    let mut hello = Program::from_source(
        r#"
module Main
import Hilti

# Default entry point for execution.
void run() {
    call Hilti::print "Hello, World!"
}
"#,
    )?;
    hello.run_void("Main::run", &[])?;
    for line in hello.take_output() {
        println!("{line}");
    }

    // --- Functions, arguments, host functions ------------------------------
    let mut prog = Program::from_source(
        r#"
module Demo

int<64> classify(addr a) {
    local bool hit
    local int<64> label
    hit = equal a 10.0.0.0/8
    if.else hit internal external
internal:
    label = call host_label ("internal")
    return label
external:
    label = call host_label ("external")
    return label
}
"#,
    )?;
    prog.register_host_fn("host_label", |args| {
        // The host side of a `call.c`: arbitrary application logic.
        Ok(Value::Int(if args[0].as_str()? == "internal" {
            1
        } else {
            0
        }))
    });
    let v = prog.run("Demo::classify", &[Value::Addr("10.1.2.3".parse()?)])?;
    println!("classify(10.1.2.3) = {}", v.render());
    let v = prog.run("Demo::classify", &[Value::Addr("8.8.8.8".parse()?)])?;
    println!("classify(8.8.8.8)  = {}", v.render());

    // --- Incremental processing with fibers --------------------------------
    // A computation that reads two bytes suspends while input is missing
    // and resumes transparently — the heart of HILTI's parsing model.
    let mut parser = Program::from_source(
        r#"
module Inc
int<64> read_u16(ref<bytes> data) {
    local iterator<bytes> it
    local int<64> hi
    local int<64> lo
    it = bytes.begin data
    hi = iterator.deref it
    it = iterator.incr it 1
    lo = iterator.deref it
    hi = int.shl hi 8
    hi = int.or hi lo
    return hi
}
"#,
    )?;
    let wire = Bytes::new();
    let mut fiber = Fiber::new("Inc::read_u16", vec![Value::Bytes(wire.clone())]);
    assert!(matches!(parser.resume(&mut fiber)?, Step::Suspended));
    println!("fiber suspended: no input yet");
    wire.append(&[0x12])?;
    assert!(matches!(parser.resume(&mut fiber)?, Step::Suspended));
    println!("fiber suspended: one byte is not enough");
    wire.append(&[0x34])?;
    match parser.resume(&mut fiber)? {
        Step::Finished(v) => println!("fiber finished: 0x{:04x}", v.as_int()?),
        Step::Suspended => unreachable!(),
    }
    Ok(())
}
