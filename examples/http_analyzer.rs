//! Full HTTP analysis: trace → parsers → scripts → logs (the §6.4/§6.5
//! pipeline).
//!
//! Synthesizes an HTTP trace, runs it through BOTH parser stacks (standard
//! handwritten vs BinPAC++-generated on HILTI) and BOTH script engines
//! (interpreter vs compiled to HILTI), prints the first log lines, and
//! reports the Table 2 / Table 3 agreement numbers.
//!
//! Run with: `cargo run --release --example http_analyzer`

use broscript::host::Engine;
use broscript::pipeline::{run_http_analysis, ParserStack};
use netpkt::logs::agreement;
use netpkt::synth::{http_trace, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = http_trace(&SynthConfig::new(2026, 25));
    println!("synthesized {} packets of HTTP traffic", trace.len());

    let std_i = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted)?;
    let pac_i = run_http_analysis(&trace, ParserStack::Binpac, Engine::Interpreted)?;
    let std_c = run_http_analysis(&trace, ParserStack::Standard, Engine::Compiled)?;

    println!("\nhttp.log (standard parsers, interpreted scripts) — first 5 lines:");
    for line in std_i.http_log.iter().take(5) {
        println!("  {line}");
    }
    println!("\nfiles.log — first 3 lines:");
    for line in std_i.files_log.iter().take(3) {
        println!("  {line}");
    }

    let t2 = agreement(&std_i.http_log, &pac_i.http_log);
    println!(
        "\nTable 2 (standard vs BinPAC++ parsers): http.log {} vs {} lines, {:.2}% identical",
        std_i.http_log.len(),
        pac_i.http_log.len(),
        t2.percent()
    );
    let t2f = agreement(&std_i.files_log, &pac_i.files_log);
    println!(
        "                                        files.log {:.2}% identical",
        t2f.percent()
    );
    let t3 = agreement(&std_i.http_log, &std_c.http_log);
    println!(
        "Table 3 (interpreted vs compiled scripts): http.log {:.2}% identical",
        t3.percent()
    );

    println!("\nevents processed: {} (standard) / {} (binpac)", std_i.events, pac_i.events);
    Ok(())
}
