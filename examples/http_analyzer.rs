//! Full HTTP analysis: trace → parsers → scripts → logs (the §6.4/§6.5
//! pipeline).
//!
//! Synthesizes an HTTP trace, runs it through BOTH parser stacks (standard
//! handwritten vs BinPAC++-generated on HILTI) and BOTH script engines
//! (interpreter vs compiled to HILTI), prints the first log lines, and
//! reports the Table 2 / Table 3 agreement numbers. It then re-runs the
//! BinPAC++ analysis on the flow-sharded parallel pipeline (§3.2
//! hash-based placement), checks the output is byte-identical to the
//! sequential run, and reports the throughput.
//!
//! Run with: `cargo run --release --example http_analyzer`
//! `[-- --workers N] [--trace-out out.json] [--live-stats SECS]`
//! (`--workers` defaults to `min(cores, 8)`).
//!
//! `--trace-out` re-runs the parallel analysis with the flight recorder
//! armed and writes a Chrome trace-event / Perfetto-compatible JSON file
//! (`hilti.trace.v1`) covering all six pipeline stages, plus a `.postmortem
//! .jsonl` sibling when any fault dump was captured. `--live-stats S`
//! keeps replaying the trace and prints a status line (pkts/s, p99
//! delivery latency, shed count, peak per-shard queue depth) every ~S
//! seconds for a few windows.

use broscript::host::Engine;
use broscript::parallel::{default_workers, run_http_analysis_parallel, PipelineOptions};
use broscript::pipeline::{run_http_analysis, Governance, ParserStack};
use netpkt::logs::agreement;
use netpkt::synth::{http_trace, SynthConfig};

struct Args {
    workers: usize,
    trace_out: Option<String>,
    live_stats: Option<u64>,
}

fn parse_args() -> Args {
    let mut out = Args {
        workers: default_workers(),
        trace_out: None,
        live_stats: None,
    };
    let mut args = std::env::args().skip(1);
    let numeric = |flag: &str, v: Option<String>| -> u64 {
        let v = v.unwrap_or_default();
        v.parse()
            .unwrap_or_else(|_| panic!("{flag} expects a number, got {v:?}"))
    };
    while let Some(a) = args.next() {
        if a == "--workers" {
            out.workers = numeric("--workers", args.next()) as usize;
        } else if let Some(v) = a.strip_prefix("--workers=") {
            out.workers = numeric("--workers", Some(v.to_owned())) as usize;
        } else if a == "--trace-out" {
            out.trace_out = Some(args.next().expect("--trace-out expects a path"));
        } else if let Some(v) = a.strip_prefix("--trace-out=") {
            out.trace_out = Some(v.to_owned());
        } else if a == "--live-stats" {
            out.live_stats = Some(numeric("--live-stats", args.next()));
        } else if let Some(v) = a.strip_prefix("--live-stats=") {
            out.live_stats = Some(numeric("--live-stats", Some(v.to_owned())));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();
    let workers = args.workers;
    let trace = http_trace(&SynthConfig::new(2026, 25));
    println!("synthesized {} packets of HTTP traffic", trace.len());

    let std_i = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted)?;
    let pac_i = run_http_analysis(&trace, ParserStack::Binpac, Engine::Interpreted)?;
    let std_c = run_http_analysis(&trace, ParserStack::Standard, Engine::Compiled)?;

    println!("\nhttp.log (standard parsers, interpreted scripts) — first 5 lines:");
    for line in std_i.http_log.iter().take(5) {
        println!("  {line}");
    }
    println!("\nfiles.log — first 3 lines:");
    for line in std_i.files_log.iter().take(3) {
        println!("  {line}");
    }

    let t2 = agreement(&std_i.http_log, &pac_i.http_log);
    println!(
        "\nTable 2 (standard vs BinPAC++ parsers): http.log {} vs {} lines, {:.2}% identical",
        std_i.http_log.len(),
        pac_i.http_log.len(),
        t2.percent()
    );
    let t2f = agreement(&std_i.files_log, &pac_i.files_log);
    println!(
        "                                        files.log {:.2}% identical",
        t2f.percent()
    );
    let t3 = agreement(&std_i.http_log, &std_c.http_log);
    println!(
        "Table 3 (interpreted vs compiled scripts): http.log {:.2}% identical",
        t3.percent()
    );

    println!(
        "\nevents processed: {} (standard) / {} (binpac)",
        std_i.events, pac_i.events
    );

    // Parallel pipeline: same trace, N flow-sharded workers, output
    // byte-identical to the sequential run by construction. The tier
    // ladder level comes from HILTI_TIERING (set by scripts/tier1.sh and
    // the CI tier matrix) — tiering may only change dispatch speed, so
    // the byte-identity assertions below hold at every level.
    let tiering = hilti::tier::TieringMode::from_env();
    if let Some(mode) = tiering {
        println!("tiering: {} (HILTI_TIERING)", mode.as_str());
    }
    let opts = PipelineOptions {
        workers,
        governance: Governance {
            tiering,
            ..Default::default()
        },
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let par = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &opts)?;
    let elapsed = start.elapsed();
    assert_eq!(par.http_log, pac_i.http_log, "parallel http.log diverged");
    assert_eq!(
        par.files_log, pac_i.files_log,
        "parallel files.log diverged"
    );
    assert_eq!(par.output, pac_i.output, "parallel output diverged");
    assert_eq!(par.events, pac_i.events, "parallel event count diverged");
    let bytes: usize = trace.iter().map(|p| p.data.len()).sum();
    println!(
        "\nparallel pipeline ({workers} workers): {} events in {:.1} ms ({:.1} MB/s), output identical to sequential",
        par.events,
        elapsed.as_secs_f64() * 1e3,
        bytes as f64 / 1e6 / elapsed.as_secs_f64()
    );

    let traced_opts = PipelineOptions {
        workers,
        governance: Governance {
            tracing: true,
            // Dispatch-plane metrics feed the live-stats queue-depth field.
            telemetry: true,
            tiering,
            ..Default::default()
        },
        ..Default::default()
    };

    if let Some(path) = &args.trace_out {
        // Re-run with the flight recorder armed: dispatch, queue wait,
        // decode, parse, script, and merge spans all land in the export.
        let traced = run_http_analysis_parallel(
            &trace,
            ParserStack::Binpac,
            Engine::Compiled,
            &traced_opts,
        )?;
        let report = traced.trace.expect("tracing was requested");
        std::fs::write(path, report.to_chrome_json())?;
        println!(
            "wrote {path}: {} span(s), {} dropped (hilti.trace.v1, open in Perfetto)",
            report.spans.len(),
            report.spans_dropped
        );
        println!("{}", report.latency.render());
        if !report.postmortems.is_empty() {
            let pm_path = format!("{path}.postmortem.jsonl");
            std::fs::write(&pm_path, report.postmortems_jsonl())?;
            println!(
                "wrote {pm_path}: {} postmortem dump(s)",
                report.postmortems.len()
            );
        }
    }

    if let Some(secs) = args.live_stats {
        let window = std::time::Duration::from_secs(secs.max(1));
        println!("\nlive stats ({}s windows, 3 windows):", secs.max(1));
        for _ in 0..3 {
            let started = std::time::Instant::now();
            let mut packets = 0u64;
            let mut shed = 0u64;
            let mut p99 = 0u64;
            let mut depth = 0u64;
            while started.elapsed() < window {
                let r = run_http_analysis_parallel(
                    &trace,
                    ParserStack::Binpac,
                    Engine::Compiled,
                    &traced_opts,
                )?;
                packets += r.packets;
                shed += r.shed_packets;
                if let Some(t) = &r.trace {
                    p99 = p99.max(t.latency.delivery_p99_ns);
                }
                depth = depth.max(
                    r.dispatch_telemetry
                        .gauges
                        .iter()
                        .filter(|(n, _)| n.starts_with("pipeline.queue_depth."))
                        .map(|(_, v)| *v)
                        .max()
                        .unwrap_or(0),
                );
            }
            let el = started.elapsed().as_secs_f64();
            println!(
                "  {:>10.0} pkts/s | p99 delivery {:>9} ns | shed {:>6} | peak queue depth {:>5}",
                packets as f64 / el,
                p99,
                shed,
                depth
            );
        }
    }
    Ok(())
}
