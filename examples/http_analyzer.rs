//! Full HTTP analysis: trace → parsers → scripts → logs (the §6.4/§6.5
//! pipeline).
//!
//! Synthesizes an HTTP trace, runs it through BOTH parser stacks (standard
//! handwritten vs BinPAC++-generated on HILTI) and BOTH script engines
//! (interpreter vs compiled to HILTI), prints the first log lines, and
//! reports the Table 2 / Table 3 agreement numbers. It then re-runs the
//! BinPAC++ analysis on the flow-sharded parallel pipeline (§3.2
//! hash-based placement), checks the output is byte-identical to the
//! sequential run, and reports the throughput.
//!
//! Run with: `cargo run --release --example http_analyzer [-- --workers N]`
//! (`--workers` defaults to `min(cores, 8)`).

use broscript::host::Engine;
use broscript::parallel::{default_workers, run_http_analysis_parallel, PipelineOptions};
use broscript::pipeline::{run_http_analysis, ParserStack};
use netpkt::logs::agreement;
use netpkt::synth::{http_trace, SynthConfig};

fn parse_workers() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--workers" {
            let v = args.next().unwrap_or_default();
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--workers expects a number, got {v:?}"));
        } else if let Some(v) = a.strip_prefix("--workers=") {
            return v
                .parse()
                .unwrap_or_else(|_| panic!("--workers expects a number, got {v:?}"));
        }
    }
    default_workers()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = parse_workers();
    let trace = http_trace(&SynthConfig::new(2026, 25));
    println!("synthesized {} packets of HTTP traffic", trace.len());

    let std_i = run_http_analysis(&trace, ParserStack::Standard, Engine::Interpreted)?;
    let pac_i = run_http_analysis(&trace, ParserStack::Binpac, Engine::Interpreted)?;
    let std_c = run_http_analysis(&trace, ParserStack::Standard, Engine::Compiled)?;

    println!("\nhttp.log (standard parsers, interpreted scripts) — first 5 lines:");
    for line in std_i.http_log.iter().take(5) {
        println!("  {line}");
    }
    println!("\nfiles.log — first 3 lines:");
    for line in std_i.files_log.iter().take(3) {
        println!("  {line}");
    }

    let t2 = agreement(&std_i.http_log, &pac_i.http_log);
    println!(
        "\nTable 2 (standard vs BinPAC++ parsers): http.log {} vs {} lines, {:.2}% identical",
        std_i.http_log.len(),
        pac_i.http_log.len(),
        t2.percent()
    );
    let t2f = agreement(&std_i.files_log, &pac_i.files_log);
    println!(
        "                                        files.log {:.2}% identical",
        t2f.percent()
    );
    let t3 = agreement(&std_i.http_log, &std_c.http_log);
    println!(
        "Table 3 (interpreted vs compiled scripts): http.log {:.2}% identical",
        t3.percent()
    );

    println!(
        "\nevents processed: {} (standard) / {} (binpac)",
        std_i.events, pac_i.events
    );

    // Parallel pipeline: same trace, N flow-sharded workers, output
    // byte-identical to the sequential run by construction.
    let opts = PipelineOptions {
        workers,
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let par = run_http_analysis_parallel(&trace, ParserStack::Binpac, Engine::Interpreted, &opts)?;
    let elapsed = start.elapsed();
    assert_eq!(par.http_log, pac_i.http_log, "parallel http.log diverged");
    assert_eq!(
        par.files_log, pac_i.files_log,
        "parallel files.log diverged"
    );
    assert_eq!(par.output, pac_i.output, "parallel output diverged");
    assert_eq!(par.events, pac_i.events, "parallel event count diverged");
    let bytes: usize = trace.iter().map(|p| p.data.len()).sum();
    println!(
        "\nparallel pipeline ({workers} workers): {} events in {:.1} ms ({:.1} MB/s), output identical to sequential",
        par.events,
        elapsed.as_secs_f64() * 1e3,
        bytes as f64 / 1e6 / elapsed.as_secs_f64()
    );
    Ok(())
}
