//! The BPF host application (§4/§6.2): one filter, two backends.
//!
//! Compiles a tcpdump-style filter expression both to classic BPF bytecode
//! (interpreted) and to HILTI (compiled to the VM), runs both over a
//! synthetic HTTP trace, and checks that they agree packet for packet.
//!
//! Run with: `cargo run --example packet_filter [filter...]`

use hilti_bpf::classic::{bpf_filter, compile_classic};
use hilti_bpf::{parse_filter, HiltiFilter};
use netpkt::synth::{http_trace, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = if args.is_empty() {
        "host 10.1.0.1 or src net 93.184.0.0/29".to_owned()
    } else {
        args.join(" ")
    };
    println!("filter: {filter}");

    let expr = parse_filter(&filter)?;
    let classic = compile_classic(&expr)?;
    println!("classic BPF program: {} instructions", classic.insns.len());
    let mut hilti = HiltiFilter::from_filter(&filter)?;
    println!("--- generated HILTI (excerpt) ---");
    for line in hilti.source().lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");

    let trace = http_trace(&SynthConfig::new(0xB1FF, 40));
    let mut matches = 0u64;
    let mut disagreements = 0u64;
    for pkt in &trace {
        let c = bpf_filter(&classic, &pkt.data);
        let h = hilti.matches(&pkt.data)?;
        if c != h {
            disagreements += 1;
        }
        matches += u64::from(c);
    }
    println!(
        "{} packets: {} matches ({:.2}%), {} disagreements between backends",
        trace.len(),
        matches,
        matches as f64 / trace.len() as f64 * 100.0,
        disagreements
    );
    assert_eq!(disagreements, 0, "backends must agree");
    Ok(())
}
