//! The stateful firewall host application (§4/§6.3, Figure 5).
//!
//! Compiles a rule set into the HILTI program of Figure 5 — classifier for
//! static rules, an access-expiring set for dynamic reverse-direction
//! state — and walks through a scenario showing the stateful behaviour.
//!
//! Run with: `cargo run --example stateful_firewall`

use hilti::passes::OptLevel;
use hilti_firewall::{figure5_rules, HiltiFirewall};
use hilti_rt::addr::Addr;
use hilti_rt::time::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = figure5_rules();
    println!("rules:");
    for r in &rules {
        println!(
            "  ({}, {}) -> {}",
            r.src,
            r.dst,
            if r.allow { "Allow" } else { "Deny" }
        );
    }
    let mut fw = HiltiFirewall::compile(&rules, OptLevel::Full)?;
    println!("\n--- generated HILTI (excerpt) ---");
    for line in fw.source().lines().skip(2).take(10) {
        println!("  {line}");
    }
    println!("  ...\n");

    let a = |s: &str| -> Addr { s.parse().expect("addr") };
    let t = Time::from_secs;
    let mut check = |ts: u64, src: &str, dst: &str| -> Result<(), Box<dyn std::error::Error>> {
        let verdict = fw.match_packet(t(ts), a(src), a(dst))?;
        println!(
            "t={ts:>4}  {src:>12} -> {dst:<12}  {}",
            if verdict { "ALLOW" } else { "deny" }
        );
        Ok(())
    };

    println!("scenario: dynamic state allows the reverse direction, then expires");
    check(1, "10.1.50.1", "10.3.2.1")?; // deny: no state yet
    check(2, "10.3.2.1", "10.1.50.1")?; // allow: static rule, creates state
    check(3, "10.1.50.1", "10.3.2.1")?; // allow: dynamic reverse rule
    check(200, "10.1.50.1", "10.3.2.1")?; // still alive (refreshed)
    check(600, "10.1.50.1", "10.3.2.1")?; // expired after 300s idle
    Ok(())
}
