//! Full DNS analysis: trace → parsers → scripts → dns.log.
//!
//! Shows the BinPAC++ DNS parser (with compressed-name decoding running as
//! HILTI code) against the standard handwritten parser, including the
//! deliberate TXT-record semantic difference the paper notes in Table 2.
//!
//! Run with: `cargo run --release --example dns_analyzer`

use broscript::host::Engine;
use broscript::pipeline::{run_dns_analysis, ParserStack};
use netpkt::logs::agreement;
use netpkt::synth::{dns_trace, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = dns_trace(&SynthConfig::new(2026, 300));
    println!("synthesized {} packets of DNS traffic", trace.len());

    let std_r = run_dns_analysis(&trace, ParserStack::Standard, Engine::Interpreted)?;
    let pac_r = run_dns_analysis(&trace, ParserStack::Binpac, Engine::Interpreted)?;

    println!("\ndns.log (standard parser) — first 6 lines:");
    for line in std_r.dns_log.iter().take(6) {
        println!("  {line}");
    }

    let ag = agreement(&std_r.dns_log, &pac_r.dns_log);
    println!(
        "\nTable 2 (standard vs BinPAC++): {} vs {} lines, {:.2}% identical",
        std_r.dns_log.len(),
        pac_r.dns_log.len(),
        ag.percent()
    );
    println!("(the gap is the TXT-record difference: the standard parser extracts only");
    println!(" the first character-string, BinPAC++ extracts all — §6.4 of the paper)");

    // Show one differing pair if present.
    let na = netpkt::logs::normalize(&std_r.dns_log);
    let nb = netpkt::logs::normalize(&pac_r.dns_log);
    if let Some(only_std) = na.iter().find(|l| !nb.contains(l)) {
        println!("\nexample standard-only line: {only_std}");
    }
    if let Some(only_pac) = nb.iter().find(|l| !na.contains(l)) {
        println!("example binpac-only line:   {only_pac}");
    }
    Ok(())
}
